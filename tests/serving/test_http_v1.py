"""The versioned /v1 API: status matrix, auth scopes, the write path.

Every test drives the real server over a loopback socket.  Cheap test
doubles stand in for the tier where only the HTTP contract is under
test (status codes, envelopes, auth); the wire-form submit round trip
at the end runs against a real replicated tier with a live retrofitter.
"""

import json
import socket
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.errors import BackpressureError, ServingError, WriteDegradedError
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving import (
    EmbeddingStore,
    HTTPServingFront,
    ReplicatedServingTier,
    ServingSession,
)

from tests.serving.test_http_front import as_json_rows, http


class _Target:
    """A read-only ``topk_batch`` target with a switchable health flag."""

    dimension = 4
    published_version = 0

    def __init__(self):
        self.degraded = False

    def topk_batch(self, vectors, k, category=None):
        return [[("movies.title", "answer", 1.0)] for _ in vectors]


class _WritableTarget(_Target):
    """Adds an idempotent ``submit`` so the write path is exercisable."""

    def __init__(self):
        super().__init__()
        self.applied = []  # deltas that actually landed (dedup excluded)
        self.seen_ids = {}  # submission_id -> acked version
        self.fail_with: Exception | None = None

    def submit(self, delta, timeout=None, submission_id=None):
        if self.fail_with is not None:
            error, self.fail_with = self.fail_with, None
            raise error
        if submission_id in self.seen_ids:
            return _Ticket(self.seen_ids[submission_id])
        self.applied.append(delta)
        version = len(self.applied)
        if submission_id is not None:
            self.seen_ids[submission_id] = version
        return _Ticket(version)


class _Ticket:
    failed = False

    def __init__(self, version):
        self.published_version = version

    def wait(self, timeout=None):
        return self.published_version


VECTOR = [0.0, 1.0, 0.0, 0.0]


def wire_delta(movie_id=70_001):
    return DatabaseDelta().insert("movies", {
        "id": movie_id, "title": f"wire movie {movie_id}",
        "original_language": "english",
        "overview": "a delta that crossed the network",
        "budget": 1e7, "revenue": 2e7, "popularity": 1.0,
        "release_year": 2026, "collection_id": None,
    })


@pytest.fixture()
def front():
    with HTTPServingFront(_WritableTarget(), window_seconds=0.0) as served:
        yield served


class TestV1Routing:
    def test_v1_topk_answers_and_legacy_alias_matches(self, front):
        status, body, headers = http(
            front.address, "/v1/topk", {"vector": VECTOR, "k": 1}
        )
        assert status == 200
        assert body == {
            "version": 0,
            "results": [["movies.title", "answer", 1.0]],
        }
        assert headers.get("Deprecation") is None
        legacy_status, legacy_body, legacy_headers = http(
            front.address, "/topk", {"vector": VECTOR, "k": 1}
        )
        assert (legacy_status, legacy_body) == (status, body)
        assert legacy_headers["Deprecation"] == "true"

    @pytest.mark.parametrize("legacy, successor", [
        ("/topk", "/v1/topk"),
        ("/health", "/v1/health"),
        ("/stats", "/v1/stats"),
    ])
    def test_legacy_aliases_emit_deprecation_headers(
        self, front, legacy, successor
    ):
        payload = {"vector": VECTOR} if legacy == "/topk" else None
        _, _, headers = http(front.address, legacy, payload)
        assert headers["Deprecation"] == "true"
        assert headers["Link"] == f'<{successor}>; rel="successor-version"'
        _, _, v1_headers = http(front.address, successor, payload)
        assert v1_headers.get("Deprecation") is None
        assert v1_headers.get("Link") is None

    def test_unknown_path_is_404_with_envelope(self, front):
        status, body, _ = http(front.address, "/v2/topk", {"vector": VECTOR})
        assert status == 404
        assert body["error"]["code"] == "not_found"
        assert "/v2/topk" in body["error"]["message"]

    @pytest.mark.parametrize("path, method, payload", [
        ("/v1/topk", "GET", None),
        ("/v1/submit", "GET", None),
        ("/v1/health", "POST", {"vector": VECTOR}),
        ("/v1/stats", "POST", {"vector": VECTOR}),
    ])
    def test_wrong_method_is_405_with_envelope(
        self, front, path, method, payload
    ):
        status, body, _ = http(front.address, path, payload, method=method)
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"
        assert path in body["error"]["message"]

    def test_invalid_json_is_400_invalid_request(self, front):
        request = urllib.request.Request(
            front.address + "/v1/topk", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["code"] == "invalid_request"

    def test_oversized_body_is_413_payload_too_large(self):
        target = _Target()
        with HTTPServingFront(
            target, window_seconds=0.0, max_body_bytes=64
        ) as front:
            status, body, _ = http(
                front.address, "/v1/topk", {"vector": [0.0] * 500}
            )
            assert status == 413
            assert body["error"]["code"] == "payload_too_large"

    def test_rate_limited_is_429_with_retry_after(self):
        with HTTPServingFront(
            _Target(), window_seconds=0.0, rate_per_second=0.001, burst=1
        ) as front:
            first = http(
                front.address, "/v1/topk", {"vector": VECTOR},
                headers={"X-Client-Id": "alpha"},
            )
            assert first[0] == 200
            status, body, headers = http(
                front.address, "/v1/topk", {"vector": VECTOR},
                headers={"X-Client-Id": "alpha"},
            )
            assert status == 429
            assert body["error"]["code"] == "rate_limited"
            assert body["error"]["retry_after"] == 1.0
            assert headers["Retry-After"] == "1"

    def test_legacy_error_bodies_stay_flat_strings(self, front):
        status, body, _ = http(front.address, "/topk", {"vector": []})
        assert status == 400
        assert isinstance(body["error"], str)
        status, body, _ = http(
            front.address, "/v1/topk", {"vector": []}
        )
        assert status == 400
        assert isinstance(body["error"], dict)


class TestHealthDegraded:
    def test_health_is_503_once_the_target_latches_degraded(self):
        target = _Target()
        with HTTPServingFront(target, window_seconds=0.0) as front:
            status, body, _ = http(front.address, "/v1/health")
            assert status == 200
            assert body["status"] == "ok"
            target.degraded = True
            status, body, _ = http(front.address, "/v1/health")
            assert status == 503
            assert body["status"] == "degraded"  # body shape unchanged
            assert body["version"] == 0
            # the deprecated alias degrades identically
            status, body, _ = http(front.address, "/health")
            assert status == 503
            assert body["status"] == "degraded"


class TestAuthScopes:
    TOKENS = {"rw": ("read", "write"), "ro": "read", "wo": ("write",)}

    @pytest.fixture()
    def authed(self):
        with HTTPServingFront(
            _WritableTarget(), window_seconds=0.0, auth_tokens=self.TOKENS
        ) as front:
            yield front

    @staticmethod
    def bearer(token):
        return {"Authorization": f"Bearer {token}"}

    def submit_payload(self):
        return {"submission_id": "auth-sub", "delta": wire_delta().to_dict()}

    def test_missing_token_is_401_with_challenge(self, authed):
        status, body, headers = http(
            authed.address, "/v1/topk", {"vector": VECTOR}
        )
        assert status == 401
        assert body["error"]["code"] == "unauthenticated"
        assert headers["WWW-Authenticate"] == "Bearer"

    def test_unknown_token_is_401(self, authed):
        status, body, _ = http(
            authed.address, "/v1/topk", {"vector": VECTOR},
            headers=self.bearer("nope"),
        )
        assert status == 401
        assert body["error"]["code"] == "unauthenticated"

    def test_scope_matrix(self, authed):
        cases = [
            ("/v1/topk", {"vector": VECTOR}, "rw", 200),
            ("/v1/topk", {"vector": VECTOR}, "ro", 200),
            ("/v1/topk", {"vector": VECTOR}, "wo", 403),
            ("/v1/submit", self.submit_payload(), "rw", 200),
            ("/v1/submit", self.submit_payload(), "ro", 403),
            ("/v1/submit", self.submit_payload(), "wo", 200),
            ("/v1/stats", None, "ro", 200),
            ("/v1/stats", None, "wo", 403),
        ]
        for path, payload, token, want in cases:
            status, body, _ = http(
                authed.address, path, payload, headers=self.bearer(token)
            )
            assert status == want, (path, token, body)
            if want == 403:
                assert body["error"]["code"] == "forbidden"

    def test_health_is_never_gated(self, authed):
        status, body, _ = http(authed.address, "/v1/health")
        assert status == 200
        assert body["status"] == "ok"

    def test_auth_failures_are_counted(self, authed):
        http(authed.address, "/v1/topk", {"vector": VECTOR})
        http(
            authed.address, "/v1/submit", self.submit_payload(),
            headers=self.bearer("ro"),
        )
        assert authed.stats.auth_failures == 2

    def test_unknown_scope_is_rejected_at_construction(self):
        with pytest.raises(ServingError):
            HTTPServingFront(_Target(), auth_tokens={"t": ("admin",)})


class TestSubmitEndpoint:
    def test_wire_form_delta_round_trips(self, front):
        delta = wire_delta()
        status, body, _ = http(
            front.address, "/v1/submit",
            {"submission_id": "sub-1", "delta": delta.to_dict()},
        )
        assert status == 200
        assert body == {"version": 1, "submission_id": "sub-1"}
        (landed,) = front._target.applied
        assert landed.to_dict() == delta.to_dict()
        assert front.stats.submits == 1

    def test_duplicated_post_applies_exactly_once(self, front):
        payload = {"submission_id": "sub-dup", "delta": wire_delta().to_dict()}
        first = http(front.address, "/v1/submit", payload)
        second = http(front.address, "/v1/submit", payload)
        assert first[0] == second[0] == 200
        assert first[1]["version"] == second[1]["version"]
        assert len(front._target.applied) == 1

    @pytest.mark.parametrize("payload", [
        {},  # submission_id missing
        {"submission_id": "", "delta": {}},  # empty id
        {"submission_id": "x" * 201, "delta": {}},  # id too long
        {"submission_id": "ok"},  # delta missing
        {"submission_id": "ok", "delta": "nope"},  # delta not an object
        {"submission_id": "ok", "delta": {"nope": []}},  # malformed wire form
    ])
    def test_bad_submit_payloads_are_400(self, front, payload):
        status, body, _ = http(front.address, "/v1/submit", payload)
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert front._target.applied == []

    def test_backpressure_maps_to_429_with_retry_after(self, front):
        front._target.fail_with = BackpressureError("queue full", retry_after=2.5)
        status, body, headers = http(
            front.address, "/v1/submit",
            {"submission_id": "bp", "delta": wire_delta().to_dict()},
        )
        assert status == 429
        assert body["error"]["code"] == "rate_limited"
        assert body["error"]["retry_after"] == 3.0  # ceil(2.5)
        assert headers["Retry-After"] == "3"
        assert front.stats.submit_rejected == 1

    def test_write_degraded_maps_to_503(self, front):
        front._target.fail_with = WriteDegradedError("write path latched")
        status, body, _ = http(
            front.address, "/v1/submit",
            {"submission_id": "wd", "delta": wire_delta().to_dict()},
        )
        assert status == 503
        assert body["error"]["code"] == "degraded"

    def test_read_only_target_answers_501(self):
        with HTTPServingFront(_Target(), window_seconds=0.0) as front:
            status, body, _ = http(
                front.address, "/v1/submit",
                {"submission_id": "ro", "delta": wire_delta().to_dict()},
            )
            assert status == 501
            assert body["error"]["code"] == "not_supported"


class TestSubmitOverRealTier:
    def test_submit_dedup_and_floored_read_over_one_socket(self, tmp_path):
        dataset = generate_tmdb(num_movies=60, seed=8, embedding_dimension=16)
        pipeline = RetroPipeline(
            dataset.database,
            dataset.embedding,
            hyperparams=RetroHyperparameters.paper_rn_default(),
        )
        result = pipeline.run(iterations=120)
        retrofitter = pipeline.incremental_retrofitter(result)
        store = EmbeddingStore(tmp_path / "store")
        store.save_embedding_set("rn", result.embeddings)
        rng = np.random.default_rng(4)
        query = rng.integers(-3, 4, size=16).astype(np.float64)
        tier = ReplicatedServingTier(
            store.root, "rn", n_replicas=2,
            database=dataset.database, retrofitter=retrofitter,
            solve_iterations=60,
        )
        payload = {
            "submission_id": "real-sub-1",
            "delta": wire_delta().to_dict(),
        }
        with tier:
            with HTTPServingFront(
                tier, window_seconds=0.0, write_timeout_seconds=300.0
            ) as front:
                status, body, _ = http(front.address, "/v1/submit", payload)
                assert status == 200
                version = body["version"]
                assert version >= 1
                log_after_first = tier.stats.log_version
                # the retried POST (same id, fresh TCP connection) returns
                # the original version without growing the log
                dup_status, dup_body, _ = http(
                    front.address, "/v1/submit", payload
                )
                assert dup_status == 200
                assert dup_body["version"] == version
                assert tier.stats.log_version == log_after_first
                # read-your-writes: a floored /v1 read sees the write and
                # matches a serial session over the store's own replay
                status, answer, _ = http(
                    front.address, "/v1/topk",
                    {"vector": list(query), "k": 5, "min_version": version},
                )
                assert status == 200
                assert answer["version"] >= version
                loaded, _, loaded_version = (
                    store.load_embedding_set_versioned("rn")
                )
                assert loaded_version == version
                serial = ServingSession(loaded)
                serial.settle_indexes()
                assert answer["results"] == as_json_rows(
                    serial.topk_batch(query[None, :], 5)[0]
                )


class TestFramingErrors:
    def test_pre_route_framing_error_answers_v1_envelope(self, front):
        # an over-long request line fails before any route is known — the
        # front answers 413 in the /v1 envelope on the raw socket
        with socket.create_connection(("127.0.0.1", front.port), 10) as sock:
            sock.sendall(b"GET /" + b"x" * 100_000 + b" HTTP/1.1\r\n\r\n")
            sock.settimeout(10)
            raw = b""
            while True:  # the server closes after a framing error
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        head, _, rest = raw.partition(b"\r\n\r\n")
        assert b" 413 " in head.split(b"\r\n", 1)[0]
        body = json.loads(rest.decode("utf-8"))
        assert body["error"]["code"] == "payload_too_large"
