"""Persistence of trained index state (IVF centroids + assignments).

A :class:`ServingSession` opened over an artifact that carries a persisted
index must answer queries identically to the session that saved it — and
must not re-run the k-means training pass.
"""

import numpy as np
import pytest

from repro.errors import ServingError, StoreFormatError
from repro.retrofit.combine import TextValueEmbeddingSet
from repro.serving.index import FlatIndex, IVFIndex
from repro.serving.session import ServingSession
from repro.serving.store import EmbeddingStore


@pytest.fixture()
def embeddings(tmdb_extraction, tmdb_base):
    return TextValueEmbeddingSet(tmdb_extraction, tmdb_base.matrix.copy(), name="PV")


class TestIVFStateRoundtrip:
    def test_from_state_reproduces_queries(self, rng):
        matrix = rng.normal(size=(400, 16))
        trained = IVFIndex(matrix, n_cells=12, nprobe=4, seed=3)
        restored = IVFIndex.from_state(
            matrix, trained.centroids, trained.assignments, nprobe=4
        )
        queries = rng.normal(size=(7, 16))
        got_ids, got_scores = restored.query_batch(queries, 5)
        want_ids, want_scores = trained.query_batch(queries, 5)
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_allclose(got_scores, want_scores)
        assert restored.cell_sizes() == trained.cell_sizes()

    def test_from_state_validates(self, rng):
        matrix = rng.normal(size=(20, 4))
        trained = IVFIndex(matrix, n_cells=4, nprobe=2)
        with pytest.raises(ServingError):
            IVFIndex.from_state(matrix, trained.centroids[:, :2], trained.assignments)
        with pytest.raises(ServingError):
            IVFIndex.from_state(matrix, trained.centroids, trained.assignments[:-1])
        bad = trained.assignments.copy()
        bad[0] = 99
        with pytest.raises(ServingError):
            IVFIndex.from_state(matrix, trained.centroids, bad)
        with pytest.raises(ServingError):
            IVFIndex.from_state(
                matrix, trained.centroids, trained.assignments, nprobe=0
            )


class TestStoreIndexPersistence:
    def test_ivf_roundtrip_skips_kmeans(self, embeddings, tmp_path, monkeypatch):
        index = IVFIndex(embeddings.matrix, n_cells=8, nprobe=8, seed=1)
        store = EmbeddingStore(tmp_path)
        store.save_embedding_set("served", embeddings, index=index)

        # restoring must never re-run the k-means training pass
        def boom(self, iterations, seed):  # pragma: no cover - guard
            raise AssertionError("IVF k-means re-ran on load")

        monkeypatch.setattr(IVFIndex, "_train", boom)
        loaded_set, loaded_index = store.load_embedding_set_with_index("served")
        assert isinstance(loaded_index, IVFIndex)
        assert loaded_index.nprobe == index.nprobe
        np.testing.assert_array_equal(loaded_index.assignments, index.assignments)
        query = embeddings.matrix[3]
        got_ids, got_scores = loaded_index.query(query, 5)
        want_ids, want_scores = index.query(query, 5)
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_allclose(got_scores, want_scores)

    def test_flat_index_metadata_roundtrip(self, embeddings, tmp_path):
        index = FlatIndex(embeddings.matrix, metric="dot")
        store = EmbeddingStore(tmp_path)
        store.save_embedding_set("served", embeddings, index=index)
        _, loaded = store.load_embedding_set_with_index("served")
        assert isinstance(loaded, FlatIndex)
        assert loaded.metric == "dot"

    def test_artifact_without_index_loads_none(self, embeddings, tmp_path):
        store = EmbeddingStore(tmp_path)
        store.save_embedding_set("plain", embeddings)
        loaded_set, loaded_index = store.load_embedding_set_with_index("plain")
        assert loaded_index is None
        np.testing.assert_array_equal(loaded_set.matrix, embeddings.matrix)

    def test_mismatched_index_rejected_on_save(self, embeddings, tmp_path):
        half = FlatIndex(embeddings.matrix[: len(embeddings) // 2])
        with pytest.raises(StoreFormatError):
            EmbeddingStore(tmp_path).save_embedding_set(
                "served", embeddings, index=half
            )

    def test_corrupt_index_metadata_raises(self, embeddings, tmp_path):
        import json

        index = IVFIndex(embeddings.matrix, n_cells=6, nprobe=3)
        store = EmbeddingStore(tmp_path)
        header_path = store.save_embedding_set("served", embeddings, index=index)
        header = json.loads(header_path.read_text())
        header["index"]["type"] = "bogus"
        header_path.write_text(json.dumps(header))
        with pytest.raises(StoreFormatError):
            store.load_embedding_set_with_index("served")


class TestServingSessionPersistence:
    def test_session_save_and_reload(self, embeddings, tmp_path, monkeypatch):
        session = ServingSession(
            embeddings,
            index_factory=lambda matrix: IVFIndex(
                matrix, n_cells=8, nprobe=8, seed=2
            ),
        )
        query = embeddings.matrix[5]
        before = session.topk(query, k=4)
        session.save(tmp_path, "session")

        def boom(self, iterations, seed):  # pragma: no cover - guard
            raise AssertionError("IVF k-means re-ran on load")

        monkeypatch.setattr(IVFIndex, "_train", boom)
        reloaded = ServingSession.from_store(tmp_path, "session")
        assert isinstance(reloaded.index_for(None), IVFIndex)
        assert reloaded.topk(query, k=4) == before

    def test_session_save_without_index(self, embeddings, tmp_path):
        session = ServingSession(embeddings)
        session.save(tmp_path, "session", include_index=False)
        reloaded = ServingSession.from_store(tmp_path, "session")
        assert reloaded.topk(embeddings.matrix[0], k=3)
