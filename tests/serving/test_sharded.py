"""Property tests: the sharded tier answers exactly like a single index.

The tie-stable top-k contract (ascending-index tie-breaking in
``topk_descending``, ``(score desc, global id asc)`` in the front's merge)
makes the equality *exact*: same rows, same order, same float bits.  The
matrices here are integer-valued, so every dot product is exactly
representable and the comparison is ``==``, not ``allclose`` — any
tie-handling or partition bug fails deterministically.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.errors import ExtractionError, ServingError
from repro.retrofit.combine import TextValueEmbeddingSet
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving import (
    EmbeddingStore,
    RateLimiter,
    ServingSession,
    ShardedServingTier,
    stable_shard,
)

SHARD_COUNTS = [1, 2, 5]


class TestStableShard:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 7):
            for value in ("a", "b", "the quiet voyage"):
                first = stable_shard("movies.title", value, n)
                assert 0 <= first < n
                assert stable_shard("movies.title", value, n) == first

    def test_single_shard_owns_everything(self):
        assert stable_shard("c", "x", 1) == 0

    def test_category_is_part_of_the_key(self):
        shards = {
            stable_shard(f"category.{i}", "same text", 64) for i in range(64)
        }
        assert len(shards) > 1


@pytest.fixture()
def int_corpus(tmdb_extraction, tmp_path):
    """An integer-valued embedding set saved to a store: exact dot products
    and a tiny value range, so score ties are everywhere."""
    rng = np.random.default_rng(7)
    matrix = rng.integers(-2, 3, size=(len(tmdb_extraction), 12)).astype(
        np.float64
    )
    embeddings = TextValueEmbeddingSet(tmdb_extraction, matrix, name="INT")
    store = EmbeddingStore(tmp_path / "store")
    store.save_embedding_set("int", embeddings)
    session = ServingSession(embeddings)
    queries = rng.integers(-3, 4, size=(9, 12)).astype(np.float64)
    queries[3] = queries[0]  # duplicated query
    queries[5] = 0.0  # degenerate zero query
    return store, session, queries


class TestShardedEqualsSingleIndex:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_topk_batch_identical(self, int_corpus, n_shards):
        store, session, queries = int_corpus
        with ShardedServingTier(store.root, "int", n_shards=n_shards) as tier:
            for k in (1, 3, 10):
                assert tier.topk_batch(queries, k) == session.topk_batch(
                    queries, k
                )

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_category_scope_identical(self, int_corpus, n_shards):
        store, session, queries = int_corpus
        categories = sorted(session.categories)[:3]
        with ShardedServingTier(store.root, "int", n_shards=n_shards) as tier:
            for category in categories:
                assert tier.topk_batch(
                    queries, 5, category=category
                ) == session.topk_batch(queries, 5, category=category)

    def test_k_beyond_corpus_returns_everything(self, int_corpus):
        store, session, queries = int_corpus
        with ShardedServingTier(store.root, "int", n_shards=2) as tier:
            got = tier.topk_batch(queries[:2], 10_000)
            want = session.topk_batch(queries[:2], 10_000)
            assert got == want
            assert len(got[0]) == len(session.embeddings)

    def test_single_query_topk(self, int_corpus):
        store, session, queries = int_corpus
        with ShardedServingTier(store.root, "int", n_shards=3) as tier:
            assert tier.topk(queries[0], 7) == session.topk(queries[0], 7)

    def test_unknown_category_raises_like_the_session(self, int_corpus):
        store, session, queries = int_corpus
        with pytest.raises(ExtractionError):
            session.topk(queries[0], 3, category="nope.nope")
        with ShardedServingTier(store.root, "int", n_shards=2) as tier:
            with pytest.raises(ExtractionError):
                tier.topk(queries[0], 3, category="nope.nope")

    def test_read_only_tier_refuses_writes(self, int_corpus):
        store, _, _ = int_corpus
        with ShardedServingTier(store.root, "int", n_shards=2) as tier:
            with pytest.raises(ServingError, match="no writer side"):
                tier.submit(DatabaseDelta())


class TestShardedIndexKinds:
    """``index_kind`` swaps the per-shard scope index; an exhaustive NSW
    beam keeps the tier's exact-equality contract bit for bit."""

    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_nsw_per_shard_equals_single_index(self, int_corpus, n_shards):
        store, session, queries = int_corpus
        tier = ShardedServingTier(
            store.root, "int", n_shards=n_shards, index_kind="nsw",
            index_params={"max_degree": 8, "ef_search": 100_000},
        )
        with tier:
            for k in (1, 3, 10):
                assert tier.topk_batch(queries, k) == session.topk_batch(
                    queries, k
                )

    def test_nsw_category_scope_identical(self, int_corpus):
        store, session, queries = int_corpus
        category = sorted(session.categories)[0]
        tier = ShardedServingTier(
            store.root, "int", n_shards=2, index_kind="nsw",
            index_params={"max_degree": 8, "ef_search": 100_000},
        )
        with tier:
            assert tier.topk_batch(
                queries, 5, category=category
            ) == session.topk_batch(queries, 5, category=category)

    def test_rejects_unknown_kind(self, int_corpus):
        store, _, _ = int_corpus
        with pytest.raises(ServingError, match="index kind"):
            ShardedServingTier(store.root, "int", index_kind="kdtree")


@pytest.fixture()
def stream(tmp_path):
    """A trained TMDB corpus + retrofitter + store, for delta streams."""
    dataset = generate_tmdb(num_movies=60, seed=8, embedding_dimension=16)
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    result = pipeline.run(iterations=120)
    retrofitter = pipeline.incremental_retrofitter(result)
    store = EmbeddingStore(tmp_path / "store")
    store.save_embedding_set("rn", result.embeddings)
    return dataset, retrofitter, store


def make_delta(dataset, key):
    delta = DatabaseDelta()
    delta.insert("movies", {
        "id": 60_000 + key, "title": f"silent meridian {key}",
        "original_language": "english",
        "overview": "a quiet voyage across the meridian",
        "budget": 1e7, "revenue": 2e7, "popularity": 1.0,
        "release_year": 2026, "collection_id": None,
    })
    delta.insert("movie_countries", {
        "id": 60_000 + key, "movie_id": 60_000 + key, "country_id": 1,
    })
    if key % 2 == 0:  # deletions: removed values tombstone in-place sessions
        victim = dataset.database.table("reviews").rows[0]
        delta.delete("reviews", victim["id"])
    return delta


class TestDeltaReplay:
    def test_mid_stream_replay_matches_inplace_session(self, stream):
        """A read-only tier replaying the store's delta records stays
        identical to a single in-place-updated session — including the
        tombstoned rows the in-place path accumulates after deletions."""
        dataset, retrofitter, store = stream
        session = ServingSession(retrofitter.embeddings)
        session.settle_indexes()
        rng = np.random.default_rng(3)
        queries = rng.integers(-3, 4, size=(6, 16)).astype(np.float64)
        with ShardedServingTier(store.root, "rn", n_shards=2) as tier:
            assert tier.topk_batch(queries, 6) == session.topk_batch(queries, 6)
            for key in (1, 2, 3):
                update = retrofitter.apply(dataset.database, make_delta(dataset, key))
                store.append_embedding_set_delta("rn", update)
                session.apply_update(update)
                assert tier.sync_shards() == key
                assert tier.topk_batch(queries, 6) == session.topk_batch(
                    queries, 6
                )
                assert tier.topk_batch(
                    queries, 4, category="movies.title"
                ) == session.topk_batch(queries, 4, category="movies.title")

    def test_writer_path_is_read_your_writes(self, stream):
        """submit() → ticket.wait() → the next read reflects the update,
        bit-for-bit equal to serving the store's versioned load."""
        dataset, retrofitter, store = stream
        rng = np.random.default_rng(4)
        queries = rng.integers(-3, 4, size=(5, 16)).astype(np.float64)
        tier = ShardedServingTier(
            store.root, "rn", n_shards=2,
            database=dataset.database, retrofitter=retrofitter,
            solve_iterations=60,
        )
        with tier:
            for key in (1, 2):
                ticket = tier.submit(make_delta(dataset, key))
                assert ticket.wait(timeout=120)
                assert tier.published_version == key
                loaded, _, version = store.load_embedding_set_versioned("rn")
                assert version == key
                serial = ServingSession(loaded)
                assert tier.topk_batch(queries, 5) == serial.topk_batch(
                    queries, 5
                )
        assert tier.stats.writes_applied == 2


class TestWriteAdmission:
    def test_rate_limit_rejects_before_the_queue(self, stream):
        dataset, retrofitter, store = stream
        tier = ShardedServingTier(
            store.root, "rn", n_shards=1,
            database=dataset.database, retrofitter=retrofitter,
            solve_iterations=30,
            write_rate_limit=RateLimiter(0.01, burst=1),
        )
        with tier:
            ticket = tier.submit(make_delta(dataset, 1), timeout=0.0)
            with pytest.raises(ServingError, match="rate limit"):
                tier.submit(make_delta(dataset, 2), timeout=0.0)
            assert ticket.wait(timeout=120)
            assert tier.stats.writes_rate_limited == 1
            # reads are never throttled by write admission
            queries = np.ones((2, 16), dtype=np.float64)
            assert len(tier.topk_batch(queries, 3)) == 2


@pytest.mark.stress
class TestCrashRecovery:
    def test_worker_crash_degrades_then_respawns(self, int_corpus):
        store, session, queries = int_corpus
        with ShardedServingTier(store.root, "int", n_shards=2) as tier:
            want = session.topk_batch(queries, 8)
            assert tier.topk_batch(queries, 8) == want
            victim = tier._shards[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            # served degraded: only shard 1's rows, but still well-formed
            degraded = tier.topk_batch(queries, 8)
            assert tier.stats.degraded_queries >= 1
            for row in degraded:
                for category, text, _ in row:
                    assert stable_shard(category, text, 2) == 1
            deadline = time.monotonic() + 30.0
            while tier.live_shards < 2:
                assert time.monotonic() < deadline, "respawn never completed"
                time.sleep(0.05)
            assert tier.stats.shard_respawns == 1
            assert tier.topk_batch(queries, 8) == want
