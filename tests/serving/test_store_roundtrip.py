"""Persistence round-trips of embedding sets and full pipeline results."""

import json
import os

import numpy as np
import pytest

from repro.errors import ReproError, StoreFormatError
from repro.retrofit.combine import TextValueEmbeddingSet
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline, RetroResult
from repro.serving.store import (
    EmbeddingStore,
    STORE_VERSION,
    extraction_from_dict,
    extraction_to_dict,
)


@pytest.fixture(scope="module")
def tmdb_result(small_tmdb):
    pipeline = RetroPipeline(
        small_tmdb.database,
        small_tmdb.embedding,
        hyperparams=RetroHyperparameters(alpha=1.0, beta=0.5, gamma=2.0, delta=1.0),
        method="series",
    )
    return pipeline.run(include_node_embeddings=True, track_loss=True)


class TestReadOnlyMatrixAccess:
    """The checksum-once mmap read path (npz → .npy sidecar → memmap)."""

    @pytest.fixture()
    def saved(self, tmdb_extraction, tmdb_base, tmp_path):
        embeddings = TextValueEmbeddingSet(
            tmdb_extraction, tmdb_base.matrix.copy(), name="PV"
        )
        store = EmbeddingStore(tmp_path / "store")
        store.save_embedding_set("pv", embeddings, version=3)
        return store, embeddings

    def test_mapped_matrix_is_read_only_and_bit_exact(self, saved):
        store, embeddings = saved
        mapped = store.open_matrix_readonly("pv")
        assert isinstance(mapped, np.memmap)
        assert not mapped.flags.writeable
        assert np.array_equal(np.asarray(mapped), embeddings.matrix)

    def test_sidecar_extracted_once_then_reused(self, saved):
        store, _ = saved
        store.open_matrix_readonly("pv")
        sidecars = list(store.root.glob("pv.*.matrix.npy"))
        assert len(sidecars) == 1
        stamp = sidecars[0].stat().st_mtime_ns
        store.open_matrix_readonly("pv")
        assert sidecars[0].stat().st_mtime_ns == stamp  # not re-extracted
        assert not list(store.root.glob("*.tmp.sidecar.npy"))

    def test_unknown_array_raises(self, saved):
        store, _ = saved
        with pytest.raises(StoreFormatError, match="no array"):
            store.open_matrix_readonly("pv", array="nope")

    def test_load_embedding_set_readonly(self, saved):
        store, embeddings = saved
        loaded, version = store.load_embedding_set_readonly("pv")
        assert version == 3
        assert loaded.name == "PV"
        assert not loaded.matrix.flags.writeable
        assert np.array_equal(np.asarray(loaded.matrix), embeddings.matrix)
        assert loaded.extraction.texts == embeddings.extraction.texts

    def test_resave_garbage_collects_old_sidecar(self, saved):
        store, embeddings = saved
        store.open_matrix_readonly("pv")
        (old_sidecar,) = store.root.glob("pv.*.matrix.npy")
        os.utime(old_sidecar, (1, 1))  # age it past the grace period
        changed = TextValueEmbeddingSet(
            embeddings.extraction, embeddings.matrix + 1.0, name="PV"
        )
        store.save_embedding_set("pv", changed, version=4)
        assert not old_sidecar.exists()
        # the new artifact maps fine and sees the new bytes
        mapped = store.open_matrix_readonly("pv")
        assert np.array_equal(np.asarray(mapped), changed.matrix)

    def test_live_sidecar_survives_gc(self, saved):
        store, _ = saved
        store.open_matrix_readonly("pv")
        (sidecar,) = store.root.glob("pv.*.matrix.npy")
        os.utime(sidecar, (1, 1))  # ancient, yet referenced by the header
        header = json.loads((store.root / "pv.json").read_text())
        store._drop_stale_matrices("pv", keep=header["matrix_file"])
        assert sidecar.exists()


class TestExtractionSerialisation:
    def test_roundtrip_preserves_everything(self, tmdb_extraction):
        rebuilt = extraction_from_dict(extraction_to_dict(tmdb_extraction))
        assert rebuilt.texts == tmdb_extraction.texts
        assert rebuilt.categories == tmdb_extraction.categories
        assert len(rebuilt.relation_groups) == len(tmdb_extraction.relation_groups)
        for old, new in zip(tmdb_extraction.relation_groups, rebuilt.relation_groups):
            assert (old.name, old.kind, old.pairs) == (new.name, new.kind, new.pairs)
        for record in tmdb_extraction.records:
            assert rebuilt.index_of(record.category, record.text) == record.index

    def test_malformed_payload_raises(self):
        with pytest.raises(StoreFormatError):
            extraction_from_dict({"records": [[0, "a"]], "categories": {},
                                  "relation_groups": []})
        with pytest.raises(StoreFormatError):
            extraction_from_dict({})

    def test_misnumbered_records_raise(self, tmdb_extraction):
        payload = extraction_to_dict(tmdb_extraction)
        payload["records"][0][0] = 5
        with pytest.raises(StoreFormatError):
            extraction_from_dict(payload)


class TestEmbeddingSetRoundtrip:
    def test_bit_exact_matrix_and_order(self, tmdb_extraction, tmdb_base, tmp_path):
        embeddings = TextValueEmbeddingSet(
            tmdb_extraction, tmdb_base.matrix.copy(), name="PV"
        )
        store = EmbeddingStore(tmp_path / "store")
        store.save_embedding_set("pv", embeddings)
        loaded = store.load_embedding_set("pv")
        assert loaded.name == "PV"
        assert loaded.matrix.dtype == embeddings.matrix.dtype
        assert np.array_equal(loaded.matrix, embeddings.matrix)
        assert loaded.extraction.texts == tmdb_extraction.texts
        assert list(loaded.extraction.categories) == list(tmdb_extraction.categories)

    def test_listing_and_presence(self, tmdb_extraction, tmdb_base, tmp_path):
        embeddings = TextValueEmbeddingSet(tmdb_extraction, tmdb_base.matrix, "PV")
        store = EmbeddingStore(tmp_path / "store")
        assert store.list_artifacts() == []
        store.save_embedding_set("one", embeddings)
        store.save_embedding_set("two", embeddings)
        assert store.list_artifacts() == ["one", "two"]
        assert store.has_artifact("one") and not store.has_artifact("three")
        assert store.artifact_kind("one") == "embedding_set"


class TestRetroResultRoundtrip:
    def test_full_roundtrip(self, tmdb_result, tmp_path):
        tmdb_result.save(tmp_path / "model")
        loaded = RetroResult.load(tmp_path / "model")
        assert np.array_equal(loaded.embeddings.matrix, tmdb_result.embeddings.matrix)
        assert np.array_equal(loaded.base.matrix, tmdb_result.base.matrix)
        assert np.array_equal(loaded.base.oov_mask, tmdb_result.base.oov_mask)
        assert np.array_equal(loaded.plain.matrix, tmdb_result.plain.matrix)
        assert loaded.base.coverage == tmdb_result.base.coverage
        assert loaded.hyperparams == tmdb_result.hyperparams
        assert loaded.report.method == tmdb_result.report.method
        assert loaded.report.iterations == tmdb_result.report.iterations
        assert loaded.report.loss_history == tmdb_result.report.loss_history
        assert loaded.node_embeddings is not None
        assert np.array_equal(
            loaded.node_embeddings.matrix, tmdb_result.node_embeddings.matrix
        )
        assert loaded.node_embeddings.node_ids == tmdb_result.node_embeddings.node_ids
        assert loaded.combined is not None
        assert np.array_equal(loaded.combined.matrix, tmdb_result.combined.matrix)

    def test_loaded_result_answers_queries(self, tmdb_result, small_tmdb, tmp_path):
        tmdb_result.save(tmp_path / "model")
        loaded = RetroResult.load(tmp_path / "model")
        title = next(iter(small_tmdb.movie_language))
        vector = loaded.vector_for("movies.title", title)
        assert np.array_equal(vector, tmdb_result.vector_for("movies.title", title))
        hits = loaded.embeddings.nearest(vector, k=3, category="movies.title")
        assert hits[0][1] == title

    def test_pipeline_save_facade(self, tmdb_result, small_tmdb, tmp_path):
        pipeline = RetroPipeline(small_tmdb.database, small_tmdb.embedding)
        pipeline.save(tmdb_result, tmp_path / "model", name="run1")
        loaded = RetroResult.load(tmp_path / "model", name="run1")
        assert np.array_equal(loaded.embeddings.matrix, tmdb_result.embeddings.matrix)


class TestStoreValidation:
    @pytest.fixture()
    def saved(self, tmdb_result, tmp_path):
        root = tmp_path / "model"
        tmdb_result.save(root)
        return root

    def test_missing_artifact(self, saved):
        with pytest.raises(StoreFormatError, match="no artifact"):
            EmbeddingStore(saved).load_result("nope")

    def test_corrupted_matrix_file(self, saved):
        matrix_path = next(saved.glob("result.*.npz"))
        payload = bytearray(matrix_path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        matrix_path.write_bytes(bytes(payload))
        with pytest.raises(StoreFormatError, match="corrupt"):
            RetroResult.load(saved)

    def test_version_mismatch(self, saved):
        header_path = saved / "result.json"
        header = json.loads(header_path.read_text())
        header["version"] = STORE_VERSION + 1
        header_path.write_text(json.dumps(header))
        with pytest.raises(StoreFormatError, match="version"):
            RetroResult.load(saved)

    def test_foreign_format_marker(self, saved):
        header_path = saved / "result.json"
        header = json.loads(header_path.read_text())
        header["format"] = "something-else"
        header_path.write_text(json.dumps(header))
        with pytest.raises(StoreFormatError):
            RetroResult.load(saved)

    def test_unparseable_header(self, saved):
        (saved / "result.json").write_text("{not json")
        with pytest.raises(StoreFormatError, match="unreadable"):
            RetroResult.load(saved)

    def test_kind_mismatch(self, saved):
        with pytest.raises(StoreFormatError, match="expected"):
            EmbeddingStore(saved).load_embedding_set("result")

    def test_invalid_artifact_names(self, saved):
        store = EmbeddingStore(saved)
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(StoreFormatError):
                store.artifact_kind(bad)

    def test_errors_are_repro_errors(self, saved):
        with pytest.raises(ReproError):
            EmbeddingStore(saved).load_result("nope")

    def test_overwrite_drops_stale_matrix_files(self, tmdb_result, saved):
        # mutate nothing; saving the same result twice must leave exactly
        # one content-addressed matrix file and a loadable artifact
        tmdb_result.save(saved)
        matrices = list(saved.glob("result.*.npz"))
        assert len(matrices) == 1
        loaded = RetroResult.load(saved)
        assert np.array_equal(loaded.embeddings.matrix, tmdb_result.embeddings.matrix)

    def test_out_of_range_category_index_rejected(self, saved):
        header_path = saved / "result.json"
        header = json.loads(header_path.read_text())
        header["extraction"]["categories"][0][1][0] = -3
        header_path.write_text(json.dumps(header))
        with pytest.raises(StoreFormatError, match="outside"):
            RetroResult.load(saved)

    def test_out_of_range_relation_pair_rejected(self, saved):
        header_path = saved / "result.json"
        header = json.loads(header_path.read_text())
        n = len(header["extraction"]["records"])
        header["extraction"]["relation_groups"][0]["pairs"][0] = [0, n + 5]
        header_path.write_text(json.dumps(header))
        with pytest.raises(StoreFormatError, match="outside"):
            RetroResult.load(saved)

    def test_bad_matrix_file_reference_rejected(self, saved):
        header_path = saved / "result.json"
        header = json.loads(header_path.read_text())
        header["matrix_file"] = "../escape.npz"
        header_path.write_text(json.dumps(header))
        with pytest.raises(StoreFormatError, match="matrix_file"):
            RetroResult.load(saved)
