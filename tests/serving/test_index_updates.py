"""Tests for in-place vector-index mutation (add / remove / update)."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving.index import FlatIndex, IVFIndex
from repro.serving.nsw import NSWIndex
from repro.serving.pq import PQIndex


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def build(kind, matrix):
    """Every index in exact-capable configuration: the mutation contract
    is identical across implementations, so each must match the flat
    reference bit for bit when its search is exhaustive."""
    if kind == "flat":
        return FlatIndex(matrix)
    if kind == "ivf":
        return IVFIndex(matrix, n_cells=8, nprobe=8, seed=1)
    if kind == "pq":
        return PQIndex(
            matrix, n_subspaces=4, n_cells=4, nprobe=4, rerank=10_000, seed=1
        )
    return NSWIndex(matrix, max_degree=12, ef_construction=48, ef_search=10_000)


@pytest.mark.parametrize("kind", ["flat", "ivf", "pq", "nsw"])
class TestIndexMutation:
    def test_add_returns_fresh_ids_and_serves_them(self, kind, rng):
        matrix = rng.standard_normal((300, 12))
        index = build(kind, matrix)
        new = rng.standard_normal((4, 12))
        ids = index.add(new)
        assert list(ids) == [300, 301, 302, 303]
        hits, _ = index.query(new[1], 1)
        assert hits[0] == 301
        # copy-on-write: the caller's matrix is never touched
        assert matrix.shape == (300, 12)
        assert index.n_rows == 304 and index.active_count == 304

    def test_remove_tombstones_rows(self, kind, rng):
        matrix = rng.standard_normal((100, 8))
        index = build(kind, matrix)
        target = matrix[42]
        hits, _ = index.query(target, 1)
        assert hits[0] == 42
        index.remove([42])
        assert index.has_tombstones and index.active_count == 99
        hits, scores = index.query(target, 100)
        assert 42 not in set(int(i) for i in hits if i >= 0)

    def test_update_rows_moves_a_vector(self, kind, rng):
        matrix = rng.standard_normal((200, 8))
        index = build(kind, matrix)
        vector = rng.standard_normal(8) * 3.0
        index.update_rows([7], vector[None, :])
        hits, _ = index.query(vector, 1)
        assert hits[0] == 7

    def test_touching_a_tombstoned_row_fails(self, kind, rng):
        index = build(kind, rng.standard_normal((50, 4)))
        index.remove([3])
        with pytest.raises(ServingError):
            index.update_rows([3], np.ones((1, 4)))

    def test_out_of_range_rows_fail(self, kind, rng):
        index = build(kind, rng.standard_normal((50, 4)))
        with pytest.raises(ServingError):
            index.remove([50])

    def test_mutated_index_matches_flat_reference(self, kind, rng):
        matrix = rng.standard_normal((150, 8))
        index = build(kind, matrix)
        added = rng.standard_normal((10, 8))
        index.add(added)
        index.remove(np.arange(0, 20))
        replacement = rng.standard_normal((5, 8))
        index.update_rows(np.arange(30, 35), replacement)

        reference = matrix.copy()
        reference[30:35] = replacement
        full = np.vstack((reference, added))
        queries = rng.standard_normal((16, 8))
        expected_scores = (full / np.maximum(
            np.linalg.norm(full, axis=1, keepdims=True), 1e-12
        )) @ (queries / np.maximum(
            np.linalg.norm(queries, axis=1, keepdims=True), 1e-12
        )).T
        expected_scores[:20] = -np.inf  # removed rows
        expected = np.argsort(-expected_scores.T, axis=1)[:, :5]
        got, _ = index.query_batch(queries, 5)
        assert np.array_equal(got, expected)


class TestIVFRecluster:
    def test_imbalance_triggers_lazy_recluster(self):
        rng = np.random.default_rng(3)
        index = IVFIndex(rng.standard_normal((200, 8)), n_cells=10, seed=2)
        assert not index.needs_recluster
        centre = rng.standard_normal(8)
        index.add(centre + 0.01 * rng.standard_normal((400, 8)))
        assert index.needs_recluster  # one cell swallowed the burst
        before = index.recluster_count
        index.query(centre, 3)  # lazy: the next query pays for it
        assert index.recluster_count == before + 1
        assert not index.needs_recluster

    def test_rebalance_preserves_membership(self):
        rng = np.random.default_rng(4)
        matrix = rng.standard_normal((120, 8))
        index = IVFIndex(matrix, n_cells=6, nprobe=6, seed=0)
        index.remove(np.arange(10))
        index.rebalance()
        assert sum(index.cell_sizes()) == index.active_count == 110
        hits, _ = index.query(matrix[50], 1)
        assert hits[0] == 50

    def test_from_partial_state_assigns_missing_rows(self):
        rng = np.random.default_rng(5)
        matrix = rng.standard_normal((80, 8))
        index = IVFIndex(matrix, n_cells=5, nprobe=5, seed=0)
        extra = rng.standard_normal((3, 8))
        grown = np.vstack((matrix, extra))
        assignments = np.concatenate(
            (index.assignments, -np.ones(3, dtype=np.int64))
        )
        restored = IVFIndex.from_partial_state(
            grown, index.centroids, assignments, nprobe=5
        )
        hits, _ = restored.query(extra[2], 1)
        assert hits[0] == 82
        assert sum(restored.cell_sizes()) == 83
