"""Tests for versioned embedding-set delta records and compaction."""

import numpy as np
import pytest

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.errors import StoreFormatError
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving.index import IVFIndex
from repro.serving.store import EmbeddingStore


@pytest.fixture()
def stream(tmp_path):
    dataset = generate_tmdb(num_movies=60, seed=8, embedding_dimension=16)
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    result = pipeline.run(iterations=120)
    retrofitter = pipeline.incremental_retrofitter(result)
    store = EmbeddingStore(tmp_path)
    index = IVFIndex(result.embeddings.matrix, n_cells=6, nprobe=6, seed=0)
    store.save_embedding_set("rn", result.embeddings, index=index)
    return dataset, retrofitter, store


def apply_one(dataset, retrofitter, key):
    delta = DatabaseDelta()
    delta.insert("movies", {
        "id": 60_000 + key, "title": f"silent meridian {key}",
        "original_language": "english",
        "overview": "a quiet voyage across the meridian",
        "budget": 1e7, "revenue": 2e7, "popularity": 1.0,
        "release_year": 2026, "collection_id": None,
    })
    delta.insert("movie_countries", {
        "id": 60_000 + key, "movie_id": 60_000 + key, "country_id": 1,
    })
    if key % 2 == 0:
        victim = dataset.database.table("reviews").rows[0]
        delta.delete("reviews", victim["id"])
    return retrofitter.apply(dataset.database, delta)


class TestDeltaRecords:
    def test_append_and_replay(self, stream):
        dataset, retrofitter, store = stream
        for key in range(1, 3):
            update = apply_one(dataset, retrofitter, key)
            store.append_embedding_set_delta("rn", update)
        assert [v for v, _ in store.list_embedding_set_deltas("rn")] == [1, 2]
        assert store.latest_version("rn") == 2

        loaded, index, version = store.load_embedding_set_versioned("rn")
        assert version == 2
        assert len(loaded) == len(retrofitter.embeddings)
        assert np.allclose(loaded.matrix, retrofitter.embeddings.matrix)
        # the IVF index evolved with the replay — no k-means, new rows served
        assert isinstance(index, IVFIndex)
        query = retrofitter.embeddings.vector_for(
            "movies.title", "silent meridian 2"
        )
        hits, _ = index.query(query, 1)
        assert loaded.extraction.records[int(hits[0])].text == "silent meridian 2"

    def test_replay_preserves_value_to_vector_mapping(self, stream):
        """Regression: the store writes headers with sorted JSON keys, which
        must not reorder how added values map onto appended matrix rows —
        added values span multiple categories in non-alphabetical order."""
        dataset, retrofitter, store = stream
        update = apply_one(dataset, retrofitter, 1)
        added = [
            (category, text)
            for category, texts in update.extraction_delta.added_values.items()
            for text in texts
        ]
        assert len({category for category, _ in added}) > 1
        store.append_embedding_set_delta("rn", update)
        loaded = store.load_embedding_set("rn")
        for category, text in added:
            assert np.array_equal(
                loaded.vector_for(category, text),
                retrofitter.embeddings.vector_for(category, text),
            ), (category, text)

    def test_compaction_folds_the_chain(self, stream):
        dataset, retrofitter, store = stream
        for key in range(1, 4):
            store.append_embedding_set_delta(
                "rn", apply_one(dataset, retrofitter, key)
            )
        version = store.compact_embedding_set("rn")
        assert version == 3
        assert store.list_embedding_set_deltas("rn") == []
        loaded, index, loaded_version = store.load_embedding_set_versioned("rn")
        assert loaded_version == 3
        assert np.allclose(loaded.matrix, retrofitter.embeddings.matrix)
        assert isinstance(index, IVFIndex)

    def test_row_count_preserving_delta_still_evolves_the_index(self, stream):
        """Regression: a delta that only moves existing vectors (a new link
        row between existing values — no values added or removed) keeps the
        row count, but the restored index must still serve the replayed
        matrix, not the base one."""
        dataset, retrofitter, store = stream
        movie = dataset.database.table("movies").rows[0]["id"]
        keyword_links = dataset.database.table("movie_keywords")
        next_id = max(row["id"] for row in keyword_links) + 1
        existing_keywords = {row["keyword_id"] for row in keyword_links
                             if row["movie_id"] == movie}
        fresh_keyword = next(
            row["id"] for row in dataset.database.table("keywords")
            if row["id"] not in existing_keywords
        )
        delta = DatabaseDelta().insert("movie_keywords", {
            "id": next_id, "movie_id": movie, "keyword_id": fresh_keyword,
        })
        update = retrofitter.apply(dataset.database, delta)
        assert update.delta_map.n_added == 0 and update.delta_map.n_removed == 0
        assert update.changed_rows.size > 0
        store.append_embedding_set_delta("rn", update)
        loaded, index, _ = store.load_embedding_set_versioned("rn")
        assert index is not None
        assert np.allclose(index.matrix, loaded.matrix)

    def test_broken_chain_refuses_to_load(self, stream):
        dataset, retrofitter, store = stream
        for key in range(1, 3):
            store.append_embedding_set_delta(
                "rn", apply_one(dataset, retrofitter, key)
            )
        store.delete_artifact("rn.delta000001")
        with pytest.raises(StoreFormatError, match="delta chain"):
            store.load_embedding_set("rn")

    def test_legacy_update_cannot_be_appended(self, stream):
        dataset, retrofitter, store = stream
        legacy = retrofitter.update(dataset.database)
        with pytest.raises(StoreFormatError):
            store.append_embedding_set_delta("rn", legacy)

    def test_reserved_delta_names_rejected(self, stream):
        _, retrofitter, store = stream
        with pytest.raises(StoreFormatError):
            store.save_embedding_set("rn.delta000009", retrofitter.embeddings)


class TestDeltaRecordReads:
    """The shard workers' raw replay primitive."""

    def test_record_replays_to_the_versioned_load(self, stream):
        """Manually replaying DeltaRecords over the read-only base matrix
        reproduces exactly what load_embedding_set_versioned serves."""
        dataset, retrofitter, store = stream
        for key in range(1, 3):
            store.append_embedding_set_delta(
                "rn", apply_one(dataset, retrofitter, key)
            )
        base, version = store.load_embedding_set_readonly("rn")
        assert version == 0
        extraction = base.extraction.copy()
        matrix = np.asarray(base.matrix)
        for target in (1, 2):
            record = store.read_embedding_set_delta("rn", target)
            assert record.version == target
            delta_map = extraction.apply_delta(record.extraction_delta)
            new_matrix = np.zeros(
                (len(extraction), matrix.shape[1]), dtype=np.float64
            )
            surviving = delta_map.surviving_old_indices()
            new_matrix[delta_map.old_to_new[surviving]] = matrix[surviving]
            assert record.added_indices == list(delta_map.added_indices)
            if record.added_indices:
                new_matrix[record.added_indices] = record.added_matrix
            if record.changed_rows:
                new_matrix[record.changed_rows] = record.changed_matrix
            matrix = new_matrix
        served, _, served_version = store.load_embedding_set_versioned("rn")
        assert served_version == 2
        assert np.array_equal(matrix, served.matrix)
        assert extraction.texts == served.extraction.texts

    def test_missing_record_raises(self, stream):
        _, _, store = stream
        with pytest.raises(StoreFormatError, match="no artifact"):
            store.read_embedding_set_delta("rn", 7)
