"""MultiFrontDeployment: N front processes, one replica pool, one door.

The basic tests run a read-only tier (cheap, no solver); the failover
test runs the full write stack — a retrofitting replicated tier, two
fronts, a retrying client — and kills one front mid-stream, asserting
that no acked write is ever lost.
"""

import threading

import numpy as np
import pytest

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.retrofit.combine import TextValueEmbeddingSet
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving import (
    EmbeddingStore,
    MultiFrontDeployment,
    ReplicatedServingTier,
    ServingClient,
)
from repro.util.faults import RetryPolicy


@pytest.fixture()
def deployed(tmdb_extraction, tmp_path):
    """A read-only replicated tier behind two balanced HTTP fronts."""
    rng = np.random.default_rng(7)
    matrix = rng.integers(-2, 3, size=(len(tmdb_extraction), 12)).astype(
        np.float64
    )
    embeddings = TextValueEmbeddingSet(tmdb_extraction, matrix, name="INT")
    store = EmbeddingStore(tmp_path / "store")
    store.save_embedding_set("int", embeddings)
    queries = rng.integers(-3, 4, size=(4, 12)).astype(np.float64)
    with ReplicatedServingTier(store.root, "int", n_replicas=2) as tier:
        with MultiFrontDeployment(tier, n_fronts=2) as deployment:
            yield deployment, queries


class TestDeploymentBasics:
    def test_two_fronts_share_one_pool_behind_one_address(self, deployed):
        deployment, queries = deployed
        assert deployment.live_fronts == 2
        ports = deployment.front_ports
        assert len(ports) == 2 and len(set(ports)) == 2
        client = ServingClient(deployment.address, retry=RetryPolicy(attempts=2))
        for query in queries:
            body = client.topk(query, k=3)
            assert body["version"] == 0
            assert len(body["results"]) == 3
        health = client.health()
        assert health["status"] == "ok"
        assert health["live_followers"] == 2
        assert health["live_fronts"] == 2

    def test_stats_aggregate_per_front_counters(self, deployed):
        deployment, queries = deployed
        # one request per connection → round-robin spreads them evenly
        for i in range(6):
            ServingClient(deployment.address, client_id=f"c{i}").topk(
                queries[i % len(queries)], k=2
            )
        stats = deployment.stats()
        assert stats["live_fronts"] == 2
        assert len(stats["fronts"]) == 2
        per_front = [entry["front"]["requests"] for entry in stats["fronts"]]
        assert sum(per_front) == stats["totals"]["requests"] == 6
        assert all(count > 0 for count in per_front)  # both fronts served
        assert stats["balancer"]["connections"] >= 6
        assert stats["target"]["n_replicas"] == 2

    def test_per_front_stats_expose_the_deployment_aggregate(self, deployed):
        deployment, queries = deployed
        client = ServingClient(deployment.address)
        client.topk(queries[0], k=2)
        body = client.stats()
        assert body["deployment"]["live_fronts"] == 2
        assert body["deployment"]["totals"]["requests"] >= 1


class TestFrontFailover:
    def test_killing_a_front_mid_stream_loses_no_acked_write(self, tmp_path):
        dataset = generate_tmdb(num_movies=60, seed=8, embedding_dimension=16)
        pipeline = RetroPipeline(
            dataset.database,
            dataset.embedding,
            hyperparams=RetroHyperparameters.paper_rn_default(),
        )
        result = pipeline.run(iterations=120)
        retrofitter = pipeline.incremental_retrofitter(result)
        store = EmbeddingStore(tmp_path / "store")
        store.save_embedding_set("rn", result.embeddings)
        rng = np.random.default_rng(4)
        query = rng.integers(-3, 4, size=16).astype(np.float64)

        def movie(i):
            return {
                "id": 80_000 + i, "title": f"severed cable {i}",
                "original_language": "english",
                "overview": "a write that survived its front",
                "budget": 1e7, "revenue": 2e7, "popularity": 1.0,
                "release_year": 2026, "collection_id": None,
            }

        tier = ReplicatedServingTier(
            store.root, "rn", n_replicas=2,
            database=dataset.database, retrofitter=retrofitter,
            solve_iterations=60,
        )
        with tier:
            with MultiFrontDeployment(
                tier, n_fronts=2,
                front_options={"write_timeout_seconds": 300.0},
            ) as deployment:
                client = ServingClient(
                    deployment.address,
                    retry=RetryPolicy(attempts=6, base_delay=0.05),
                    timeout=300.0,
                )
                acked = []
                killed = threading.Event()

                def writer():
                    for i in range(3):
                        version = client.submit(
                            DatabaseDelta().insert("movies", movie(i)),
                            submission_id=f"failover-{i}",
                        )
                        acked.append(version)
                        if i == 0:
                            deployment.kill_front(0)
                            killed.set()

                thread = threading.Thread(target=writer)
                thread.start()
                assert killed.wait(timeout=300)
                thread.join(timeout=300)
                assert not thread.is_alive()
                # every submit was eventually acked, through whichever
                # front survived, at strictly increasing log positions
                assert len(acked) == 3
                assert acked == sorted(acked)
                assert len(set(acked)) == 3
                assert deployment.live_fronts == 1
                # zero lost acked writes: the log is at (or past) every
                # acked version, and a floored read through the balancer
                # observes the newest one
                assert tier.stats.log_version >= max(acked)
                body = client.topk(query, k=3, min_version=max(acked))
                assert body["version"] >= max(acked)
                # resubmitting an acked id is a dedup hit, not a reapply
                log_before = tier.stats.log_version
                again = client.submit(
                    DatabaseDelta().insert("movies", movie(1)),
                    submission_id="failover-1",
                )
                assert again == acked[1]
                assert tier.stats.log_version == log_before
