"""Tests for the product-quantised (PQ / IVF-PQ) index."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import FlatIndex, PQIndex


def recall_at_k(expected: np.ndarray, got: np.ndarray, k: int) -> float:
    return float(
        np.mean(
            [
                len(set(a.tolist()) & set(b.tolist())) / k
                for a, b in zip(expected[:, :k], got[:, :k])
            ]
        )
    )


def clustered(rng, n, dim, centres=12):
    """Gaussian mixture — the regime PQ's coarse layer is built for."""
    means = rng.normal(scale=4.0, size=(centres, dim))
    labels = rng.integers(centres, size=n)
    return means[labels] + rng.normal(size=(n, dim))


class TestPQExactness:
    def test_full_rerank_full_probe_equals_flat(self, rng):
        matrix = rng.normal(size=(400, 16))
        queries = rng.normal(size=(9, 16))
        flat_i, flat_s = FlatIndex(matrix).query_batch(queries, 10)
        pq = PQIndex(matrix, n_subspaces=4, n_cells=4, nprobe=4, rerank=400)
        pq_i, pq_s = pq.query_batch(queries, 10)
        assert np.array_equal(flat_i, pq_i)
        assert np.allclose(flat_s, pq_s)

    def test_tie_stability_with_duplicate_rows(self, rng):
        base = rng.normal(size=(20, 8))
        matrix = np.vstack([base] * 5)  # every row duplicated 5 times
        queries = rng.normal(size=(4, 8))
        flat_i, _ = FlatIndex(matrix).query_batch(queries, 15)
        pq = PQIndex(matrix, n_subspaces=4, rerank=100)
        pq_i, _ = pq.query_batch(queries, 15)
        assert np.array_equal(flat_i, pq_i)

    def test_single_query_matches_batch(self, rng):
        matrix = rng.normal(size=(200, 12))
        pq = PQIndex(matrix, n_subspaces=6, rerank=32)
        queries = rng.normal(size=(5, 12))
        batch_i, batch_s = pq.query_batch(queries, 7)
        for row in range(5):
            one_i, one_s = pq.query(queries[row], 7)
            assert np.array_equal(batch_i[row], one_i)
            assert np.allclose(batch_s[row], one_s)

    def test_dot_metric_exact_mode(self, rng):
        matrix = rng.normal(size=(150, 8))
        queries = rng.normal(size=(4, 8))
        flat_i, flat_s = FlatIndex(matrix, metric="dot").query_batch(queries, 5)
        pq = PQIndex(matrix, metric="dot", n_subspaces=4, rerank=150)
        pq_i, pq_s = pq.query_batch(queries, 5)
        assert np.array_equal(flat_i, pq_i)
        assert np.allclose(flat_s, pq_s)


class TestPQRecall:
    def test_recall_monotone_in_rerank(self, rng):
        """Top-R shortlists nest, so recall@k never drops as R grows."""
        matrix = clustered(rng, 2000, 16)
        queries = clustered(rng, 30, 16)
        flat_i, _ = FlatIndex(matrix).query_batch(queries, 10)
        recalls = []
        for rerank in (10, 40, 160, 640, 2000):
            pq = PQIndex(matrix, n_subspaces=4, rerank=rerank, seed=0)
            pq_i, _ = pq.query_batch(queries, 10)
            recalls.append(recall_at_k(flat_i, pq_i, 10))
        assert recalls == sorted(recalls)
        assert recalls[-1] == 1.0  # rerank = n is exact

    def test_adc_only_mode_is_a_reasonable_approximation(self, rng):
        matrix = clustered(rng, 1500, 16)
        queries = clustered(rng, 25, 16)
        flat_i, _ = FlatIndex(matrix).query_batch(queries, 10)
        pq = PQIndex(matrix, n_subspaces=8, rerank=0, seed=0)
        pq_i, _ = pq.query_batch(queries, 10)
        assert recall_at_k(flat_i, pq_i, 10) >= 0.5

    def test_ivfpq_partial_probe_recall(self, rng):
        matrix = clustered(rng, 3000, 16)
        queries = matrix[rng.choice(3000, size=25, replace=False)] + 0.01
        flat_i, _ = FlatIndex(matrix).query_batch(queries, 10)
        pq = PQIndex(
            matrix, n_subspaces=4, n_cells=16, nprobe=4, rerank=128, seed=0
        )
        pq_i, _ = pq.query_batch(queries, 10)
        assert recall_at_k(flat_i, pq_i, 10) >= 0.8

    def test_float32_agrees_with_float64(self, rng):
        matrix = clustered(rng, 800, 16)
        queries = clustered(rng, 10, 16)
        hi = PQIndex(matrix, n_subspaces=4, rerank=64, seed=0)
        lo = PQIndex(
            matrix.astype(np.float32), n_subspaces=4, rerank=64, seed=0
        )
        hi_i, hi_s = hi.query_batch(queries, 10)
        lo_i, lo_s = lo.query_batch(queries, 10)
        assert lo.matrix.dtype == np.float32
        assert recall_at_k(hi_i, lo_i, 10) >= 0.9
        assert np.allclose(hi_s[0], lo_s[0], atol=1e-5)


class TestPQMemory:
    def test_codes_are_packed_uint8(self, rng):
        pq = PQIndex(rng.normal(size=(300, 12)), n_subspaces=6)
        assert pq.codes.dtype == np.uint8
        assert pq.codes.shape == (300, 6)

    def test_resident_memory_is_a_fraction_of_flat(self, rng):
        matrix = rng.normal(size=(5000, 32))
        flat = FlatIndex(matrix)
        pq = PQIndex(matrix, n_subspaces=8, seed=0)
        assert pq.memory_bytes() < flat.memory_bytes() / 3

    def test_default_subspaces_divide_dimension(self, rng):
        assert PQIndex(rng.normal(size=(64, 300))).n_subspaces == 30
        assert PQIndex(rng.normal(size=(64, 48))).n_subspaces == 24
        assert PQIndex(rng.normal(size=(64, 13))).n_subspaces == 13


class TestPQState:
    def test_round_trip_preserves_results(self, rng):
        matrix = rng.normal(size=(300, 12))
        queries = rng.normal(size=(6, 12))
        pq = PQIndex(matrix, n_subspaces=6, n_cells=4, nprobe=2, rerank=32)
        restored = PQIndex.from_state(
            matrix,
            pq.codebooks,
            pq.centroids,
            pq.assignments,
            pq.codes,
            nprobe=2,
            rerank=32,
        )
        a_i, a_s = pq.query_batch(queries, 8)
        b_i, b_s = restored.query_batch(queries, 8)
        assert np.array_equal(a_i, b_i)
        assert np.array_equal(a_s, b_s)

    def test_partial_state_encodes_missing_rows(self, rng):
        matrix = rng.normal(size=(200, 12))
        pq = PQIndex(matrix, n_subspaces=6, n_cells=4, nprobe=4, rerank=300)
        extra = rng.normal(size=(5, 12))
        grown = np.vstack((matrix, extra))
        assignments = np.concatenate(
            (pq.assignments, -np.ones(5, dtype=np.int64))
        )
        restored = PQIndex.from_partial_state(
            grown,
            pq.codebooks,
            pq.centroids,
            assignments,
            pq.codes,
            nprobe=4,
            rerank=300,
        )
        assert restored.assignments.min() >= 0
        hits, _ = restored.query(extra[3], 1)
        assert hits[0] == 203

    def test_from_state_rejects_unencoded_rows(self, rng):
        matrix = rng.normal(size=(50, 8))
        pq = PQIndex(matrix, n_subspaces=4)
        bad = pq.assignments.copy()
        bad[7] = -1
        with pytest.raises(ServingError):
            PQIndex.from_state(
                matrix, pq.codebooks, pq.centroids, bad, pq.codes
            )

    def test_from_state_rejects_shape_mismatches(self, rng):
        matrix = rng.normal(size=(50, 8))
        pq = PQIndex(matrix, n_subspaces=4)
        with pytest.raises(ServingError):
            PQIndex.from_state(
                matrix,
                pq.codebooks,
                pq.centroids,
                pq.assignments,
                pq.codes[:, :2],
            )
        with pytest.raises(ServingError):
            PQIndex.from_state(
                matrix,
                pq.codebooks[:, :, :1],
                pq.centroids,
                pq.assignments,
                pq.codes,
            )


class TestPQValidation:
    def test_rejects_bad_configuration(self, rng):
        matrix = rng.normal(size=(40, 12))
        with pytest.raises(ServingError):
            PQIndex(np.zeros((0, 4)))
        with pytest.raises(ServingError):
            PQIndex(matrix, n_subspaces=5)  # does not divide 12
        with pytest.raises(ServingError):
            PQIndex(matrix, n_codes=300)  # cannot pack into uint8
        with pytest.raises(ServingError):
            PQIndex(matrix, nprobe=0)
        with pytest.raises(ServingError):
            PQIndex(matrix, rerank=-1)

    def test_cells_capped_at_rows(self, rng):
        pq = PQIndex(rng.normal(size=(4, 8)), n_cells=100, nprobe=100)
        assert pq.n_cells == 4
