"""Persistence of ANN index state (PQ codebooks/codes, NSW graphs) and
the float32 storage option.

Mirrors ``test_index_persistence.py`` for the two approximate indexes: an
artifact that carries trained PQ or NSW state must serve identical answers
after reload without re-running k-means or graph construction, survive
delta replay through ``from_partial_state``, and a ``dtype="float32"``
artifact must stay float32 through mmap loads and delta replay while
agreeing with the float64 original to ~1e-7 cosine.
"""

import numpy as np
import pytest

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.retrofit.combine import TextValueEmbeddingSet
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving.nsw import NSWIndex
from repro.serving.pq import PQIndex
from repro.serving.session import ServingSession, index_factory_for
from repro.serving.store import EmbeddingStore, StoreFormatError


@pytest.fixture()
def embeddings(tmdb_extraction, tmdb_base):
    return TextValueEmbeddingSet(tmdb_extraction, tmdb_base.matrix.copy(), name="PV")


@pytest.fixture()
def stream(tmp_path):
    """A trained TMDB corpus + retrofitter + store with a delta stream."""
    dataset = generate_tmdb(num_movies=60, seed=8, embedding_dimension=16)
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    result = pipeline.run(iterations=120)
    retrofitter = pipeline.incremental_retrofitter(result)
    store = EmbeddingStore(tmp_path / "store")
    return dataset, retrofitter, store


def make_delta(dataset, key):
    delta = DatabaseDelta()
    delta.insert("movies", {
        "id": 60_000 + key, "title": f"silent meridian {key}",
        "original_language": "english",
        "overview": "a quiet voyage across the meridian",
        "budget": 1e7, "revenue": 2e7, "popularity": 1.0,
        "release_year": 2026, "collection_id": None,
    })
    delta.insert("movie_countries", {
        "id": 60_000 + key, "movie_id": 60_000 + key, "country_id": 1,
    })
    if key % 2 == 0:  # deletions exercise the row-map remapping paths
        victim = dataset.database.table("reviews").rows[0]
        delta.delete("reviews", victim["id"])
    return delta


class TestPQStorePersistence:
    def test_roundtrip_skips_training(self, embeddings, tmp_path, monkeypatch):
        index = PQIndex(
            embeddings.matrix, n_subspaces=4, n_cells=4, nprobe=4,
            rerank=32, seed=1,
        )
        store = EmbeddingStore(tmp_path)
        store.save_embedding_set("served", embeddings, index=index)

        def boom(self, iterations, train_sample, seed):  # pragma: no cover
            raise AssertionError("PQ k-means re-ran on load")

        monkeypatch.setattr(PQIndex, "_train", boom)
        _, loaded = store.load_embedding_set_with_index("served")
        assert isinstance(loaded, PQIndex)
        assert loaded.nprobe == index.nprobe and loaded.rerank == index.rerank
        np.testing.assert_array_equal(loaded.codes, index.codes)
        np.testing.assert_array_equal(loaded.assignments, index.assignments)
        query = embeddings.matrix[3]
        got_ids, got_scores = loaded.query(query, 5)
        want_ids, want_scores = index.query(query, 5)
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_allclose(got_scores, want_scores)

    def test_delta_replay_restores_partial_state(self, stream, monkeypatch):
        dataset, retrofitter, store = stream
        embeddings = retrofitter.embeddings
        index = PQIndex(
            embeddings.matrix, n_subspaces=4, n_cells=6, nprobe=6,
            rerank=10_000, seed=2,
        )
        store.save_embedding_set("rn", embeddings, index=index)
        for key in (1, 2):
            update = retrofitter.apply(dataset.database, make_delta(dataset, key))
            store.append_embedding_set_delta("rn", update)

        def boom(self, iterations, train_sample, seed):  # pragma: no cover
            raise AssertionError("PQ k-means re-ran during delta replay")

        monkeypatch.setattr(PQIndex, "_train", boom)
        loaded_set, loaded, version = store.load_embedding_set_versioned("rn")
        assert version == 2
        assert isinstance(loaded, PQIndex)
        assert loaded.n_rows == len(loaded_set)
        # exact-capable config: the replayed index must agree with a flat
        # scan over the replayed matrix
        reference = ServingSession(loaded_set)  # default flat factory path
        query = loaded_set.vector_for("movies.title", "silent meridian 2")
        ids, scores = loaded.query(query, 3)
        flat_hits = reference.topk(query, 3)
        got = [loaded_set.extraction.records[int(i)].text for i in ids]
        assert got == [text for _, text, _ in flat_hits]
        assert "silent meridian 2" in got


class TestNSWStorePersistence:
    def test_roundtrip_preserves_graph(self, embeddings, tmp_path, monkeypatch):
        index = NSWIndex(
            embeddings.matrix, max_degree=10, ef_construction=48, ef_search=32
        )
        store = EmbeddingStore(tmp_path)
        store.save_embedding_set("served", embeddings, index=index)

        def boom(self, row):  # pragma: no cover - guard
            raise AssertionError("NSW re-linked rows on load")

        monkeypatch.setattr(NSWIndex, "_link", boom)
        _, loaded = store.load_embedding_set_with_index("served")
        assert isinstance(loaded, NSWIndex)
        assert loaded.entry_point == index.entry_point
        assert loaded.max_degree == index.max_degree
        np.testing.assert_array_equal(loaded.adjacency, index.adjacency)
        queries = embeddings.matrix[:5]
        got_ids, got_scores = loaded.query_batch(queries, 4)
        want_ids, want_scores = index.query_batch(queries, 4)
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_array_equal(got_scores, want_scores)

    def test_delta_replay_relinks_only_touched_rows(self, stream):
        dataset, retrofitter, store = stream
        embeddings = retrofitter.embeddings
        index = NSWIndex(embeddings.matrix, max_degree=12, ef_search=10_000)
        store.save_embedding_set("rn", embeddings, index=index)
        for key in (1, 2, 3):
            update = retrofitter.apply(dataset.database, make_delta(dataset, key))
            store.append_embedding_set_delta("rn", update)

        loaded_set, loaded, version = store.load_embedding_set_versioned("rn")
        assert version == 3
        assert isinstance(loaded, NSWIndex)
        assert loaded.n_rows == len(loaded_set)
        # exhaustive beam: the replayed graph must answer exactly, so it
        # matches a brute-force scan over the replayed matrix
        from repro.serving.index import FlatIndex

        flat = FlatIndex(loaded_set.matrix)
        rng = np.random.default_rng(5)
        queries = rng.normal(size=(8, loaded_set.dimension))
        queries[0] = loaded_set.vector_for("movies.title", "silent meridian 3")
        want_ids, _ = flat.query_batch(queries, 5)
        got_ids, _ = loaded.query_batch(queries, 5)
        np.testing.assert_array_equal(got_ids, want_ids)


class TestFloat32Storage:
    def test_dtype_preserved_and_agrees_with_float64(self, embeddings, tmp_path):
        store = EmbeddingStore(tmp_path)
        store.save_embedding_set("wide", embeddings)
        store.save_embedding_set("narrow", embeddings, dtype="float32")
        wide, _, _ = store.load_embedding_set_versioned("wide")
        narrow, _, _ = store.load_embedding_set_versioned("narrow")
        assert wide.matrix.dtype == np.float64
        assert narrow.matrix.dtype == np.float32

        norms = np.linalg.norm(wide.matrix, axis=1)
        live = norms > 1e-12
        a = wide.matrix[live] / norms[live][:, None]
        b = narrow.matrix[live].astype(np.float64)
        b /= np.linalg.norm(b, axis=1, keepdims=True)
        cosines = np.sum(a * b, axis=1)
        assert cosines.min() > 1 - 1e-5

    def test_dtype_survives_delta_replay(self, stream):
        dataset, retrofitter, store = stream
        store.save_embedding_set(
            "rn", retrofitter.embeddings, dtype="float32"
        )
        update = retrofitter.apply(dataset.database, make_delta(dataset, 9))
        store.append_embedding_set_delta("rn", update)
        loaded, _, version = store.load_embedding_set_versioned("rn")
        assert version == 1
        assert loaded.matrix.dtype == np.float32

    def test_queries_work_on_float32_session(self, embeddings, tmp_path):
        store = EmbeddingStore(tmp_path)
        store.save_embedding_set("narrow", embeddings, dtype="float32")
        session = ServingSession.from_store(tmp_path, "narrow")
        assert session.embeddings.matrix.dtype == np.float32
        hits = session.topk(embeddings.matrix[7], 3)
        assert len(hits) == 3

    def test_rejects_non_float_dtypes(self, embeddings, tmp_path):
        store = EmbeddingStore(tmp_path)
        with pytest.raises(StoreFormatError):
            store.save_embedding_set("bad", embeddings, dtype="int8")


class TestNSWSessionDrainsDeltas:
    """The acceptance path: a live NSW-indexed session drains a delta
    stream entirely in place and keeps agreeing with a rebuilt index."""

    def test_apply_update_stream_in_place(self, stream):
        dataset, retrofitter, store = stream
        factory = index_factory_for(
            "nsw", max_degree=12, ef_construction=48, ef_search=10_000
        )
        session = ServingSession(retrofitter.embeddings, index_factory=factory)
        live_index = session.index_for(None)
        assert isinstance(live_index, NSWIndex)

        for key in range(1, 6):
            update = retrofitter.apply(dataset.database, make_delta(dataset, key))
            stats = session.apply_update(update)
            assert stats.index_updated_in_place
            assert session.index_for(None) is live_index  # never rebuilt

        rebuilt = NSWIndex(
            session.embeddings.matrix, max_degree=12,
            ef_construction=48, ef_search=10_000,
        )
        # the drained graph differs from the rebuilt one, but both are
        # exhaustive at this beam width over the same live rows, modulo
        # tombstones the in-place index still carries
        rng = np.random.default_rng(11)
        queries = rng.normal(size=(12, session.dimension))
        live_ids, live_scores = live_index.query_batch(queries, 10)
        scope = np.asarray(session._scope_rows[None], dtype=np.int64)
        mapped = np.where(live_ids >= 0, scope[np.clip(live_ids, 0, None)], -1)
        want_ids, want_scores = rebuilt.query_batch(queries, 10)
        np.testing.assert_array_equal(mapped, want_ids)
        # cosine scores agree far inside the 1e-3 acceptance budget
        np.testing.assert_allclose(live_scores, want_scores, atol=1e-3)

        # the drained session serves the same nearest text as a brute-force
        # session over its own embeddings (the inserted titles are near
        # duplicates of one another, so pin the text, not a specific key)
        newest = session.embeddings.vector_for(
            "movies.title", "silent meridian 5"
        )
        reference = ServingSession(session.embeddings)
        assert session.topk(newest, 1)[0][1] == reference.topk(newest, 1)[0][1]
        assert session.topk(newest, 1)[0][1].startswith("silent meridian")
