"""Tests for the batched query front (concurrent top-k coalescing)."""

import threading

import numpy as np
import pytest

from repro.datasets import generate_tmdb
from repro.errors import ServingError
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving.runtime import BatchedQueryFront
from repro.serving.session import ServingSession


@pytest.fixture(scope="module")
def served_session():
    dataset = generate_tmdb(num_movies=40, seed=5, embedding_dimension=16)
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    result = pipeline.run(iterations=120)
    session = ServingSession(result.embeddings)
    session.settle_indexes()
    return session


class TestBatchedQueryFront:
    def test_results_match_direct_queries(self, served_session):
        matrix = served_session.embeddings.matrix
        with BatchedQueryFront(served_session, window_seconds=0.01) as front:
            futures = [front.submit(matrix[row], 5) for row in range(12)]
            batched = [future.result(timeout=10.0) for future in futures]
        direct = [served_session.topk(matrix[row], 5) for row in range(12)]
        # scores may differ in the last ulp (batched gemm vs single gemv
        # accumulate in different orders); hits and ranking must not
        for batched_hits, direct_hits in zip(batched, direct):
            assert [hit[:2] for hit in batched_hits] == [
                hit[:2] for hit in direct_hits
            ]
            assert np.allclose(
                [hit[2] for hit in batched_hits],
                [hit[2] for hit in direct_hits],
            )

    def test_requests_actually_coalesce(self, served_session):
        matrix = served_session.embeddings.matrix
        with BatchedQueryFront(
            served_session, window_seconds=0.05, max_batch=32
        ) as front:
            barrier = threading.Barrier(4)

            def client(start):
                barrier.wait()
                futures = [
                    front.submit(matrix[start + i], 3) for i in range(8)
                ]
                return [f.result(timeout=10.0) for f in futures]

            threads = [
                threading.Thread(target=client, args=(start,))
                for start in (0, 8, 16, 24)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
            stats = front.stats
        assert stats.requests == 32
        # 32 requests landing within one window must not take 32 scans
        assert stats.batches_dispatched < stats.requests
        assert stats.largest_batch >= 2
        assert stats.mean_batch_size > 1.0

    def test_mixed_k_and_category_grouping(self, served_session):
        category = served_session.categories[0]
        vector = served_session.embeddings.matrix[0]
        with BatchedQueryFront(served_session, window_seconds=0.02) as front:
            f1 = front.submit(vector, 3)
            f2 = front.submit(vector, 5)
            f3 = front.submit(vector, 3, category=category)
            assert len(f1.result(timeout=10.0)) == 3
            assert len(f2.result(timeout=10.0)) == 5
            assert all(
                hit[0] == category for hit in f3.result(timeout=10.0)
            )

    def test_bad_vector_rejected_at_submit(self, served_session):
        # a malformed vector must fail fast and never poison the batch
        # matrix its co-batched requests are stacked into
        good = served_session.embeddings.matrix[0]
        with BatchedQueryFront(served_session, window_seconds=0.02) as front:
            good_future = front.submit(good, 5)
            with pytest.raises(ServingError, match="shape"):
                front.submit(np.zeros(3), 5)
            assert len(good_future.result(timeout=10.0)) == 5

    def test_close_flushes_pending_requests(self, served_session):
        vector = served_session.embeddings.matrix[1]
        front = BatchedQueryFront(served_session, window_seconds=0.05)
        futures = [front.submit(vector, 2) for _ in range(4)]
        front.close(timeout=10.0)
        for future in futures:
            assert len(future.result(timeout=1.0)) == 2
        with pytest.raises(ServingError, match="closed"):
            front.submit(vector, 2)

    def test_blocking_topk_wrapper(self, served_session):
        vector = served_session.embeddings.matrix[2]
        with BatchedQueryFront(served_session, window_seconds=0.001) as front:
            assert front.topk(vector, 4) == served_session.topk(vector, 4)
