"""Tests for live session updates and the versioned query cache."""

import numpy as np
import pytest

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving.index import IVFIndex
from repro.serving.session import ServingSession, default_index_factory


@pytest.fixture()
def served_pipeline():
    # function-scoped: every test mutates the database through its deltas
    dataset = generate_tmdb(num_movies=80, seed=6, embedding_dimension=16)
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    result = pipeline.run(iterations=120)
    return dataset, pipeline, result


def movie_delta(key=0):
    delta = DatabaseDelta()
    delta.insert("movies", {
        "id": 70_000 + key, "title": f"emerald horizon {key}",
        "original_language": "english",
        "overview": "an island adventure with hidden treasure",
        "budget": 1e7, "revenue": 2e7, "popularity": 1.5,
        "release_year": 2026, "collection_id": None,
    })
    delta.insert("movie_countries", {
        "id": 70_000 + key, "movie_id": 70_000 + key, "country_id": 1,
    })
    return delta


class TestApplyUpdate:
    def test_update_without_index_rebuild(self, served_pipeline):
        dataset, pipeline, result = served_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        session = ServingSession(
            result.embeddings, index_factory=default_index_factory(ivf_threshold=64)
        )
        full_index = session.index_for(None)
        assert isinstance(full_index, IVFIndex)
        version = session.version

        update = retrofitter.apply(dataset.database, movie_delta(1))
        stats = session.apply_update(update)

        assert session.version == version + 1
        assert stats.index_updated_in_place
        assert session.index_for(None) is full_index  # no rebuild, no k-means
        new_vector = update.embeddings.vector_for(
            "movies.title", "emerald horizon 1"
        )
        assert session.topk(new_vector, 1)[0][1] == "emerald horizon 1"

    def test_removed_value_never_served(self, served_pipeline):
        dataset, pipeline, result = served_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        session = ServingSession(
            retrofitter.embeddings,
            index_factory=default_index_factory(ivf_threshold=64),
        )
        session.index_for(None)
        victim = dataset.database.table("reviews").rows[0]
        update = retrofitter.apply(
            dataset.database, DatabaseDelta().delete("reviews", victim["id"])
        )
        removed = {
            (category, text)
            for category, texts in update.extraction_delta.removed_values.items()
            for text in texts
        }
        session.apply_update(update)
        probe = update.embeddings.matrix.mean(axis=0)
        served = {
            hit[:2]
            for hit in session.topk(probe, len(update.embeddings) + 16)
        }
        assert not removed & served

    def test_selective_cache_invalidation(self, served_pipeline):
        dataset, pipeline, result = served_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        session = ServingSession(retrofitter.embeddings)
        probe = retrofitter.embeddings.vector_for("genres.name", "drama")
        session.topk(probe, 3, category="genres.name")
        session.topk(probe, 3)
        update = retrofitter.apply(dataset.database, movie_delta(2))
        stats = session.apply_update(update)
        # genres were untouched by the delta: that entry survives re-keyed
        assert stats.cache_entries_kept >= 1
        hits_before = session.cache_stats.hits
        session.topk(probe, 3, category="genres.name")
        assert session.cache_stats.hits == hits_before + 1
        # the full-scope entry was dropped (a new value could enter any top-k)
        misses_before = session.cache_stats.misses
        session.topk(probe, 3)
        assert session.cache_stats.misses == misses_before + 1


class TestDeleteOnlyCacheInvalidation:
    """Regression: a delete-only delta must drop cached entries that
    reference the removed rows — even when the update carries no
    extraction delta to attribute scopes with (e.g. a replayed delta
    record), and even for scope categories the bookkeeping thinks are
    untouched."""

    def test_update_without_extraction_delta_drops_scoped_entries(
        self, served_pipeline
    ):
        import dataclasses

        dataset, pipeline, result = served_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        session = ServingSession(retrofitter.embeddings)

        victim = dataset.database.table("reviews").rows[0]
        victim_text = victim["text"]
        probe = retrofitter.embeddings.vector_for("reviews.text", victim_text)
        before = session.topk(probe, 5, category="reviews.text")
        assert any(text == victim_text for _, text, _ in before)

        update = retrofitter.apply(
            dataset.database, DatabaseDelta().delete("reviews", victim["id"])
        )
        # simulate a minimal delete-only update whose provenance was lost:
        # no extraction delta, no changed rows — only the index delta map.
        # Before the fix, the scoped cache entry survived re-keyed and the
        # removed review kept being served from the cache.
        stripped = dataclasses.replace(
            update,
            extraction_delta=None,
            changed_rows=np.empty(0, dtype=np.int64),
        )
        session.apply_update(stripped)

        after = session.topk(probe, 5, category="reviews.text")
        assert all(text != victim_text for _, text, _ in after)

    def test_kept_entries_never_reference_removed_values(self, served_pipeline):
        dataset, pipeline, result = served_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        session = ServingSession(retrofitter.embeddings)
        victim = dataset.database.table("reviews").rows[0]
        probe = retrofitter.embeddings.vector_for(
            "reviews.text", victim["text"]
        )
        session.topk(probe, 5, category="reviews.text")
        update = retrofitter.apply(
            dataset.database, DatabaseDelta().delete("reviews", victim["id"])
        )
        stats = session.apply_update(update)
        removed = {
            (category, text)
            for category, texts in update.extraction_delta.removed_values.items()
            for text in texts
        }
        for _, value in session._cache.items():
            assert not any(hit[:2] in removed for hit in value)
        assert stats.cache_entries_dropped >= 1


class TestCacheStaleness:
    """Satellite: cache keys carry the embedding-set version, so a swapped
    or updated store can never serve pre-update neighbours."""

    def test_update_invalidates_full_scope_results(self, served_pipeline):
        dataset, pipeline, result = served_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        session = ServingSession(retrofitter.embeddings)
        probe = retrofitter.embeddings.vector_for("countries.name", "usa")
        stale = session.topk(probe, 5)
        update = retrofitter.apply(dataset.database, movie_delta(3))
        session.apply_update(update)
        fresh = session.topk(probe, 5)
        # not asserting inequality of results (they may legitimately match) —
        # asserting the cache did not answer: the lookup was a miss
        assert session.cache_stats.hits == 0 or fresh is not stale

    def test_matrix_swap_bumps_version_and_clears(self, served_pipeline):
        _, _, result = served_pipeline
        session = ServingSession(result.embeddings)
        probe = result.embeddings.matrix[0]
        session.topk(probe, 2)
        version = session.version
        # reassigning the matrix (e.g. a reloaded set) must not serve the old
        # cached neighbours even though the query bytes are identical
        session.embeddings.matrix = result.embeddings.matrix.copy()
        session.topk(probe, 2)
        assert session.version == version + 1
        assert session.cache_stats.hits == 0

    def test_version_survives_save_and_reload(self, served_pipeline, tmp_path):
        dataset, pipeline, result = served_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        session = ServingSession(
            retrofitter.embeddings,
            index_factory=default_index_factory(ivf_threshold=64),
        )
        session.index_for(None)
        update = retrofitter.apply(dataset.database, movie_delta(4))
        session.apply_update(update)
        session.save(tmp_path, "live")
        reloaded = ServingSession.from_store(
            tmp_path, "live", index_factory=default_index_factory(ivf_threshold=64)
        )
        assert reloaded.version == session.version
        vector = update.embeddings.vector_for("movies.title", "emerald horizon 4")
        assert reloaded.topk(vector, 1)[0][1] == "emerald horizon 4"
        assert isinstance(reloaded.index_for(None), IVFIndex)
