"""Tests for the write-ahead delta queue: ordering, coalescing, backpressure."""

import threading
import time

import pytest

from repro.db.delta import DatabaseDelta
from repro.errors import SchemaError, ServingError
from repro.serving.runtime import DeltaQueue


def movie_insert(key: int) -> DatabaseDelta:
    return DatabaseDelta().insert("movies", {"id": key, "title": f"m{key}"})


def review_insert(key: int) -> DatabaseDelta:
    return DatabaseDelta().insert("reviews", {"id": key, "text": f"r{key}"})


def movie_delete(key: int) -> DatabaseDelta:
    return DatabaseDelta().delete("movies", key)


class TestDeltaCoalescing:
    def test_same_table_inserts_absorb(self):
        a, b = movie_insert(1), movie_insert(2)
        assert a.can_absorb(b)
        a.absorb(b)
        assert len(a.inserts) == 2
        assert a.summary() == {"inserts": 2, "updates": 0, "deletes": 0}

    def test_different_tables_do_not_absorb(self):
        assert not movie_insert(1).can_absorb(review_insert(1))

    def test_deletes_block_absorption(self):
        # merged application would run b's inserts before a's deletes,
        # which is not what applying a then b does
        a = movie_delete(1)
        b = movie_insert(1)
        assert not a.can_absorb(b)
        with pytest.raises(SchemaError):
            a.absorb(b)

    def test_updates_block_absorbing_inserts(self):
        # an update silently no-ops on a missing row; merged application
        # would run it after the absorbed delta's insert and suddenly hit —
        # a different database than sequential application produces
        a = DatabaseDelta().update("movies", 500, overview="x")
        b = movie_insert(500)
        assert not a.can_absorb(b)
        # updates coexisting with updates (no inserts) still fold
        c = DatabaseDelta().update("movies", 500, overview="y")
        assert a.can_absorb(c)

    def test_absorbing_a_delete_tail_is_fine(self):
        # deletes in the *absorbed* delta stay ordered after everything
        a = movie_insert(1)
        b = DatabaseDelta().insert("movies", {"id": 2}).delete("movies", 1)
        assert a.can_absorb(b)
        a.absorb(b)
        assert len(a.deletes) == 1

    def test_merged_apply_equals_sequential_apply(self):
        from repro.datasets import generate_tmdb

        def fresh():
            return generate_tmdb(num_movies=20, seed=4, embedding_dimension=8)

        def deltas(db):
            next_id = max(row["id"] for row in db.table("movies")) + 1
            a = DatabaseDelta().insert("movies", {
                "id": next_id, "title": "alpha merge", "original_language":
                "english", "overview": "one", "budget": 1.0, "revenue": 1.0,
                "popularity": 1.0, "release_year": 2026, "collection_id": None,
            })
            b = DatabaseDelta().insert("movies", {
                "id": next_id + 1, "title": "beta merge", "original_language":
                "english", "overview": "two", "budget": 1.0, "revenue": 1.0,
                "popularity": 1.0, "release_year": 2026, "collection_id": None,
            })
            return a, b

        sequential = fresh().database
        a, b = deltas(sequential)
        a.apply_to(sequential)
        b.apply_to(sequential)

        merged_db = fresh().database
        a2, b2 = deltas(merged_db)
        a2.absorb(b2)
        a2.apply_to(merged_db)

        assert (
            [row for row in merged_db.table("movies")]
            == [row for row in sequential.table("movies")]
        )


class TestQueueOrderingAndCoalescing:
    def test_fifo_order_without_coalescing(self):
        queue = DeltaQueue(capacity=8, coalesce=False)
        for key in range(3):
            queue.submit(movie_insert(key))
        popped = [queue.pop(timeout=1.0) for _ in range(3)]
        ids = [batch.delta.inserts[0].row["id"] for batch in popped]
        assert ids == [0, 1, 2]
        assert queue.stats.coalesced == 0

    def test_adjacent_same_table_submissions_coalesce(self):
        queue = DeltaQueue(capacity=8)
        t1 = queue.submit(movie_insert(1))
        t2 = queue.submit(movie_insert(2))
        t3 = queue.submit(review_insert(3))  # different table: own batch
        assert len(queue) == 2
        stats = queue.stats
        assert stats.submitted == 3 and stats.coalesced == 1
        batch = queue.pop(timeout=1.0)
        assert [op.row["id"] for op in batch.delta.inserts] == [1, 2]
        assert batch.tickets == [t1, t2]
        assert queue.pop(timeout=1.0).tickets == [t3]

    def test_coalescing_never_mutates_the_submitted_delta(self):
        # callers may hold on to their deltas (e.g. to replay the stream
        # on a serial baseline); the queue must fold into a private copy
        queue = DeltaQueue(capacity=8)
        first, second = movie_insert(1), movie_insert(2)
        queue.submit(first)
        queue.submit(second)
        assert len(first.inserts) == 1 and len(second.inserts) == 1
        assert len(queue.pop(timeout=1.0).delta.inserts) == 2

    def test_coalesced_ops_cap(self):
        queue = DeltaQueue(capacity=8, max_coalesced_ops=2)
        queue.submit(movie_insert(1))
        queue.submit(movie_insert(2))  # reaches the 2-op cap
        queue.submit(movie_insert(3))  # must open a fresh batch
        assert len(queue) == 2

    def test_popped_batch_never_grows(self):
        queue = DeltaQueue(capacity=8)
        queue.submit(movie_insert(1))
        batch = queue.pop(timeout=1.0)
        queue.submit(movie_insert(2))
        assert len(batch.delta) == 1
        assert len(queue.pop(timeout=1.0).delta) == 1


class TestBackpressure:
    def test_full_queue_times_out(self):
        queue = DeltaQueue(capacity=1, coalesce=False)
        queue.submit(movie_insert(1))
        with pytest.raises(ServingError, match="backpressure"):
            queue.submit(movie_insert(2), timeout=0.05)

    def test_pop_unblocks_a_waiting_producer(self):
        queue = DeltaQueue(capacity=1, coalesce=False)
        queue.submit(movie_insert(1))
        submitted = threading.Event()

        def producer():
            queue.submit(movie_insert(2), timeout=5.0)
            submitted.set()

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        assert not submitted.is_set()  # blocked on the full queue
        assert queue.pop(timeout=1.0) is not None
        assert submitted.wait(timeout=5.0)
        thread.join()
        assert len(queue) == 1

    def test_coalescible_submission_bypasses_backpressure(self):
        # folding into the tail consumes no extra capacity
        queue = DeltaQueue(capacity=1)
        queue.submit(movie_insert(1))
        queue.submit(movie_insert(2), timeout=0.05)
        assert len(queue) == 1


class TestIdempotentSubmission:
    def test_same_id_returns_the_original_ticket(self):
        queue = DeltaQueue(capacity=8, coalesce=False)
        first = queue.submit(movie_insert(1), submission_id="w-1")
        retry = queue.submit(movie_insert(1), submission_id="w-1")
        assert retry is first
        assert queue.stats.deduplicated == 1
        # the delta was enqueued exactly once
        assert len(queue) == 1
        assert queue.stats.submitted == 1

    def test_distinct_ids_enqueue_independently(self):
        queue = DeltaQueue(capacity=8, coalesce=False)
        a = queue.submit(movie_insert(1), submission_id="w-1")
        b = queue.submit(movie_insert(2), submission_id="w-2")
        assert a is not b
        assert len(queue) == 2
        assert queue.stats.deduplicated == 0

    def test_resubmission_after_publish_returns_the_resolved_ticket(self):
        # a client that lost the ack retries after the applier already
        # published — it must learn the original version, not re-apply
        queue = DeltaQueue(capacity=8, coalesce=False)
        ticket = queue.submit(movie_insert(1), submission_id="w-1")
        for popped in queue.pop(timeout=1.0).tickets:
            popped._complete(7, time.perf_counter())
        retry = queue.submit(movie_insert(1), submission_id="w-1")
        assert retry is ticket
        assert retry.wait(timeout=1.0) == 7
        assert len(queue) == 0

    def test_resubmission_survives_queue_close(self):
        queue = DeltaQueue(capacity=8, coalesce=False)
        ticket = queue.submit(movie_insert(1), submission_id="w-1")
        for popped in queue.pop(timeout=1.0).tickets:
            popped._complete(3, time.perf_counter())
        queue.close()
        assert queue.submit(movie_insert(1), submission_id="w-1") is ticket

    def test_failed_ticket_is_not_deduplicated(self):
        # a failed ticket proves the delta never published: the retry must
        # re-enqueue rather than receive the dead ticket back
        queue = DeltaQueue(capacity=8, coalesce=False)
        first = queue.submit(movie_insert(1), submission_id="w-1")
        for popped in queue.pop(timeout=1.0).tickets:
            popped._fail(ServingError("applier died"))
        assert first.failed
        retry = queue.submit(movie_insert(1), submission_id="w-1")
        assert retry is not first
        assert queue.stats.deduplicated == 0
        for popped in queue.pop(timeout=1.0).tickets:
            popped._complete(5, time.perf_counter())
        assert retry.wait(timeout=1.0) == 5

    def test_submissions_without_id_are_never_deduplicated(self):
        queue = DeltaQueue(capacity=8, coalesce=False)
        a = queue.submit(movie_insert(1))
        b = queue.submit(movie_insert(1))
        assert a is not b
        assert queue.stats.deduplicated == 0

    def test_window_evicts_oldest_ids(self):
        queue = DeltaQueue(capacity=10_000, coalesce=False)
        original_window = DeltaQueue.SUBMISSION_WINDOW
        DeltaQueue.SUBMISSION_WINDOW = 2
        try:
            first = queue.submit(movie_insert(1), submission_id="w-1")
            queue.submit(movie_insert(2), submission_id="w-2")
            queue.submit(movie_insert(3), submission_id="w-3")  # evicts w-1
            retry = queue.submit(movie_insert(1), submission_id="w-1")
        finally:
            DeltaQueue.SUBMISSION_WINDOW = original_window
        assert retry is not first  # fell out of the remembered window


class TestCloseSemantics:
    def test_submit_after_close_raises(self):
        queue = DeltaQueue()
        queue.close()
        with pytest.raises(ServingError, match="closed"):
            queue.submit(movie_insert(1))

    def test_close_drains_then_returns_none(self):
        queue = DeltaQueue()
        queue.submit(movie_insert(1))
        queue.close()
        assert queue.pop(timeout=1.0) is not None
        assert queue.pop(timeout=1.0) is None

    def test_close_wakes_a_blocked_popper(self):
        queue = DeltaQueue()
        result = []

        def popper():
            result.append(queue.pop(timeout=10.0))

        thread = threading.Thread(target=popper)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result == [None]

    def test_drain_tickets_returns_orphans(self):
        queue = DeltaQueue(coalesce=False)
        tickets = [queue.submit(movie_insert(k)) for k in range(3)]
        queue.close()
        orphans = queue.drain_tickets()
        assert orphans == tickets
        assert len(queue) == 0
