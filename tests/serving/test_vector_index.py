"""Tests for the exact (flat) and IVF approximate top-k indexes."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving.index import FlatIndex, IVFIndex, topk_descending


def loop_cosine_scores(matrix: np.ndarray, query: np.ndarray) -> np.ndarray:
    """The literal per-row cosine reference the indexes must reproduce."""
    scores = []
    for row in matrix:
        denom = np.linalg.norm(row) * (np.linalg.norm(query) + 1e-12)
        if denom == 0:
            denom = 1e-12
        scores.append(float(row @ query / denom))
    return np.array(scores)


class TestTopkSelection:
    def test_matches_full_sort_on_vector(self, rng):
        scores = rng.normal(size=97)
        assert np.array_equal(topk_descending(scores, 10), np.argsort(-scores)[:10])

    def test_matches_full_sort_on_batch(self, rng):
        scores = rng.normal(size=(5, 40))
        top = topk_descending(scores, 7)
        for row in range(5):
            assert np.array_equal(top[row], np.argsort(-scores[row])[:7])

    def test_k_larger_than_n(self, rng):
        scores = rng.normal(size=6)
        assert np.array_equal(topk_descending(scores, 50), np.argsort(-scores))

    def test_k_zero_is_empty(self, rng):
        assert topk_descending(rng.normal(size=6), 0).shape == (0,)

    def test_ties_break_by_ascending_index(self):
        """Equal scores select and order the lowest indices first.

        argpartition alone keeps an arbitrary subset of boundary ties;
        deterministic selection is what lets per-shard top-k heaps merge
        into exactly the single-index answer.
        """
        scores = np.array([1.0, 3.0, 1.0, 3.0, 1.0, 3.0, 1.0])
        assert np.array_equal(topk_descending(scores, 4), [1, 3, 5, 0])
        assert np.array_equal(topk_descending(scores, 5), [1, 3, 5, 0, 2])

    def test_all_equal_scores_select_prefix(self):
        scores = np.full(20, 0.5)
        assert np.array_equal(topk_descending(scores, 6), np.arange(6))

    def test_tie_stability_matches_stable_argsort(self, rng):
        """Property: always identical to a stable full sort on (-score, idx)."""
        for _ in range(25):
            n = int(rng.integers(1, 60))
            scores = rng.integers(0, 4, size=(3, n)).astype(np.float64)
            k = int(rng.integers(1, n + 1))
            reference = np.argsort(-scores, axis=1, kind="stable")[:, :k]
            assert np.array_equal(topk_descending(scores, k), reference)


class TestReadOnlyMatrices:
    """Indexes over read-only (shared/mmap) matrices: no copy until write."""

    def test_flat_queries_read_only_matrix_in_place(self, rng):
        matrix = rng.normal(size=(30, 8))
        matrix.setflags(write=False)
        index = FlatIndex(matrix)
        assert np.shares_memory(index.matrix, matrix)
        indices, _ = index.query(rng.normal(size=8), 5)
        assert indices.shape == (5,)

    def test_first_mutation_copies_read_only_matrix(self, rng):
        matrix = rng.normal(size=(30, 8))
        frozen = matrix.copy()
        frozen.setflags(write=False)
        index = FlatIndex(frozen)
        index.update_rows([3], rng.normal(size=(1, 8)))
        assert not np.shares_memory(index.matrix, frozen)
        assert index.matrix.flags.writeable
        assert np.array_equal(frozen, matrix)  # original untouched

    def test_remove_does_not_copy(self, rng):
        matrix = rng.normal(size=(30, 8))
        matrix.setflags(write=False)
        index = FlatIndex(matrix)
        index.remove([1, 2])
        assert np.shares_memory(index.matrix, matrix)

    def test_ivf_accepts_read_only_matrix(self, rng):
        matrix = rng.normal(size=(60, 8))
        matrix.setflags(write=False)
        index = IVFIndex(matrix, n_cells=4, nprobe=4, seed=1)
        indices, _ = index.query(rng.normal(size=8), 5)
        assert indices.shape == (5,)
        index.update_rows([3], rng.normal(size=(1, 8)))  # copies, no raise
        assert not np.shares_memory(index.matrix, matrix)


class TestFlatIndex:
    def test_single_query_matches_loop_reference(self, rng):
        matrix = rng.normal(size=(60, 16))
        query = rng.normal(size=16)
        index = FlatIndex(matrix)
        indices, scores = index.query(query, 8)
        reference = loop_cosine_scores(matrix, query)
        assert np.array_equal(indices, np.argsort(-reference)[:8])
        assert np.allclose(scores, reference[indices])

    def test_batch_matches_single(self, rng):
        matrix = rng.normal(size=(40, 8))
        queries = rng.normal(size=(6, 8))
        index = FlatIndex(matrix)
        batch_indices, batch_scores = index.query_batch(queries, 5)
        for row in range(6):
            indices, scores = index.query(queries[row], 5)
            assert np.array_equal(batch_indices[row], indices)
            assert np.allclose(batch_scores[row], scores)

    def test_dot_metric(self, rng):
        matrix = rng.normal(size=(30, 4))
        query = rng.normal(size=4)
        indices, scores = FlatIndex(matrix, metric="dot").query(query, 3)
        reference = matrix @ query
        assert np.array_equal(indices, np.argsort(-reference)[:3])
        assert np.allclose(scores, reference[indices])

    def test_zero_rows_score_zero(self, rng):
        matrix = rng.normal(size=(5, 3))
        matrix[2] = 0.0
        _, scores = FlatIndex(matrix).query(rng.normal(size=3), 5)
        assert 0.0 in np.round(scores, 12)

    def test_empty_index(self):
        index = FlatIndex(np.zeros((0, 4)))
        indices, scores = index.query(np.ones(4), 3)
        assert indices.shape == (0,) and scores.shape == (0,)

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ServingError):
            FlatIndex(rng.normal(size=(4, 4)), metric="euclidean")
        with pytest.raises(ServingError):
            FlatIndex(rng.normal(size=4))
        index = FlatIndex(rng.normal(size=(4, 4)))
        with pytest.raises(ServingError):
            index.query(rng.normal(size=3), 2)
        with pytest.raises(ServingError):
            index.query_batch(rng.normal(size=(2, 5)), 2)


class TestIVFIndex:
    def test_exhaustive_probe_equals_flat(self, rng):
        matrix = rng.normal(size=(300, 12))
        queries = rng.normal(size=(9, 12))
        flat_indices, flat_scores = FlatIndex(matrix).query_batch(queries, 10)
        ivf = IVFIndex(matrix, n_cells=12, nprobe=12, seed=3)
        ivf_indices, ivf_scores = ivf.query_batch(queries, 10)
        assert np.array_equal(flat_indices, ivf_indices)
        assert np.allclose(flat_scores, ivf_scores)

    def test_partial_probe_has_reasonable_recall(self, rng):
        matrix = rng.normal(size=(600, 16))
        queries = matrix[rng.choice(600, size=20, replace=False)] + 0.01
        flat_indices, _ = FlatIndex(matrix).query_batch(queries, 10)
        ivf = IVFIndex(matrix, n_cells=24, nprobe=8, seed=0)
        ivf_indices, _ = ivf.query_batch(queries, 10)
        overlap = np.mean([
            len(set(a.tolist()) & set(b.tolist())) / 10
            for a, b in zip(flat_indices, ivf_indices)
        ])
        assert overlap >= 0.8

    def test_every_row_lives_in_exactly_one_cell(self, rng):
        matrix = rng.normal(size=(100, 6))
        ivf = IVFIndex(matrix, n_cells=7, seed=1)
        assert sum(ivf.cell_sizes()) == 100
        seen = np.concatenate([ids for ids in ivf._cell_ids])
        assert np.array_equal(np.sort(seen), np.arange(100))

    def test_padding_when_probed_cells_are_small(self, rng):
        matrix = rng.normal(size=(12, 4))
        ivf = IVFIndex(matrix, n_cells=6, nprobe=1, seed=0)
        indices, scores = ivf.query(rng.normal(size=4), 12)
        valid = indices >= 0
        assert valid.sum() < 12  # one probed cell cannot hold all rows
        assert np.all(np.isinf(scores[~valid]))

    def test_rejects_bad_configuration(self, rng):
        with pytest.raises(ServingError):
            IVFIndex(np.zeros((0, 3)))
        with pytest.raises(ServingError):
            IVFIndex(rng.normal(size=(5, 3)), nprobe=0)
        with pytest.raises(ServingError):
            IVFIndex(rng.normal(size=(5, 3)), n_cells=0)

    def test_cells_capped_at_rows(self, rng):
        ivf = IVFIndex(rng.normal(size=(4, 3)), n_cells=100, nprobe=100, seed=0)
        assert ivf.n_cells == 4
        indices, _ = ivf.query(rng.normal(size=3), 4)
        assert set(indices.tolist()) == {0, 1, 2, 3}
