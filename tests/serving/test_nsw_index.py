"""Tests for the navigable-small-world graph index."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import FlatIndex, NSWIndex
from repro.serving.nsw import NOT_INSERTED


def recall_at_k(expected: np.ndarray, got: np.ndarray, k: int) -> float:
    return float(
        np.mean(
            [
                len(set(a.tolist()) & set(b.tolist())) / k
                for a, b in zip(expected[:, :k], got[:, :k])
            ]
        )
    )


class TestNSWExactness:
    def test_exhaustive_beam_equals_flat(self, rng):
        matrix = rng.normal(size=(300, 12))
        queries = rng.normal(size=(8, 12))
        flat_i, flat_s = FlatIndex(matrix).query_batch(queries, 10)
        nsw = NSWIndex(matrix, max_degree=12, ef_search=300)
        nsw_i, nsw_s = nsw.query_batch(queries, 10)
        assert np.array_equal(flat_i, nsw_i)
        # same formula, different BLAS batching: equal to rounding
        assert np.allclose(flat_s, nsw_s, rtol=1e-12, atol=0)

    def test_tie_stability_with_duplicate_rows(self, rng):
        base = rng.normal(size=(15, 8))
        matrix = np.vstack([base] * 4)
        queries = rng.normal(size=(4, 8))
        flat_i, _ = FlatIndex(matrix).query_batch(queries, 12)
        nsw = NSWIndex(matrix, max_degree=8, ef_search=60)
        nsw_i, _ = nsw.query_batch(queries, 12)
        assert np.array_equal(flat_i, nsw_i)

    def test_single_query_matches_batch(self, rng):
        matrix = rng.normal(size=(150, 8))
        nsw = NSWIndex(matrix, ef_search=24)
        queries = rng.normal(size=(5, 8))
        batch_i, batch_s = nsw.query_batch(queries, 6)
        for row in range(5):
            one_i, one_s = nsw.query(queries[row], 6)
            assert np.array_equal(batch_i[row], one_i)
            assert np.allclose(batch_s[row], one_s)

    def test_dot_metric(self, rng):
        matrix = rng.normal(size=(120, 8))
        queries = rng.normal(size=(4, 8))
        flat_i, _ = FlatIndex(matrix, metric="dot").query_batch(queries, 5)
        nsw = NSWIndex(matrix, metric="dot", ef_search=120)
        nsw_i, _ = nsw.query_batch(queries, 5)
        assert np.array_equal(flat_i, nsw_i)


class TestNSWRecall:
    def test_recall_grows_with_beam_width(self, rng):
        """Aggregate recall@10 rises with ef and hits 1.0 at ef = n."""
        matrix = rng.normal(size=(800, 16))
        queries = rng.normal(size=(25, 16))
        flat_i, _ = FlatIndex(matrix).query_batch(queries, 10)
        nsw = NSWIndex(matrix, max_degree=16, ef_construction=48, ef_search=10)
        recalls = []
        for ef in (10, 40, 160, 800):
            nsw.ef_search = ef
            nsw_i, _ = nsw.query_batch(queries, 10)
            recalls.append(recall_at_k(flat_i, nsw_i, 10))
        # per-query monotonicity is not guaranteed for a greedy walk, but
        # the aggregate must not regress materially and the endpoint is exact
        for lo, hi in zip(recalls, recalls[1:]):
            assert hi >= lo - 0.02
        assert recalls[-1] == 1.0
        assert recalls[-1] >= recalls[0]

    def test_default_beam_recall_on_clustered_data(self, rng):
        means = rng.normal(scale=4.0, size=(10, 16))
        matrix = means[rng.integers(10, size=1200)] + rng.normal(
            size=(1200, 16)
        )
        queries = matrix[rng.choice(1200, size=20, replace=False)] + 0.01
        flat_i, _ = FlatIndex(matrix).query_batch(queries, 10)
        nsw = NSWIndex(matrix, max_degree=16, ef_construction=64, ef_search=64)
        nsw_i, _ = nsw.query_batch(queries, 10)
        assert recall_at_k(flat_i, nsw_i, 10) >= 0.9


class TestNSWIncremental:
    def test_grows_from_empty(self, rng):
        nsw = NSWIndex(np.zeros((0, 8)))
        empty_i, empty_s = nsw.query(rng.normal(size=8), 3)
        assert empty_i.shape == (0,) and empty_s.shape == (0,)
        first = rng.normal(size=(1, 8))
        ids = nsw.add(first)
        assert list(ids) == [0] and nsw.entry_point == 0
        batch = rng.normal(size=(60, 8))
        nsw.add(batch)
        hits, _ = nsw.query(batch[30], 1)
        assert hits[0] == 31

    def test_incremental_equals_bulk_built_recall(self, rng):
        """Inserting in two waves reaches the same answers as one build."""
        matrix = rng.normal(size=(400, 12))
        queries = rng.normal(size=(10, 12))
        bulk = NSWIndex(matrix, max_degree=12, ef_search=400)
        grown = NSWIndex(matrix[:250], max_degree=12, ef_search=400)
        grown.add(matrix[250:])
        bulk_i, _ = bulk.query_batch(queries, 10)
        grown_i, _ = grown.query_batch(queries, 10)
        # both are exhaustive at ef >= n: identical exact answers even
        # though the two graphs differ
        assert np.array_equal(bulk_i, grown_i)

    def test_removed_rows_still_route(self, rng):
        """Tombstones conduct the walk: removing hubs must not strand rows."""
        matrix = rng.normal(size=(300, 10))
        nsw = NSWIndex(matrix, max_degree=10, ef_search=300)
        nsw.remove(np.arange(0, 100))  # likely includes the entry point
        flat = FlatIndex(matrix)
        flat.remove(np.arange(0, 100))
        queries = rng.normal(size=(6, 10))
        flat_i, _ = flat.query_batch(queries, 10)
        nsw_i, _ = nsw.query_batch(queries, 10)
        assert np.array_equal(flat_i, nsw_i)

    def test_update_entry_point_row(self, rng):
        matrix = rng.normal(size=(80, 8))
        nsw = NSWIndex(matrix, ef_search=80)
        entry = nsw.entry_point
        moved = rng.normal(size=8) * 3.0
        nsw.update_rows([entry], moved[None, :])
        hits, _ = nsw.query(moved, 1)
        assert hits[0] == entry


class TestNSWState:
    def test_round_trip_preserves_results(self, rng):
        matrix = rng.normal(size=(250, 10))
        queries = rng.normal(size=(6, 10))
        nsw = NSWIndex(matrix, max_degree=10, ef_construction=48, ef_search=32)
        restored = NSWIndex.from_state(
            matrix,
            nsw.adjacency,
            nsw.entry_point,
            max_degree=10,
            ef_construction=48,
            ef_search=32,
        )
        a_i, a_s = nsw.query_batch(queries, 8)
        b_i, b_s = restored.query_batch(queries, 8)
        assert np.array_equal(a_i, b_i)
        assert np.array_equal(a_s, b_s)

    def test_partial_state_inserts_appended_rows(self, rng):
        matrix = rng.normal(size=(200, 10))
        nsw = NSWIndex(matrix, max_degree=10, ef_search=300)
        extra = rng.normal(size=(20, 10))
        grown = np.vstack((matrix, extra))
        restored = NSWIndex.from_partial_state(
            grown,
            nsw.adjacency,
            nsw.entry_point,
            max_degree=10,
            ef_search=300,
        )
        assert restored.n_rows == 220
        hits, _ = restored.query(extra[7], 1)
        assert hits[0] == 207

    def test_partial_state_honours_explicit_markers(self, rng):
        matrix = rng.normal(size=(60, 8))
        nsw = NSWIndex(matrix, ef_search=60)
        adjacency = nsw.adjacency.copy()
        adjacency[10] = -1
        adjacency[10, 0] = NOT_INSERTED  # replay flagged this row changed
        restored = NSWIndex.from_partial_state(
            matrix, adjacency, nsw.entry_point, ef_search=60
        )
        hits, _ = restored.query(matrix[10], 1)
        assert hits[0] == 10

    def test_from_state_rejects_uninserted_rows(self, rng):
        matrix = rng.normal(size=(40, 8))
        nsw = NSWIndex(matrix)
        adjacency = nsw.adjacency.copy()
        adjacency[3, 0] = NOT_INSERTED
        with pytest.raises(ServingError):
            NSWIndex.from_state(matrix, adjacency, nsw.entry_point)

    def test_from_state_rejects_bad_references(self, rng):
        matrix = rng.normal(size=(20, 8))
        nsw = NSWIndex(matrix)
        bad = nsw.adjacency.copy()
        bad[0, 0] = 99  # beyond n_rows
        with pytest.raises(ServingError):
            NSWIndex.from_state(matrix, bad, nsw.entry_point)
        with pytest.raises(ServingError):
            NSWIndex.from_state(matrix, nsw.adjacency, entry_point=25)


class TestNSWValidation:
    def test_rejects_bad_configuration(self, rng):
        matrix = rng.normal(size=(20, 6))
        with pytest.raises(ServingError):
            NSWIndex(matrix, max_degree=0)
        with pytest.raises(ServingError):
            NSWIndex(matrix, ef_construction=0)
        with pytest.raises(ServingError):
            NSWIndex(matrix, ef_search=0)

    def test_degrees_respect_cap_after_churn(self, rng):
        nsw = NSWIndex(rng.normal(size=(150, 8)), max_degree=6)
        nsw.add(rng.normal(size=(50, 8)))
        degrees = [links.size for links in nsw._neighbours]
        assert max(degrees) <= 6
