"""Graceful drain, slow-client timeouts and structured logging of the HTTP front."""

import io
import json
import socket
import threading
import time
import urllib.request

from repro.serving import HTTPServingFront


class _Target:
    """A minimal ``topk_batch`` target with a controllable service time."""

    dimension = 4
    published_version = 0

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.entered = threading.Event()
        self._events = [{"component": "tier", "event": "promoted", "replica": 1}]

    def topk_batch(self, vectors, k, category=None):
        self.entered.set()
        if self.delay:
            time.sleep(self.delay)
        return [[("movies.title", "answer", 1.0)] for _ in vectors]

    def recent_events(self, n: int = 50):
        return self._events[-n:]


def _post_topk(address, client="c1"):
    request = urllib.request.Request(
        address + "/topk",
        data=json.dumps({"vector": [0.0, 1.0, 0.0, 0.0], "k": 1}).encode(),
        headers={"Content-Type": "application/json", "X-Client-Id": client},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


class TestGracefulDrain:
    def test_inflight_request_finishes_before_shutdown(self):
        target = _Target(delay=0.4)
        front = HTTPServingFront(target, window_seconds=0.0, drain_seconds=10.0)
        front.start()
        outcome = {}

        def client():
            outcome["reply"] = _post_topk(front.address)

        thread = threading.Thread(target=client)
        thread.start()
        assert target.entered.wait(timeout=10)  # the request is in flight
        front.close(timeout=30)
        thread.join(timeout=30)
        assert outcome["reply"][0] == 200
        assert outcome["reply"][1]["results"] == [["movies.title", "answer", 1.0]]
        assert front.stats.drained_clean is True
        shutdowns = [
            event for event in front.recent_events() if event["event"] == "shutdown"
        ]
        assert shutdowns and shutdowns[-1]["drained_clean"] is True

    def test_drain_deadline_cancels_stuck_requests(self):
        target = _Target(delay=5.0)
        front = HTTPServingFront(target, window_seconds=0.0, drain_seconds=0.05)
        front.start()
        outcome = {}

        def client():
            try:
                outcome["reply"] = _post_topk(front.address)
            except Exception as error:  # noqa: BLE001 - any abort is a pass
                outcome["error"] = error

        thread = threading.Thread(target=client)
        thread.start()
        assert target.entered.wait(timeout=10)
        front.close(timeout=30)
        thread.join(timeout=30)
        assert "error" in outcome  # connection was cut, not served
        assert front.stats.drained_clean is False

    def test_stop_is_the_close_alias(self):
        assert HTTPServingFront.stop is HTTPServingFront.close
        front = HTTPServingFront(_Target(), window_seconds=0.0)
        front.start()
        front.stop()
        assert front._thread is not None and not front._thread.is_alive()


class TestSlowClientTimeout:
    def test_stalled_request_is_cut_and_counted(self):
        front = HTTPServingFront(
            _Target(), window_seconds=0.0, read_timeout_seconds=0.2
        )
        front.start()
        try:
            with socket.create_connection(("127.0.0.1", front.port), 10) as sock:
                sock.sendall(b"POST /topk HTTP/1.1\r\n")  # ...then stall
                sock.settimeout(10)
                assert sock.recv(1024) == b""  # server hung up on us
            deadline = time.monotonic() + 5
            while front.stats.read_timeouts == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert front.stats.read_timeouts == 1
            assert any(
                event["event"] == "read_timeout"
                for event in front.recent_events()
            )
        finally:
            front.close()

    def test_fast_clients_are_unaffected_by_the_timeout(self):
        front = HTTPServingFront(
            _Target(), window_seconds=0.0, read_timeout_seconds=0.5
        )
        front.start()
        try:
            status, _ = _post_topk(front.address)
            assert status == 200
            assert front.stats.read_timeouts == 0
        finally:
            front.close()


class TestStructuredLogging:
    def test_access_events_carry_request_metadata(self):
        front = HTTPServingFront(_Target(), window_seconds=0.0)
        front.start()
        try:
            _post_topk(front.address, client="alpha")
            (access,) = [
                event for event in front.recent_events()
                if event["event"] == "access"
            ]
            assert access["component"] == "http"
            assert access["client"] == "alpha"
            assert access["method"] == "POST"
            assert access["path"] == "/topk"
            assert access["status"] == 200
            assert access["ms"] >= 0.0
        finally:
            front.close()

    def test_log_stream_receives_json_lines(self):
        stream = io.StringIO()
        front = HTTPServingFront(_Target(), window_seconds=0.0, log_stream=stream)
        front.start()
        try:
            _post_topk(front.address)
        finally:
            front.close()
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert any(record["event"] == "access" for record in lines)
        assert any(record["event"] == "shutdown" for record in lines)

    def test_stats_endpoint_surfaces_front_and_target_events(self):
        front = HTTPServingFront(_Target(), window_seconds=0.0)
        front.start()
        try:
            _post_topk(front.address)
            request = urllib.request.Request(front.address + "/stats")
            with urllib.request.urlopen(request, timeout=30) as response:
                body = json.loads(response.read())
            assert any(
                event["event"] == "access" for event in body["events"]
            )
            assert body["target_events"] == [
                {"component": "tier", "event": "promoted", "replica": 1}
            ]
            assert body["front"]["read_timeouts"] == 0
        finally:
            front.close()


class TestDrainStatsShape:
    def test_drained_clean_is_none_until_a_shutdown_happened(self):
        front = HTTPServingFront(_Target(), window_seconds=0.0)
        assert front.stats.drained_clean is None
        front.start()
        try:
            assert front.stats.drained_clean is None
        finally:
            front.close()
        assert front.stats.drained_clean is True
