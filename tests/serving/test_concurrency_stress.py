"""Concurrency stress: readers + writers + queue churn, run together.

Marked ``stress``: CI runs this module on its own (``pytest -m stress``)
with faulthandler timeout dumps, so a deadlock or a lost wakeup in the
runtime fails loudly instead of hanging the whole suite.  The scale knobs
stay modest so the module also rides along in the tier-1 run.
"""

import threading

import numpy as np
import pytest

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.experiments.update_bench import synthesize_tmdb_delta
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving.runtime import BatchedQueryFront, ServingRuntime
from repro.serving.session import default_index_factory

pytestmark = pytest.mark.stress

N_READERS = 4
N_DELTAS = 6
QUERIES_PER_READER = 150


@pytest.fixture()
def stack():
    dataset = generate_tmdb(num_movies=60, seed=13, embedding_dimension=16)
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    result = pipeline.run(iterations=200)
    return dataset, pipeline.incremental_retrofitter(result)


def test_readers_writers_and_queue_churn(stack):
    dataset, retrofitter = stack
    matrix = retrofitter.embeddings.matrix.copy()
    errors: list[BaseException] = []
    served_counts = []

    runtime = ServingRuntime(
        dataset.database,
        retrofitter,
        index_factory=default_index_factory(ivf_threshold=64),
        queue_capacity=2,  # small on purpose: exercise backpressure
        solve_iterations=200,
    )

    def reader(seed, front):
        rng = np.random.default_rng(seed)
        count = 0
        try:
            for _ in range(QUERIES_PER_READER):
                probe = matrix[int(rng.integers(0, matrix.shape[0]))]
                probe = probe + rng.normal(0.0, 0.01, probe.shape)
                if rng.random() < 0.5:
                    hits = front.topk(probe, 5, timeout=60.0)
                else:
                    with runtime.read() as session:
                        hits = session.topk(probe, 5)
                assert 0 < len(hits) <= 5
                count += 1
        except BaseException as error:
            errors.append(error)
        finally:
            served_counts.append(count)

    failures_expected = 0
    with runtime:
        with BatchedQueryFront(
            runtime, window_seconds=0.001, max_batch=32
        ) as front:
            threads = [
                threading.Thread(target=reader, args=(seed, front))
                for seed in range(N_READERS)
            ]
            for thread in threads:
                thread.start()

            rng = np.random.default_rng(5)
            for step in range(N_DELTAS):
                if step % 3 == 2:
                    # a poisoned delta: the pipeline must reject it and
                    # keep serving
                    delta = DatabaseDelta().insert("no_such_table", {"id": 1})
                    failures_expected += 1
                    ticket = runtime.submit(delta, timeout=60.0)
                    with pytest.raises(Exception):
                        ticket.wait(timeout=120.0)
                else:
                    delta = synthesize_tmdb_delta(
                        dataset.database,
                        rng,
                        1,
                        include_update=True,
                        include_delete=True,
                    )
                    # wait each good delta out: synthesis reads the same
                    # database the applier mutates
                    runtime.submit(delta, timeout=60.0).wait(timeout=120.0)

            for thread in threads:
                thread.join(timeout=120.0)
            assert not any(thread.is_alive() for thread in threads)
        runtime.flush(timeout=120.0)

    assert errors == []
    assert sum(served_counts) == N_READERS * QUERIES_PER_READER
    stats = runtime.stats
    assert stats.update_failures == failures_expected
    assert stats.updates_published == N_DELTAS - failures_expected
    assert stats.pending_batches == 0
    assert stats.published_version == stats.updates_published
    # every reader that pinned a snapshot let it go: reclamation kept up
    assert stats.snapshots_reclaimed == stats.updates_published
    front_stats = front.stats
    assert front_stats.requests >= front_stats.batches_dispatched
