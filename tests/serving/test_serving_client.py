"""ServingClient: retries, idempotent resubmission, read-your-writes floors.

The client talks to a real :class:`HTTPServingFront` on a loopback
socket; the targets behind it are scriptable doubles so failure
injection (backpressure once, then success) is deterministic.
"""

import threading

import pytest

from repro.errors import BackpressureError
from repro.serving import (
    HTTPServingFront,
    ServingAPIError,
    ServingClient,
    TransientServingError,
)
from repro.util.faults import RetryPolicy

from tests.serving.test_http_v1 import VECTOR, _Ticket, wire_delta


class _RecordingTarget:
    """Records the ``min_version`` floor of every read, dedups writes."""

    dimension = 4

    def __init__(self):
        self.floors = []
        self.submission_ids = []
        self.applied = 0
        self.seen_ids = {}
        self.fail_first_submits = 0
        self.lock = threading.Lock()

    def topk_batch_versioned(self, vectors, k, category=None, min_version=None):
        with self.lock:
            self.floors.append(min_version)
            version = self.applied
        return version, [
            [("movies.title", "answer", 1.0)] for _ in vectors
        ]

    def submit(self, delta, timeout=None, submission_id=None):
        with self.lock:
            self.submission_ids.append(submission_id)
            if self.fail_first_submits > 0:
                self.fail_first_submits -= 1
                raise BackpressureError("queue full", retry_after=0.01)
            if submission_id in self.seen_ids:
                return _Ticket(self.seen_ids[submission_id])
            self.applied += 1
            self.seen_ids[submission_id] = self.applied
            return _Ticket(self.applied)


FAST_RETRY = RetryPolicy(attempts=4, base_delay=0.01, max_delay=0.05)


@pytest.fixture()
def served():
    target = _RecordingTarget()
    with HTTPServingFront(target, window_seconds=0.0) as front:
        yield front, target


class TestReadYourWrites:
    def test_topk_is_floored_at_the_last_acked_write(self, served):
        front, target = served
        client = ServingClient(front.address, retry=FAST_RETRY)
        client.topk(VECTOR)  # before any write: no floor
        version = client.submit(wire_delta(), submission_id="ryw-1")
        assert version == 1
        assert client.last_write_version == 1
        body = client.topk(VECTOR)
        assert body["version"] >= 1
        # an explicit min_version overrides the automatic floor
        client.topk(VECTOR, min_version=0)
        assert target.floors == [None, 1, 0]

    def test_opting_out_disables_the_floor(self, served):
        front, target = served
        client = ServingClient(
            front.address, retry=FAST_RETRY, read_your_writes=False
        )
        client.submit(wire_delta(), submission_id="no-ryw")
        client.topk(VECTOR)
        assert target.floors == [None]


class TestRetries:
    def test_transient_429_retries_under_the_same_submission_id(self, served):
        front, target = served
        target.fail_first_submits = 2  # two 429s, then success
        client = ServingClient(front.address, retry=FAST_RETRY)
        version = client.submit(wire_delta(), submission_id="retry-1")
        assert version == 1
        # every attempt resent the *same* idempotency key, and the delta
        # landed exactly once
        assert target.submission_ids == ["retry-1", "retry-1", "retry-1"]
        assert target.applied == 1

    def test_minted_id_is_fixed_before_the_first_attempt(self, served):
        front, target = served
        target.fail_first_submits = 1
        client = ServingClient(front.address, retry=FAST_RETRY)
        client.submit(wire_delta())  # no explicit id: client mints one
        assert len(target.submission_ids) == 2
        assert target.submission_ids[0] == target.submission_ids[1]
        assert target.applied == 1

    def test_exhausted_retries_surface_the_transient_error(self, served):
        front, target = served
        target.fail_first_submits = 99
        client = ServingClient(
            front.address, retry=RetryPolicy(attempts=2, base_delay=0.01)
        )
        with pytest.raises(TransientServingError) as excinfo:
            client.submit(wire_delta(), submission_id="doomed")
        assert excinfo.value.status == 429
        assert excinfo.value.code == "rate_limited"
        assert len(target.submission_ids) == 2  # attempts, not attempts+1

    def test_definite_client_errors_do_not_retry(self):
        target = _RecordingTarget()
        with HTTPServingFront(
            target, window_seconds=0.0, auth_tokens={"t": ("read",)}
        ) as front:
            client = ServingClient(front.address, retry=FAST_RETRY)
            with pytest.raises(ServingAPIError) as excinfo:
                client.topk(VECTOR)
            assert excinfo.value.status == 401
            assert excinfo.value.code == "unauthenticated"
            assert not isinstance(excinfo.value, TransientServingError)
            assert front.stats.auth_failures == 1  # exactly one attempt

    def test_connection_refused_raises_after_retries(self):
        client = ServingClient(
            "http://127.0.0.1:9",  # discard port: nothing listens
            retry=RetryPolicy(attempts=2, base_delay=0.01),
            timeout=2.0,
        )
        with pytest.raises(OSError):
            client.health()  # health is not retried, fails fast
        with pytest.raises(OSError):
            client.stats()  # retried, still surfaces the transport error


class TestAuthAndHealth:
    def test_bearer_token_is_attached(self):
        target = _RecordingTarget()
        tokens = {"rw": ("read", "write")}
        with HTTPServingFront(
            target, window_seconds=0.0, auth_tokens=tokens
        ) as front:
            client = ServingClient(front.address, token="rw", retry=FAST_RETRY)
            assert client.topk(VECTOR)["version"] == 0
            assert client.submit(wire_delta(), submission_id="authed") == 1

    def test_health_returns_the_degraded_body_without_raising(self):
        class _Degraded(_RecordingTarget):
            degraded = True

        with HTTPServingFront(_Degraded(), window_seconds=0.0) as front:
            client = ServingClient(front.address, retry=FAST_RETRY)
            body = client.health()  # 503 on the wire, body surfaced
            assert body["status"] == "degraded"

    def test_stats_round_trips(self, served):
        front, _ = served
        client = ServingClient(front.address, client_id="stats-reader")
        client.topk(VECTOR)
        body = client.stats()
        assert body["front"]["requests"] == 1

    def test_submit_rejects_non_delta_payloads(self, served):
        front, _ = served
        client = ServingClient(front.address)
        with pytest.raises(Exception, match="DatabaseDelta"):
            client.submit(["not", "a", "delta"])
