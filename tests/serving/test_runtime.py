"""Tests for the concurrent serving runtime.

Covers the reader–writer protocol (atomic snapshot swap, epoch-based
reclamation), end-to-end delta application through the background applier,
failure isolation, and the agreement satellite: a runtime draining a
random delta stream concurrently yields vectors identical (≤ 1e-3 cosine)
to the serial :class:`IncrementalRetrofitter` path.
"""

import threading
import time

import numpy as np
import pytest

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.errors import ServingError
from repro.experiments.update_bench import synthesize_tmdb_delta
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.incremental import max_cosine_distance
from repro.retrofit.pipeline import RetroPipeline
from repro.serving.runtime import EpochRegistry, ServingRuntime
from repro.serving.session import default_index_factory

SETTLE = 300


def build_stack(num_movies=50, seed=9, dim=16):
    """A settled pipeline + retrofitter over a fresh small TMDB database."""
    dataset = generate_tmdb(
        num_movies=num_movies, seed=seed, embedding_dimension=dim
    )
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    result = pipeline.run(iterations=SETTLE)
    return dataset, pipeline.incremental_retrofitter(result)


def insert_movie_delta(key, title=None):
    delta = DatabaseDelta()
    delta.insert("movies", {
        "id": 80_000 + key, "title": title or f"runtime probe {key}",
        "original_language": "english",
        "overview": "a quiet harbour town keeps an old secret",
        "budget": 1e7, "revenue": 2e7, "popularity": 1.2,
        "release_year": 2026, "collection_id": None,
    })
    delta.insert("movie_countries", {
        "id": 80_000 + key, "movie_id": 80_000 + key, "country_id": 1,
    })
    return delta


class TestEpochRegistry:
    def test_enter_exit_lifecycle(self):
        epochs = EpochRegistry()
        assert epochs.oldest_active_epoch() is None
        tid = epochs.enter()
        assert epochs.oldest_active_epoch() == 0
        epochs.exit(tid)
        assert epochs.oldest_active_epoch() is None

    def test_nested_pins_keep_the_outer_epoch(self):
        epochs = EpochRegistry()
        tid = epochs.enter()
        epochs.advance()
        inner = epochs.enter()  # nested on the same thread
        assert epochs.oldest_active_epoch() == 0
        epochs.exit(inner)
        assert epochs.oldest_active_epoch() == 0  # outer pin still holds
        epochs.exit(tid)
        assert epochs.oldest_active_epoch() is None

    def test_unbalanced_exit_raises(self):
        epochs = EpochRegistry()
        tid = epochs.enter()
        epochs.exit(tid)
        with pytest.raises(ServingError):
            epochs.exit(tid)

    def test_grace_period_waits_for_old_readers(self):
        epochs = EpochRegistry()
        tid = epochs.enter()
        target = epochs.advance()
        assert not epochs.wait_for_grace_period(target, timeout=0.05)
        epochs.exit(tid)
        assert epochs.wait_for_grace_period(target, timeout=1.0)

    def test_readers_entering_after_advance_do_not_block_grace(self):
        epochs = EpochRegistry()
        target = epochs.advance()
        epochs.enter()  # a new reader pinned at the *new* epoch
        assert epochs.wait_for_grace_period(target, timeout=0.5)


class TestServingRuntime:
    def test_submitted_delta_becomes_visible(self):
        dataset, retrofitter = build_stack()
        with ServingRuntime(
            dataset.database, retrofitter, solve_iterations=SETTLE
        ) as runtime:
            before = runtime.published_version
            ticket = runtime.submit(insert_movie_delta(1, "amber lighthouse"))
            version = ticket.wait(timeout=60.0)
            assert version == before + 1
            assert runtime.published_version == version
            assert ticket.lag_seconds is not None and ticket.lag_seconds > 0
            vector = runtime.embeddings.vector_for(
                "movies.title", "amber lighthouse"
            )
            assert runtime.topk(vector, 1)[0][1] == "amber lighthouse"

    def test_submit_requires_running_runtime(self):
        dataset, retrofitter = build_stack()
        runtime = ServingRuntime(dataset.database, retrofitter)
        with pytest.raises(ServingError, match="not running"):
            runtime.submit(insert_movie_delta(1))

    def test_pinned_snapshot_is_stable_across_updates(self):
        dataset, retrofitter = build_stack()
        with ServingRuntime(
            dataset.database, retrofitter, solve_iterations=SETTLE
        ) as runtime:
            with runtime.read() as snapshot:
                pinned_version = snapshot.version
                ticket = runtime.submit(insert_movie_delta(2))
                ticket.wait(timeout=60.0)
                # the published version moved on, the pinned snapshot did not
                assert runtime.published_version == pinned_version + 1
                assert snapshot.version == pinned_version
                # while pinned, the retired snapshot must not be reclaimed
                deadline = time.perf_counter() + 1.0
                while time.perf_counter() < deadline:
                    assert runtime.stats.snapshots_reclaimed == 0
                    if runtime.stats.updates_published:
                        break
                    time.sleep(0.01)
            # after unpinning, the applier catches the retired session up
            deadline = time.perf_counter() + 10.0
            while runtime.stats.snapshots_reclaimed == 0:
                assert time.perf_counter() < deadline
                time.sleep(0.01)

    def test_empty_delta_completes_without_a_solve(self):
        dataset, retrofitter = build_stack()
        with ServingRuntime(dataset.database, retrofitter) as runtime:
            ticket = runtime.submit(DatabaseDelta())
            assert ticket.wait(timeout=10.0) == 0
            assert runtime.stats.updates_published == 0

    def test_failed_delta_keeps_serving_and_reports(self):
        dataset, retrofitter = build_stack()
        probe = retrofitter.embeddings.matrix[0]
        bad = DatabaseDelta().insert("no_such_table", {"id": 1})
        with ServingRuntime(
            dataset.database, retrofitter, solve_iterations=SETTLE
        ) as runtime:
            ticket = runtime.submit(bad)
            with pytest.raises(Exception):
                ticket.wait(timeout=60.0)
            assert ticket.failed
            assert runtime.stats.update_failures == 1
            assert runtime.last_error is not None
            # write-ahead validation rejected it before any mutation, so
            # the runtime stays fully healthy
            assert not runtime.degraded
            # still serving, and a good delta still lands afterwards
            assert len(runtime.topk(probe, 3)) == 3
            good = runtime.submit(insert_movie_delta(3, "emerald causeway"))
            good.wait(timeout=60.0)
            vector = runtime.embeddings.vector_for(
                "movies.title", "emerald causeway"
            )
            assert runtime.topk(vector, 1)[0][1] == "emerald causeway"

    def test_failure_past_validation_degrades_the_runtime(self):
        dataset, retrofitter = build_stack()
        probe = retrofitter.embeddings.matrix[0]

        def exploding_apply(*args, **kwargs):
            raise RuntimeError("solver blew up mid-update")

        retrofitter.apply = exploding_apply  # past validation, pre-publish
        with ServingRuntime(dataset.database, retrofitter) as runtime:
            ticket = runtime.submit(insert_movie_delta(9))
            with pytest.raises(RuntimeError, match="blew up"):
                ticket.wait(timeout=60.0)
            # the database may now disagree with the served vectors:
            # reads keep working, writes are refused loudly
            assert runtime.degraded
            assert len(runtime.topk(probe, 3)) == 3
            with pytest.raises(ServingError, match="degraded"):
                runtime.submit(insert_movie_delta(10))

    def test_stop_fails_unapplied_tickets(self):
        dataset, retrofitter = build_stack()
        runtime = ServingRuntime(dataset.database, retrofitter)
        runtime.start()
        runtime.stop(flush=True)
        with pytest.raises(ServingError):
            runtime.submit(insert_movie_delta(4))

    def test_concurrent_readers_during_update_stream(self):
        dataset, retrofitter = build_stack()
        matrix = retrofitter.embeddings.matrix.copy()
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader(seed):
            rng = np.random.default_rng(seed)
            try:
                while not stop.is_set():
                    probe = matrix[int(rng.integers(0, matrix.shape[0]))]
                    hits = runtime.topk(probe, 5)
                    assert 1 <= len(hits) <= 5
            except BaseException as error:
                errors.append(error)

        with ServingRuntime(
            dataset.database,
            retrofitter,
            index_factory=default_index_factory(ivf_threshold=64),
            solve_iterations=SETTLE,
        ) as runtime:
            threads = [
                threading.Thread(target=reader, args=(seed,)) for seed in range(3)
            ]
            for thread in threads:
                thread.start()
            rng = np.random.default_rng(0)
            # synthesize reads the database the applier mutates, so each
            # delta waits for the previous one to land before being built
            for _ in range(3):
                delta = synthesize_tmdb_delta(dataset.database, rng, 1)
                runtime.submit(delta).wait(timeout=60.0)
            runtime.flush(timeout=120.0)
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert errors == []
        stats = runtime.stats
        assert stats.updates_published >= 1
        assert stats.pending_batches == 0


class TestConcurrentSerialAgreement:
    """Satellite: concurrent draining == the serial retrofitter path."""

    @pytest.mark.parametrize(
        "churn,coalesce",
        [
            # churn deltas carry deletes, which never coalesce: the runtime
            # applies exactly the serial batches (agreement is exact)
            (True, True),
            # insert-only streams coalesce into merged batches: agreement
            # holds through the residual-certified solve, not batch-for-batch
            (False, True),
            (True, False),
        ],
    )
    def test_random_stream_matches_serial_path(self, churn, coalesce):
        seed = 11
        dataset, retrofitter = build_stack(seed=seed)
        serial_dataset, serial_retrofitter = build_stack(seed=seed)

        # synthesize the stream against a third identical database so the
        # concurrent and serial paths both see deltas that apply cleanly
        scratch = generate_tmdb(
            num_movies=50, seed=seed, embedding_dimension=16
        ).database
        rng = np.random.default_rng(3)
        deltas = []
        for _ in range(4):
            delta = synthesize_tmdb_delta(
                scratch, rng, 1, include_update=churn, include_delete=churn
            )
            delta.apply_to(scratch)
            deltas.append(delta)

        errors: list[BaseException] = []
        stop = threading.Event()
        matrix = retrofitter.embeddings.matrix.copy()

        def reader():
            rng_r = np.random.default_rng(7)
            try:
                while not stop.is_set():
                    probe = matrix[int(rng_r.integers(0, matrix.shape[0]))]
                    runtime.topk(probe, 4)
            except BaseException as error:
                errors.append(error)

        with ServingRuntime(
            dataset.database,
            retrofitter,
            coalesce=coalesce,
            solve_iterations=SETTLE,
        ) as runtime:
            thread = threading.Thread(target=reader)
            thread.start()
            for delta in deltas:
                runtime.submit(delta)
            runtime.flush(timeout=300.0)
            stop.set()
            thread.join(timeout=10.0)
        assert errors == []

        for delta in deltas:
            serial_retrofitter.apply(
                serial_dataset.database, delta, iterations=SETTLE
            )

        worst = max_cosine_distance(
            serial_retrofitter.embeddings, runtime.embeddings
        )
        assert worst <= 1e-3
        # the served snapshot is the writer-side state, published
        assert runtime.published_version == runtime.stats.updates_published
