"""Tests for the ServingSession facade, the LRU cache and the task hooks."""

import numpy as np
import pytest

from repro.errors import ExtractionError, ServingError
from repro.experiments.embedding_factory import build_embedding_suite
from repro.experiments.task_data import (
    MOVIE_TITLE_CATEGORY,
    knn_impute_labels,
    language_imputation_data,
)
from repro.retrofit.combine import TextValueEmbeddingSet
from repro.serving.cache import LRUCache
from repro.serving.index import FlatIndex, IVFIndex
from repro.serving.session import ServingSession, default_index_factory
from repro.tasks.link_prediction import rank_link_candidates


@pytest.fixture(scope="module")
def pv_embeddings(tmdb_extraction, tmdb_base):
    return TextValueEmbeddingSet(tmdb_extraction, tmdb_base.matrix.copy(), name="PV")


@pytest.fixture()
def session(pv_embeddings):
    return ServingSession(pv_embeddings, cache_size=8)


class TestLRUCache:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ServingError):
            LRUCache(0)

    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_stats(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_overwrite_keeps_capacity(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        cache.put("b", 3)
        assert len(cache) == 2 and cache.get("a") == 2


class TestServingSession:
    def test_topk_matches_embedding_set_nearest(self, session, pv_embeddings):
        query = pv_embeddings.matrix[3]
        assert session.topk(query, 5) == pv_embeddings.nearest(query, 5)
        assert session.topk(query, 5, category=MOVIE_TITLE_CATEGORY) == (
            pv_embeddings.nearest(query, 5, category=MOVIE_TITLE_CATEGORY)
        )

    def test_batch_matches_single(self, session, pv_embeddings, rng):
        queries = rng.normal(size=(4, pv_embeddings.dimension))
        batched = session.topk_batch(queries, 4)
        assert len(batched) == 4
        for row, query in enumerate(queries):
            single = session.topk(query, 4)
            # GEMM (batch) and GEMV (single) accumulate in different orders,
            # so scores agree only to float precision; rankings must match
            assert [hit[:2] for hit in batched[row]] == [hit[:2] for hit in single]
            assert np.allclose(
                [hit[2] for hit in batched[row]], [hit[2] for hit in single]
            )

    def test_cache_hits_on_repeated_queries(self, session, pv_embeddings):
        query = pv_embeddings.matrix[0]
        first = session.topk(query, 3)
        second = session.topk(query, 3)
        assert first == second
        stats = session.cache_stats
        assert stats.hits == 1 and stats.misses == 1

    def test_cache_disabled(self, pv_embeddings):
        session = ServingSession(pv_embeddings, cache_size=0)
        query = pv_embeddings.matrix[0]
        session.topk(query, 3)
        assert session.cache_stats is None

    def test_neighbours_exclude_self(self, session, pv_embeddings):
        record = pv_embeddings.extraction.records_of_category(MOVIE_TITLE_CATEGORY)[0]
        neighbours = session.neighbours_of(
            record.category, record.text, k=3, within=MOVIE_TITLE_CATEGORY
        )
        assert len(neighbours) <= 3
        assert all(text != record.text for _, text, _ in neighbours)

    def test_vector_and_categories(self, session, pv_embeddings):
        assert MOVIE_TITLE_CATEGORY in session.categories
        record = pv_embeddings.extraction.records[0]
        assert np.array_equal(
            session.vector_for(record.category, record.text),
            pv_embeddings.matrix[0],
        )

    def test_unknown_category_raises(self, session):
        with pytest.raises(ExtractionError):
            session.topk(np.zeros(session.dimension), 3, category="no.such")

    def test_bad_batch_shape_raises(self, session):
        with pytest.raises(ServingError):
            session.topk_batch(np.zeros(session.dimension), 3)

    def test_default_factory_switches_to_ivf(self, rng):
        factory = default_index_factory(ivf_threshold=64, nprobe=4)
        assert isinstance(factory(rng.normal(size=(63, 4))), FlatIndex)
        assert isinstance(factory(rng.normal(size=(64, 4))), IVFIndex)


class TestStoreBackedSession:
    def test_from_store_result_and_set(self, pv_embeddings, tmp_path):
        from repro.serving.store import EmbeddingStore

        store = EmbeddingStore(tmp_path / "store")
        store.save_embedding_set("pv", pv_embeddings)
        session = ServingSession.from_store(tmp_path / "store", name="pv")
        query = pv_embeddings.matrix[1]
        assert session.topk(query, 3) == pv_embeddings.nearest(query, 3)


class TestSuiteServingHooks:
    @pytest.fixture(scope="class")
    def suite(self, small_tmdb):
        return build_embedding_suite(
            small_tmdb.database,
            small_tmdb.embedding,
            methods=("PV",),
            include_combinations=False,
        )

    def test_index_for_is_cached(self, suite):
        index = suite.index_for("PV", MOVIE_TITLE_CATEGORY)
        assert index is suite.index_for("PV", MOVIE_TITLE_CATEGORY)
        assert isinstance(index, FlatIndex)

    def test_serving_session_over_suite(self, suite):
        session = suite.serving_session("PV")
        query = suite.get("PV").matrix[0]
        assert session.topk(query, 3) == suite.get("PV").nearest(query, 3)

    def test_suite_save(self, suite, tmp_path):
        from repro.serving.store import EmbeddingStore

        names = suite.save(tmp_path / "suite")
        assert names == ["PV"]
        loaded = EmbeddingStore(tmp_path / "suite").load_embedding_set("PV")
        assert np.array_equal(loaded.matrix, suite.get("PV").matrix)


class TestTaskHooks:
    def test_rank_link_candidates_matches_flat_ranking(self, pv_embeddings, rng):
        targets = pv_embeddings.matrix[:20]
        sources = rng.normal(size=(5, pv_embeddings.dimension))
        index = FlatIndex(targets)
        indices, scores = rank_link_candidates(sources, index, k=4)
        assert indices.shape == (5, 4)
        for row in range(5):
            expected, _ = index.query(sources[row], 4)
            assert np.array_equal(indices[row], expected)

    def test_rank_link_candidates_validates_shapes(self, pv_embeddings, rng):
        index = FlatIndex(pv_embeddings.matrix[:10])
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            rank_link_candidates(rng.normal(size=5), index, k=2)
        with pytest.raises(ExperimentError):
            rank_link_candidates(
                rng.normal(size=(2, pv_embeddings.dimension + 1)), index, k=2
            )

    def test_knn_impute_recovers_training_labels(
        self, pv_embeddings, small_tmdb, tmdb_extraction
    ):
        data = language_imputation_data(tmdb_extraction, small_tmdb)
        predictions = knn_impute_labels(
            pv_embeddings, data, data.indices, k=1
        )
        # with k=1 each training point's own vector is its nearest neighbour
        assert np.array_equal(predictions, data.labels)

    def test_knn_impute_accepts_prebuilt_index(
        self, pv_embeddings, small_tmdb, tmdb_extraction
    ):
        data = language_imputation_data(tmdb_extraction, small_tmdb)
        index = FlatIndex(pv_embeddings.matrix[data.indices])
        with_index = knn_impute_labels(
            pv_embeddings, data, data.indices[:5], k=3, index=index
        )
        without = knn_impute_labels(pv_embeddings, data, data.indices[:5], k=3)
        assert np.array_equal(with_index, without)

    def test_knn_impute_rejects_neighbourless_rows(
        self, pv_embeddings, small_tmdb, tmdb_extraction
    ):
        from repro.errors import ExperimentError

        class StarvedIndex:
            """An index whose probed cells never hold any candidates."""

            def query_batch(self, queries, k):
                batch = queries.shape[0]
                return (
                    np.full((batch, k), -1, dtype=np.int64),
                    np.full((batch, k), -np.inf),
                )

        data = language_imputation_data(tmdb_extraction, small_tmdb)
        with pytest.raises(ExperimentError, match="no neighbours"):
            knn_impute_labels(
                pv_embeddings, data, data.indices[:2], k=2, index=StarvedIndex()
            )


class TestSharedIndexCache:
    def test_default_session_reuses_embedding_set_flat_index(
        self, pv_embeddings
    ):
        session = ServingSession(pv_embeddings)
        assert session.index_for(MOVIE_TITLE_CATEGORY) is (
            pv_embeddings.index_for(MOVIE_TITLE_CATEGORY)
        )

    def test_custom_factory_builds_its_own_index(self, pv_embeddings):
        session = ServingSession(
            pv_embeddings, index_factory=lambda m: FlatIndex(m)
        )
        assert session.index_for(MOVIE_TITLE_CATEGORY) is not (
            pv_embeddings.index_for(MOVIE_TITLE_CATEGORY)
        )

    def test_matrix_reassignment_invalidates_session(self, tmdb_extraction):
        matrix = np.eye(len(tmdb_extraction))[:, :8]
        embeddings = TextValueEmbeddingSet(tmdb_extraction, matrix, "x")
        session = ServingSession(embeddings, cache_size=8)
        query = np.zeros(8)
        query[0] = 1.0
        first = session.topk(query, 1)
        embeddings.matrix = np.roll(matrix, 1, axis=0)
        second = session.topk(query, 1)
        assert first[0][:2] != second[0][:2]
        assert session.topk(query, 1) == second  # cache refilled, consistent
