"""The asyncio HTTP/JSON front: routing, validation, limits, batching.

Every test drives the real server over a loopback socket with plain
``urllib`` — request parsing, keep-alive handling and the event-loop
batching path are all exercised end to end, not through test doubles.
"""

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.retrofit.combine import TextValueEmbeddingSet
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving import (
    EmbeddingStore,
    HTTPServingFront,
    ReplicatedServingTier,
    ServingSession,
)


def http(address, path, payload=None, method=None, headers=None):
    """One request; returns (status, parsed JSON body, response headers)."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        address + path,
        data=data,
        headers={"Content-Type": "application/json", **(headers or {})},
        method=method or ("POST" if data is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def as_json_rows(rows):
    """Session results (tuples) in their JSON wire shape (lists)."""
    return [[category, text, score] for category, text, score in rows]


@pytest.fixture()
def served(tmdb_extraction, tmp_path):
    """A read-only replicated tier behind a running HTTP front."""
    rng = np.random.default_rng(7)
    matrix = rng.integers(-2, 3, size=(len(tmdb_extraction), 12)).astype(
        np.float64
    )
    embeddings = TextValueEmbeddingSet(tmdb_extraction, matrix, name="INT")
    store = EmbeddingStore(tmp_path / "store")
    store.save_embedding_set("int", embeddings)
    session = ServingSession(embeddings)
    queries = rng.integers(-3, 4, size=(6, 12)).astype(np.float64)
    with ReplicatedServingTier(store.root, "int", n_replicas=2) as tier:
        with HTTPServingFront(tier) as front:
            yield front, session, queries


class TestTopkEndpoint:
    def test_topk_matches_the_session(self, served):
        front, session, queries = served
        for query, want in zip(queries, session.topk_batch(queries, 5)):
            status, body, _ = http(
                front.address, "/topk", {"vector": list(query), "k": 5}
            )
            assert status == 200
            assert body["version"] == 0
            assert body["results"] == as_json_rows(want)

    def test_category_scope_and_default_k(self, served):
        front, session, queries = served
        category = sorted(session.categories)[0]
        want = session.topk_batch(queries[:1], 10, category=category)[0]
        status, body, _ = http(
            front.address,
            "/topk",
            {"vector": list(queries[0]), "category": category},
        )
        assert status == 200
        assert body["results"] == as_json_rows(want)

    def test_min_version_at_current_position(self, served):
        front, session, queries = served
        status, body, _ = http(
            front.address,
            "/topk",
            {"vector": list(queries[0]), "k": 3, "min_version": 0},
        )
        assert status == 200
        assert body["version"] >= 0
        assert body["results"] == as_json_rows(
            session.topk_batch(queries[:1], 3)[0]
        )

    def test_concurrent_clients_all_answered_exactly(self, served):
        front, session, queries = served
        want = session.topk_batch(queries, 4)

        def one(i):
            return http(
                front.address,
                "/topk",
                {"vector": list(queries[i % len(queries)]), "k": 4},
            )

        with ThreadPoolExecutor(max_workers=12) as pool:
            replies = list(pool.map(one, range(24)))
        for i, (status, body, _) in enumerate(replies):
            assert status == 200
            assert body["results"] == as_json_rows(want[i % len(queries)])
        assert front.stats.requests == 24
        assert front.stats.batches_dispatched >= 1


class TestValidation:
    @pytest.mark.parametrize("payload", [
        {},  # vector missing
        {"vector": []},  # empty
        {"vector": "nope"},  # not an array
        {"vector": [[1.0, 2.0]]},  # not flat
        {"vector": [1.0] * 5},  # wrong dimension (served is 12)
        {"vector": [float("inf")] + [0.0] * 11},  # non-finite
        {"vector": [0.0] * 12, "k": 0},
        {"vector": [0.0] * 12, "k": True},
        {"vector": [0.0] * 12, "k": 2_000_000},
        {"vector": [0.0] * 12, "category": 5},
        {"vector": [0.0] * 12, "min_version": "latest"},
    ])
    def test_bad_topk_payloads_are_400(self, served, payload):
        front, _, _ = served
        status, body, _ = http(front.address, "/topk", payload)
        assert status == 400
        assert "error" in body

    def test_unknown_category_is_400(self, served):
        front, _, queries = served
        status, body, _ = http(
            front.address,
            "/topk",
            {"vector": list(queries[0]), "category": "nope.nope"},
        )
        assert status == 400
        assert "nope.nope" in body["error"]

    def test_invalid_json_body_is_400(self, served):
        front, _, _ = served
        request = urllib.request.Request(
            front.address + "/topk", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, served):
        front, _, _ = served
        status, body, _ = http(front.address, "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, served):
        front, _, queries = served
        status, _, _ = http(front.address, "/topk", method="GET")
        assert status == 405
        status, _, _ = http(
            front.address, "/health", {"vector": list(queries[0])}
        )
        assert status == 405


class TestHealthAndStats:
    def test_health_reports_version_and_followers(self, served):
        front, _, _ = served
        status, body, _ = http(front.address, "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["version"] == 0
        assert body["live_followers"] == 2

    def test_stats_exposes_front_and_target_counters(self, served):
        front, _, queries = served
        http(front.address, "/topk", {"vector": list(queries[0]), "k": 2})
        status, body, _ = http(front.address, "/stats")
        assert status == 200
        assert body["front"]["requests"] >= 1
        assert body["target"]["n_replicas"] == 2
        assert body["target"]["queries"] >= 1


class TestRateLimiting:
    def test_per_client_token_bucket_answers_429(
        self, tmdb_extraction, tmp_path
    ):
        rng = np.random.default_rng(7)
        matrix = rng.integers(-2, 3, size=(len(tmdb_extraction), 12)).astype(
            np.float64
        )
        embeddings = TextValueEmbeddingSet(tmdb_extraction, matrix, name="I")
        store = EmbeddingStore(tmp_path / "store")
        store.save_embedding_set("int", embeddings)
        vector = [1.0] * 12
        with ReplicatedServingTier(store.root, "int", n_replicas=1) as tier:
            with HTTPServingFront(
                tier, rate_per_second=0.001, burst=1
            ) as front:
                first = http(
                    front.address, "/topk", {"vector": vector},
                    headers={"X-Client-Id": "alpha"},
                )
                assert first[0] == 200
                second = http(
                    front.address, "/topk", {"vector": vector},
                    headers={"X-Client-Id": "alpha"},
                )
                assert second[0] == 429
                assert second[2].get("Retry-After") == "1"
                # budgets are per client: a different id is admitted
                other = http(
                    front.address, "/topk", {"vector": vector},
                    headers={"X-Client-Id": "beta"},
                )
                assert other[0] == 200
                assert front.stats.rate_limited == 1
                # health/stats are never throttled
                assert http(front.address, "/health")[0] == 200


class TestReadYourWritesOverHTTP:
    def test_floored_read_after_a_write_ack(self, tmp_path):
        dataset = generate_tmdb(num_movies=60, seed=8, embedding_dimension=16)
        pipeline = RetroPipeline(
            dataset.database,
            dataset.embedding,
            hyperparams=RetroHyperparameters.paper_rn_default(),
        )
        result = pipeline.run(iterations=120)
        retrofitter = pipeline.incremental_retrofitter(result)
        store = EmbeddingStore(tmp_path / "store")
        store.save_embedding_set("rn", result.embeddings)
        delta = DatabaseDelta().insert("movies", {
            "id": 60_001, "title": "silent meridian 1",
            "original_language": "english",
            "overview": "a quiet voyage across the meridian",
            "budget": 1e7, "revenue": 2e7, "popularity": 1.0,
            "release_year": 2026, "collection_id": None,
        })
        rng = np.random.default_rng(4)
        query = rng.integers(-3, 4, size=16).astype(np.float64)
        tier = ReplicatedServingTier(
            store.root, "rn", n_replicas=2,
            database=dataset.database, retrofitter=retrofitter,
            solve_iterations=60,
        )
        with tier:
            with HTTPServingFront(tier) as front:
                ticket = tier.submit(delta)
                version = ticket.wait(timeout=120)
                status, body, _ = http(
                    front.address,
                    "/topk",
                    {"vector": list(query), "k": 5, "min_version": version},
                )
                assert status == 200
                assert body["version"] >= version
                loaded, _, loaded_version = (
                    store.load_embedding_set_versioned("rn")
                )
                assert loaded_version == version
                serial = ServingSession(loaded)
                serial.settle_indexes()
                assert body["results"] == as_json_rows(
                    serial.topk_batch(query[None, :], 5)[0]
                )
