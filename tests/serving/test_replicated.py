"""Replicated serving tier: log shipping, catch-up edges, failover.

The correctness bar mirrors the sharded tests: a follower replaying the
store's delta log must serve *exactly* what a single in-process session
over the store's versioned load serves — same rows, same order, same
float bits.  The catch-up edge cases (snapshot bootstrap, mid-log
restart, compaction racing a lagging follower) run against
``_FollowerState`` directly so they are deterministic and fork-free;
process-level behaviour (election, SIGKILL failover) lives in the
stress-marked classes.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.errors import ExtractionError, ServingError, StoreFormatError
from repro.retrofit.combine import TextValueEmbeddingSet
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.incremental import IncrementalRetrofitter
from repro.retrofit.pipeline import RetroPipeline
from repro.serving import (
    EmbeddingStore,
    ReplicatedServingTier,
    ServingSession,
    ship_snapshot,
)
from repro.serving.replicated import _FollowerState


@pytest.fixture()
def int_corpus(tmdb_extraction, tmp_path):
    """Integer-valued embeddings in a store: exact dot products, ties
    everywhere — equality against the session is ``==``, not allclose."""
    rng = np.random.default_rng(7)
    matrix = rng.integers(-2, 3, size=(len(tmdb_extraction), 12)).astype(
        np.float64
    )
    embeddings = TextValueEmbeddingSet(tmdb_extraction, matrix, name="INT")
    store = EmbeddingStore(tmp_path / "store")
    store.save_embedding_set("int", embeddings)
    session = ServingSession(embeddings)
    queries = rng.integers(-3, 4, size=(9, 12)).astype(np.float64)
    queries[3] = queries[0]  # duplicated query
    queries[5] = 0.0  # degenerate zero query
    return store, session, queries


@pytest.fixture()
def stream(tmp_path):
    """A trained TMDB corpus + retrofitter + store + promotion factory."""
    dataset = generate_tmdb(num_movies=60, seed=8, embedding_dimension=16)
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    result = pipeline.run(iterations=120)
    retrofitter = pipeline.incremental_retrofitter(result)
    store = EmbeddingStore(tmp_path / "store")
    store.save_embedding_set("rn", result.embeddings)

    def factory(embeddings):
        # the promotion path: an elected follower rebuilds its solver
        # from its replayed embeddings (fork-inherited closure)
        return IncrementalRetrofitter(
            embeddings,
            pipeline.tokenizer,
            hyperparams=pipeline.hyperparams,
            method=pipeline.method,
        )

    return dataset, retrofitter, store, factory


def make_delta(dataset, key):
    delta = DatabaseDelta()
    delta.insert("movies", {
        "id": 60_000 + key, "title": f"silent meridian {key}",
        "original_language": "english",
        "overview": "a quiet voyage across the meridian",
        "budget": 1e7, "revenue": 2e7, "popularity": 1.0,
        "release_year": 2026, "collection_id": None,
    })
    delta.insert("movie_countries", {
        "id": 60_000 + key, "movie_id": 60_000 + key, "country_id": 1,
    })
    if key % 2 == 0:  # deletions: removed values tombstone in-place sessions
        victim = dataset.database.table("reviews").rows[0]
        delta.delete("reviews", victim["id"])
    return delta


def append_one(dataset, retrofitter, store, key):
    update = retrofitter.apply(dataset.database, make_delta(dataset, key))
    store.append_embedding_set_delta("rn", update)
    return update


class TestReplicatedEqualsSingleIndex:
    @pytest.mark.parametrize("n_replicas", [1, 2])
    def test_topk_batch_identical(self, int_corpus, n_replicas):
        store, session, queries = int_corpus
        tier = ReplicatedServingTier(store.root, "int", n_replicas=n_replicas)
        with tier:
            for k in (1, 3, 10):
                assert tier.topk_batch(queries, k) == session.topk_batch(
                    queries, k
                )

    def test_category_scope_identical(self, int_corpus):
        store, session, queries = int_corpus
        categories = sorted(session.categories)[:3]
        with ReplicatedServingTier(store.root, "int", n_replicas=2) as tier:
            for category in categories:
                assert tier.topk_batch(
                    queries, 5, category=category
                ) == session.topk_batch(queries, 5, category=category)

    def test_reads_load_balance_across_followers(self, int_corpus):
        store, session, queries = int_corpus
        with ReplicatedServingTier(store.root, "int", n_replicas=2) as tier:
            # every answer is identical regardless of which replica served
            want = session.topk_batch(queries, 4)
            for _ in range(4):
                assert tier.topk_batch(queries, 4) == want
            assert tier.stats.queries == 4

    def test_unknown_category_raises_like_the_session(self, int_corpus):
        store, session, queries = int_corpus
        with pytest.raises(ExtractionError):
            session.topk(queries[0], 3, category="nope.nope")
        with ReplicatedServingTier(store.root, "int", n_replicas=1) as tier:
            with pytest.raises(ExtractionError):
                tier.topk(queries[0], 3, category="nope.nope")

    def test_read_only_tier_refuses_writes(self, int_corpus):
        store, _, _ = int_corpus
        with ReplicatedServingTier(store.root, "int", n_replicas=1) as tier:
            with pytest.raises(ServingError, match="no writer side"):
                tier.submit(DatabaseDelta())

    def test_min_version_at_current_position_answers(self, int_corpus):
        store, session, queries = int_corpus
        with ReplicatedServingTier(store.root, "int", n_replicas=2) as tier:
            version, results = tier.topk_batch_versioned(
                queries, 5, min_version=0
            )
            assert version == 0
            assert results == session.topk_batch(queries, 5)


class TestShipSnapshot:
    def test_bootstrap_into_empty_store(self, stream, tmp_path):
        dataset, retrofitter, store, _ = stream
        for key in (1, 2):
            append_one(dataset, retrofitter, store, key)
        dest = tmp_path / "replica-root"  # does not exist yet
        shipped = ship_snapshot(store.root, "rn", dest)
        assert shipped == 2
        loaded, _, version = EmbeddingStore(dest).load_embedding_set_versioned(
            "rn"
        )
        assert version == 2
        assert np.array_equal(loaded.matrix, retrofitter.embeddings.matrix)
        # a follower pool bootstrapped from the shipped root serves it
        rng = np.random.default_rng(3)
        queries = rng.integers(-3, 4, size=(4, 16)).astype(np.float64)
        session = ServingSession(loaded)
        session.settle_indexes()
        with ReplicatedServingTier(dest, "rn", n_replicas=1) as tier:
            assert tier.topk_batch(queries, 6) == session.topk_batch(queries, 6)

    def test_ship_base_only(self, stream, tmp_path):
        dataset, retrofitter, store, _ = stream
        append_one(dataset, retrofitter, store, 1)
        dest = tmp_path / "base-only"
        shipped = ship_snapshot(store.root, "rn", dest, include_deltas=False)
        assert shipped == 0
        assert EmbeddingStore(dest).latest_version("rn") == 0


class TestFollowerCatchUp:
    def test_restart_mid_log_does_not_double_apply(self, stream):
        """A follower restarted mid-log bootstraps from the base and
        replays the full chain once — identical to one that tailed
        incrementally, and to the store's own versioned load."""
        dataset, retrofitter, store, _ = stream
        tailing = _FollowerState(store, "rn", "cosine")
        for key in (1, 2, 3):
            append_one(dataset, retrofitter, store, key)
            tailing.sync_to_latest()
        assert tailing.version == 3
        restarted = _FollowerState(store, "rn", "cosine")  # fresh bootstrap
        restarted.sync_to_latest()
        assert restarted.version == 3
        loaded, _, version = store.load_embedding_set_versioned("rn")
        assert version == 3
        assert np.array_equal(restarted.matrix(), loaded.matrix)
        assert np.array_equal(tailing.matrix(), loaded.matrix)
        # replaying again is a no-op, not a double apply
        restarted.sync_to_latest()
        assert restarted.version == 3
        assert np.array_equal(restarted.matrix(), loaded.matrix)

    def test_compaction_under_lagging_follower_falls_back_to_snapshot(
        self, stream
    ):
        """A follower that lost records to a compaction re-bootstraps from
        the (newer) base snapshot and tails the remaining records."""
        dataset, retrofitter, store, _ = stream
        lagging = _FollowerState(store, "rn", "cosine")
        assert lagging.version == 0
        for key in (1, 2, 3):
            append_one(dataset, retrofitter, store, key)
        store.compact_embedding_set("rn")  # folds 1..3, prunes the records
        assert store.base_version("rn") == 3
        append_one(dataset, retrofitter, store, 4)  # post-compaction tail
        lagging.sync_to_latest()  # records 1..3 are gone: snapshot + tail
        assert lagging.version == 4
        loaded, _, version = store.load_embedding_set_versioned("rn")
        assert version == 4
        assert np.array_equal(lagging.matrix(), loaded.matrix)

    def test_lost_record_without_newer_snapshot_raises(self, stream):
        """A gap the base snapshot cannot cover is an integrity error, not
        a silent skip — the follower must not serve a diverged matrix."""
        dataset, retrofitter, store, _ = stream
        lagging = _FollowerState(store, "rn", "cosine")
        for key in (1, 2):
            append_one(dataset, retrofitter, store, key)
        store.delete_artifact("rn.delta000001")  # gap; base still v0
        with pytest.raises(StoreFormatError):
            lagging.sync_to_latest()

    def test_retention_floor_keeps_a_tailing_follower_alive(self, stream):
        """compact(keep_from=v) preserves the records a follower at
        ``v - 1`` still needs: it tails straight through the compaction
        without ever re-bootstrapping."""
        dataset, retrofitter, store, _ = stream
        follower = _FollowerState(store, "rn", "cosine")
        for key in (1, 2):
            append_one(dataset, retrofitter, store, key)
        follower.sync_to_latest()
        assert follower.version == 2
        append_one(dataset, retrofitter, store, 3)
        # the follower announced position 2: the floor protects record 3
        store.compact_embedding_set("rn", keep_from=3)
        assert store.base_version("rn") == 3
        assert [v for v, _ in store.list_embedding_set_deltas("rn")] == [3]
        follower.sync_to_latest()  # plain tail — no snapshot fallback
        assert follower.version == 3
        loaded, _, _ = store.load_embedding_set_versioned("rn")
        assert np.array_equal(follower.matrix(), loaded.matrix)


class TestStoreDeltaGC:
    def test_prune_never_touches_unfolded_records(self, stream):
        dataset, retrofitter, store, _ = stream
        for key in (1, 2):
            append_one(dataset, retrofitter, store, key)
        # base still at version 0: nothing is folded, nothing is prunable
        assert store.prune_embedding_set_deltas("rn") == 0
        assert [v for v, _ in store.list_embedding_set_deltas("rn")] == [1, 2]

    def test_prune_respects_the_retention_floor(self, stream):
        dataset, retrofitter, store, _ = stream
        for key in (1, 2, 3):
            append_one(dataset, retrofitter, store, key)
        pruned_to = store.compact_embedding_set("rn", keep_from=2)
        assert pruned_to == 3
        assert [v for v, _ in store.list_embedding_set_deltas("rn")] == [2, 3]
        # retained-but-folded records are inert for loads
        loaded, _, version = store.load_embedding_set_versioned("rn")
        assert version == 3
        assert np.array_equal(loaded.matrix, retrofitter.embeddings.matrix)
        # once the floor advances, a later pruning collects them
        assert store.prune_embedding_set_deltas("rn") == 2
        assert store.list_embedding_set_deltas("rn") == []

    def test_delete_artifact_removes_mmap_sidecars(self, stream):
        _, _, store, _ = stream
        store.open_matrix_readonly("rn")  # extracts the .npy sidecar
        assert list(store.root.glob("rn.*.npy"))
        store.delete_artifact("rn")
        assert not list(store.root.glob("rn.*.npy"))
        with pytest.raises(StoreFormatError):
            store.load_embedding_set("rn")


class TestWriterPath:
    def test_ticket_version_is_the_log_version(self, stream):
        """submit() → wait() resolves to the store log position, which is
        the read-your-writes floor; the log itself has the record."""
        dataset, retrofitter, store, factory = stream
        rng = np.random.default_rng(4)
        queries = rng.integers(-3, 4, size=(5, 16)).astype(np.float64)
        tier = ReplicatedServingTier(
            store.root, "rn", n_replicas=2,
            database=dataset.database, retrofitter=retrofitter,
            retrofitter_factory=factory, solve_iterations=60,
        )
        with tier:
            for key in (1, 2):
                ticket = tier.submit(make_delta(dataset, key))
                version = ticket.wait(timeout=120)
                assert version == key
                assert ticket.version == version
                assert store.latest_version("rn") == key
                assert tier.published_version == key
                # read-your-writes: the floored read serves the new value
                loaded, _, loaded_version = (
                    store.load_embedding_set_versioned("rn")
                )
                assert loaded_version == key
                serial = ServingSession(loaded)
                serial.settle_indexes()
                got_version, got = tier.topk_batch_versioned(
                    queries, 5, min_version=version
                )
                assert got_version >= version
                assert got == serial.topk_batch(queries, 5)
        assert tier.stats.writes_applied == 2
        assert tier.stats.write_failures == 0

    def test_follower_state_matches_the_log_replay_exactly(self, stream):
        dataset, retrofitter, store, factory = stream
        tier = ReplicatedServingTier(
            store.root, "rn", n_replicas=2,
            database=dataset.database, retrofitter=retrofitter,
            retrofitter_factory=factory, solve_iterations=60,
        )
        with tier:
            for key in (1, 2, 3):
                tier.submit(make_delta(dataset, key))
            tier.flush(timeout=300)
            assert tier.sync_replicas() == 3
            positions = tier.replica_versions()
            assert sorted(positions.values()) == [3, 3]
            version, matrix = tier.replica_matrix()
            loaded, _, loaded_version = store.load_embedding_set_versioned(
                "rn"
            )
            assert version == loaded_version == 3
            assert np.array_equal(matrix, loaded.matrix)

    def test_tier_compaction_uses_follower_positions_as_the_floor(
        self, stream
    ):
        dataset, retrofitter, store, factory = stream
        rng = np.random.default_rng(9)
        queries = rng.integers(-3, 4, size=(3, 16)).astype(np.float64)
        tier = ReplicatedServingTier(
            store.root, "rn", n_replicas=2,
            database=dataset.database, retrofitter=retrofitter,
            retrofitter_factory=factory, solve_iterations=60,
        )
        with tier:
            for key in (1, 2):
                tier.submit(make_delta(dataset, key))
            tier.flush(timeout=300)
            tier.sync_replicas()
            pruned = tier.compact()
            # every live follower passed both records: nothing retained
            assert pruned == 2
            assert store.base_version("rn") == 2
            assert store.list_embedding_set_deltas("rn") == []
            # reads keep working over the compacted store
            loaded, _, _ = store.load_embedding_set_versioned("rn")
            serial = ServingSession(loaded)
            serial.settle_indexes()
            assert tier.topk_batch(queries, 4) == serial.topk_batch(queries, 4)


@pytest.mark.stress
class TestFailover:
    def test_primary_sigkill_promotes_and_writes_resume(self, stream):
        dataset, retrofitter, store, factory = stream
        rng = np.random.default_rng(11)
        queries = rng.integers(-3, 4, size=(3, 16)).astype(np.float64)
        tier = ReplicatedServingTier(
            store.root, "rn", n_replicas=2,
            database=dataset.database, retrofitter=retrofitter,
            retrofitter_factory=factory, solve_iterations=60,
            heartbeat_interval=0.1,
        )
        with tier:
            first = tier.submit(make_delta(dataset, 1))
            assert first.wait(timeout=120) == 1
            os.kill(tier.primary_pid, signal.SIGKILL)
            # the very next write rides the failover: death detection,
            # election of the most-caught-up follower, promotion with the
            # front's database mirror, then the apply lands there
            second = tier.submit(make_delta(dataset, 2))
            assert second.wait(timeout=120) == 2
            assert tier.failovers == 1
            assert tier.last_failover_seconds is not None
            assert not tier.write_degraded
            # the promoted primary published to the same log: followers
            # and the store agree bit-for-bit
            version, matrix = tier.replica_matrix()
            loaded, _, loaded_version = store.load_embedding_set_versioned(
                "rn"
            )
            assert version == loaded_version == 2
            assert np.array_equal(matrix, loaded.matrix)
            serial = ServingSession(loaded)
            serial.settle_indexes()
            assert tier.topk_batch(
                queries, 5, min_version=2
            ) == serial.topk_batch(queries, 5)
            # the replacement follower restores the read pool
            deadline = time.monotonic() + 30.0
            while tier.live_followers < 2:
                assert time.monotonic() < deadline, "respawn never completed"
                time.sleep(0.05)
        assert tier.stats.writes_applied == 2

    def test_follower_sigkill_reads_survive_then_respawn(self, int_corpus):
        store, session, queries = int_corpus
        with ReplicatedServingTier(
            store.root, "int", n_replicas=2, heartbeat_interval=0.1
        ) as tier:
            want = session.topk_batch(queries, 8)
            assert tier.topk_batch(queries, 8) == want
            victim = tier._replicas[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            victim.process.join(timeout=10)
            # reads re-route to the surviving follower, answers unchanged
            assert tier.topk_batch(queries, 8) == want
            deadline = time.monotonic() + 30.0
            while tier.live_followers < 2:
                assert time.monotonic() < deadline, "respawn never completed"
                time.sleep(0.05)
            assert tier.stats.follower_respawns == 1
            assert tier.topk_batch(queries, 8) == want
