"""Crash-consistency of the store's write protocol under injected faults.

Every save walks temp-file → fsync → content-addressed rename → header
temp → fsync → atomic header rename (the commit point).  These tests kill
the writer at each seam — before any bytes, mid-artifact (torn npz), before
the matrix rename, mid-header (torn json), just before and just after the
commit rename — then reload with a *fresh* store handle and assert that
either the old or the new version comes back fully intact, never a hybrid.
"""

import numpy as np
import pytest

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.retrofit.combine import TextValueEmbeddingSet
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving.store import EmbeddingStore
from repro.util.faults import (
    FaultInjected,
    FaultPlan,
    FaultPoint,
    clear_fault_plan,
    install_fault_plan,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


@pytest.fixture()
def saved(tmdb_extraction, tmdb_base, tmp_path):
    """A committed v1 base artifact plus the v2 set a crashed save loses."""
    old = TextValueEmbeddingSet(
        tmdb_extraction, tmdb_base.matrix.copy(), name="PV"
    )
    new = TextValueEmbeddingSet(
        tmdb_extraction, tmdb_base.matrix * 2.0 + 1.0, name="PV"
    )
    store = EmbeddingStore(tmp_path / "store")
    store.save_embedding_set("pv", old, version=1)
    return store, old, new


def _reload(store: EmbeddingStore):
    """Reload through a fresh handle — no in-process state survives."""
    fresh = EmbeddingStore(store.root)
    embeddings, _, version = fresh.load_embedding_set_versioned("pv")
    return np.asarray(embeddings.matrix), version


#: Every seam at which a save can die while the previous version must
#: survive.  ``header_commit``/after is the one seam *past* the commit
#: point — there the new version must be the one that loads.
_PRE_COMMIT_FAULTS = [
    pytest.param(FaultPoint("store.artifact_write", "error"), id="before-artifact"),
    pytest.param(
        FaultPoint("store.artifact_write", "torn_write", tear_fraction=0.4),
        id="torn-artifact",
    ),
    pytest.param(FaultPoint("store.matrix_rename", "error"), id="before-rename"),
    pytest.param(
        FaultPoint("store.header_write", "torn_write", tear_fraction=0.6),
        id="torn-header",
    ),
    pytest.param(FaultPoint("store.header_commit", "error"), id="before-commit"),
]


class TestBaseArtifactCrashConsistency:
    @pytest.mark.parametrize("point", _PRE_COMMIT_FAULTS)
    def test_crash_before_commit_preserves_old_version(self, saved, point):
        store, old, new = saved
        install_fault_plan(FaultPlan([point]))
        with pytest.raises(FaultInjected):
            store.save_embedding_set("pv", new, version=2)
        clear_fault_plan()
        matrix, version = _reload(store)
        assert version == 1
        assert np.array_equal(matrix, old.matrix)

    def test_crash_after_commit_preserves_new_version(self, saved):
        store, _, new = saved
        install_fault_plan(
            FaultPlan([FaultPoint("store.header_commit", "error", when="after")])
        )
        with pytest.raises(FaultInjected):
            store.save_embedding_set("pv", new, version=2)
        clear_fault_plan()
        matrix, version = _reload(store)
        assert version == 2
        assert np.array_equal(matrix, new.matrix)

    @pytest.mark.parametrize("point", _PRE_COMMIT_FAULTS)
    def test_retried_save_lands_over_crash_leftovers(self, saved, point):
        """The temp files a dead writer leaves behind never block a retry."""
        store, _, new = saved
        install_fault_plan(FaultPlan([point]))
        with pytest.raises(FaultInjected):
            store.save_embedding_set("pv", new, version=2)
        clear_fault_plan()
        store.save_embedding_set("pv", new, version=2)
        matrix, version = _reload(store)
        assert version == 2
        assert np.array_equal(matrix, new.matrix)

    def test_torn_artifact_leaves_no_committed_garbage(self, saved):
        """The torn bytes stay under an uncommitted temp name only."""
        store, _, new = saved
        install_fault_plan(
            FaultPlan(
                [FaultPoint("store.artifact_write", "torn_write",
                            tear_fraction=0.3)]
            )
        )
        with pytest.raises(FaultInjected):
            store.save_embedding_set("pv", new, version=2)
        clear_fault_plan()
        leftovers = {path.name for path in store.root.glob("pv.*.tmp.npz")}
        assert leftovers  # the torn temp file is there...
        matrix, version = _reload(store)  # ...and the load never touches it
        assert version == 1


class TestSidecarRecovery:
    def test_torn_sidecar_extraction_recovers_on_retry(self, saved):
        store, old, _ = saved
        install_fault_plan(
            FaultPlan(
                [FaultPoint("store.sidecar_extract", "torn_write",
                            tear_fraction=0.5)]
            )
        )
        with pytest.raises(FaultInjected):
            store.open_matrix_readonly("pv")
        clear_fault_plan()
        mapped = store.open_matrix_readonly("pv")
        assert np.array_equal(np.asarray(mapped), old.matrix)

    def test_corrupted_sidecar_is_reextracted_on_load(self, saved):
        store, old, _ = saved
        store.open_matrix_readonly("pv")
        (sidecar,) = store.root.glob("pv.*.matrix.npy")
        with open(sidecar, "r+b") as handle:
            handle.truncate(7)  # mangle past any valid npy header
        mapped = EmbeddingStore(store.root).open_matrix_readonly("pv")
        assert np.array_equal(np.asarray(mapped), old.matrix)


# --------------------------------------------------------------------- #
# delta-record appends
# --------------------------------------------------------------------- #
@pytest.fixture()
def stream(tmp_path):
    dataset = generate_tmdb(num_movies=40, seed=8, embedding_dimension=16)
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    result = pipeline.run(iterations=120)
    retrofitter = pipeline.incremental_retrofitter(result)
    store = EmbeddingStore(tmp_path / "store")
    store.save_embedding_set("rn", result.embeddings)
    return dataset, retrofitter, store


def _apply_one(dataset, retrofitter, key):
    delta = DatabaseDelta()
    delta.insert("movies", {
        "id": 60_000 + key, "title": f"silent meridian {key}",
        "original_language": "english",
        "overview": "a quiet voyage across the meridian",
        "budget": 1e7, "revenue": 2e7, "popularity": 1.0,
        "release_year": 2026, "collection_id": None,
    })
    delta.insert("movie_countries", {
        "id": 60_000 + key, "movie_id": 60_000 + key, "country_id": 1,
    })
    return retrofitter.apply(dataset.database, delta)


class TestDeltaAppendCrashConsistency:
    @pytest.mark.parametrize(
        "point",
        [
            pytest.param(
                FaultPoint("store.delta_append", "error"), id="before-append"
            ),
            pytest.param(
                FaultPoint("store.artifact_write", "torn_write",
                           tear_fraction=0.4),
                id="torn-record",
            ),
        ],
    )
    def test_failed_append_leaves_the_chain_replayable(self, stream, point):
        dataset, retrofitter, store = stream
        first = _apply_one(dataset, retrofitter, 1)
        store.append_embedding_set_delta("rn", first)
        committed = retrofitter.embeddings.matrix.copy()

        second = _apply_one(dataset, retrofitter, 2)
        install_fault_plan(FaultPlan([point]))
        with pytest.raises(FaultInjected):
            store.append_embedding_set_delta("rn", second)
        clear_fault_plan()

        fresh = EmbeddingStore(store.root)
        assert fresh.latest_version("rn") == 1
        loaded, _, version = fresh.load_embedding_set_versioned("rn")
        assert version == 1
        assert np.allclose(loaded.matrix, committed)

        # the retried append applies exactly once and extends the chain
        store.append_embedding_set_delta("rn", second)
        loaded, _, version = EmbeddingStore(
            store.root
        ).load_embedding_set_versioned("rn")
        assert version == 2
        assert np.allclose(loaded.matrix, retrofitter.embeddings.matrix)
