"""Tests for the token prefix trie."""

from repro.text.trie import TokenTrie


class TestTokenTrie:
    def test_insert_and_contains(self):
        trie = TokenTrie()
        trie.insert(["bank"])
        trie.insert(["bank", "account"])
        assert trie.contains(["bank"])
        assert trie.contains(["bank", "account"])
        assert not trie.contains(["account"])
        assert not trie.contains(["bank", "robbery"])

    def test_len_counts_distinct_phrases(self):
        trie = TokenTrie()
        trie.insert(["a"])
        trie.insert(["a"])
        trie.insert(["a", "b"])
        assert len(trie) == 2

    def test_empty_insert_is_ignored(self):
        trie = TokenTrie()
        trie.insert([])
        assert len(trie) == 0

    def test_longest_match_prefers_longer_phrase(self):
        trie = TokenTrie()
        trie.insert(["bank"])
        trie.insert(["bank", "account"])
        length, phrase = trie.longest_match(["bank", "account", "number"])
        assert length == 2 and phrase == "bank_account"

    def test_longest_match_falls_back_to_shorter(self):
        trie = TokenTrie()
        trie.insert(["bank"])
        trie.insert(["bank", "account"])
        length, phrase = trie.longest_match(["bank", "robbery"])
        assert length == 1 and phrase == "bank"

    def test_longest_match_no_match(self):
        trie = TokenTrie()
        trie.insert(["bank"])
        assert trie.longest_match(["river"]) == (0, None)

    def test_longest_match_with_start_offset(self):
        trie = TokenTrie()
        trie.insert(["account"])
        length, phrase = trie.longest_match(["bank", "account"], start=1)
        assert length == 1 and phrase == "account"

    def test_partial_path_is_not_a_match(self):
        trie = TokenTrie()
        trie.insert(["new", "york", "city"])
        assert trie.longest_match(["new", "york"]) == (0, None)

    def test_custom_phrase_label(self):
        trie = TokenTrie()
        trie.insert(["los", "angeles"], phrase="Los_Angeles")
        length, phrase = trie.longest_match(["los", "angeles"])
        assert length == 2 and phrase == "Los_Angeles"

    def test_insert_many(self):
        trie = TokenTrie()
        trie.insert_many([["a"], ["b", "c"]])
        assert trie.contains(["a"]) and trie.contains(["b", "c"])
