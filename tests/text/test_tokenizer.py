"""Tests for normalisation, longest-match tokenisation and W0 initialisation."""

import numpy as np
import pytest

from repro.errors import TokenizationError
from repro.text.embedding import WordEmbedding
from repro.text.tokenizer import Tokenizer, normalise_text


@pytest.fixture()
def embedding():
    return WordEmbedding.from_dict({
        "bank": np.array([1.0, 0.0]),
        "account": np.array([0.0, 1.0]),
        "bank_account": np.array([10.0, 10.0]),
        "luc_besson": np.array([2.0, 2.0]),
        "movie": np.array([-1.0, 0.0]),
    })


class TestNormaliseText:
    def test_lowercase_and_split(self):
        assert normalise_text("Luc Besson") == ["luc", "besson"]

    def test_underscores_and_hyphens(self):
        assert normalise_text("bank_account-number") == ["bank", "account", "number"]

    def test_punctuation_removed(self):
        assert normalise_text("Hello, world!!") == ["hello", "world"]

    def test_numbers_kept(self):
        assert normalise_text("Blade Runner 2049") == ["blade", "runner", "2049"]

    def test_apostrophes(self):
        assert normalise_text("don't stop") == ["don't", "stop"]

    def test_empty(self):
        assert normalise_text("...") == []


class TestTokenizer:
    def test_requires_non_empty_vocabulary(self):
        with pytest.raises(TokenizationError):
            Tokenizer(WordEmbedding(4))

    def test_longest_phrase_preferred(self, embedding):
        tokenizer = Tokenizer(embedding)
        result = tokenizer.tokenize("Bank Account")
        assert result.matched_phrases == ["bank_account"]
        assert np.allclose(result.vector, [10.0, 10.0])

    def test_single_tokens_without_trie(self, embedding):
        tokenizer = Tokenizer(embedding, use_trie=False)
        result = tokenizer.tokenize("Bank Account")
        assert result.matched_phrases == ["bank", "account"]
        assert np.allclose(result.vector, [0.5, 0.5])

    def test_unmatched_tokens_are_reported(self, embedding):
        tokenizer = Tokenizer(embedding)
        result = tokenizer.tokenize("bank robbery movie")
        assert result.matched_phrases == ["bank", "movie"]
        assert result.unmatched_tokens == ["robbery"]
        assert 0.0 < result.coverage < 1.0

    def test_out_of_vocabulary_value(self, embedding):
        tokenizer = Tokenizer(embedding)
        result = tokenizer.tokenize("zorgblatt")
        assert result.is_out_of_vocabulary
        assert result.vector is None
        assert result.coverage == 0.0

    def test_initial_vector_is_null_for_oov(self, embedding):
        tokenizer = Tokenizer(embedding)
        assert np.allclose(tokenizer.initial_vector("zorgblatt"), 0.0)

    def test_centroid_of_multiple_matches(self, embedding):
        tokenizer = Tokenizer(embedding)
        vector = tokenizer.initial_vector("bank movie")
        assert np.allclose(vector, [0.0, 0.0])

    def test_vectorize_all(self, embedding):
        tokenizer = Tokenizer(embedding)
        matrix, oov = tokenizer.vectorize_all(["bank", "zorgblatt", "Luc Besson"])
        assert matrix.shape == (3, 2)
        assert list(oov) == [False, True, False]
        assert np.allclose(matrix[1], 0.0)
        assert np.allclose(matrix[2], [2.0, 2.0])

    def test_empty_text(self, embedding):
        tokenizer = Tokenizer(embedding)
        result = tokenizer.tokenize("")
        assert result.is_out_of_vocabulary
