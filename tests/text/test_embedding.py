"""Tests for the WordEmbedding store."""

import numpy as np
import pytest

from repro.errors import EmbeddingError
from repro.text.embedding import WordEmbedding, cosine


@pytest.fixture()
def embedding():
    emb = WordEmbedding(3)
    emb.add("cat", np.array([1.0, 0.0, 0.0]))
    emb.add("dog", np.array([0.9, 0.1, 0.0]))
    emb.add("car", np.array([0.0, 0.0, 1.0]))
    emb.add("Bank Account", np.array([0.0, 1.0, 0.0]))
    return emb


class TestConstruction:
    def test_dimension_must_be_positive(self):
        with pytest.raises(EmbeddingError):
            WordEmbedding(0)

    def test_add_checks_shape(self, embedding):
        with pytest.raises(EmbeddingError):
            embedding.add("bad", np.array([1.0, 2.0]))

    def test_add_rejects_empty_word(self, embedding):
        with pytest.raises(EmbeddingError):
            embedding.add("   ", np.zeros(3))

    def test_add_replaces_existing(self, embedding):
        embedding.add("cat", np.array([0.0, 0.0, 5.0]))
        assert embedding["cat"][2] == 5.0
        assert len(embedding) == 4

    def test_from_dict(self):
        emb = WordEmbedding.from_dict({"a": np.ones(2), "b": np.zeros(2)})
        assert len(emb) == 2 and emb.dimension == 2

    def test_from_empty_dict(self):
        with pytest.raises(EmbeddingError):
            WordEmbedding.from_dict({})


class TestLookup:
    def test_canonicalisation(self, embedding):
        assert "bank account" in embedding
        assert "BANK_ACCOUNT" in embedding
        assert np.allclose(embedding["bank_account"], [0.0, 1.0, 0.0])

    def test_get_returns_none_for_oov(self, embedding):
        assert embedding.get("unknown") is None
        with pytest.raises(KeyError):
            embedding["unknown"]

    def test_matrix_shape_and_order(self, embedding):
        matrix = embedding.matrix()
        assert matrix.shape == (4, 3)
        assert np.allclose(matrix[0], embedding["cat"])

    def test_vocabulary_order(self, embedding):
        assert embedding.vocabulary == ["cat", "dog", "car", "bank_account"]


class TestSimilarity:
    def test_cosine_similarity(self, embedding):
        assert embedding.cosine_similarity("cat", "dog") > 0.9
        assert embedding.cosine_similarity("cat", "car") == pytest.approx(0.0)

    def test_cosine_similarity_oov(self, embedding):
        with pytest.raises(EmbeddingError):
            embedding.cosine_similarity("cat", "unknown")

    def test_cosine_zero_vector(self):
        assert cosine(np.zeros(3), np.ones(3)) == 0.0

    def test_nearest(self, embedding):
        results = embedding.nearest(np.array([1.0, 0.05, 0.0]), k=2)
        assert [word for word, _ in results] == ["cat", "dog"]

    def test_nearest_checks_shape(self, embedding):
        with pytest.raises(EmbeddingError):
            embedding.nearest(np.ones(2))


class TestPersistence:
    def test_npz_roundtrip(self, embedding, tmp_path):
        path = tmp_path / "emb.npz"
        embedding.save(path)
        loaded = WordEmbedding.load(path)
        assert loaded.vocabulary == embedding.vocabulary
        assert np.allclose(loaded.matrix(), embedding.matrix())

    def test_text_format(self, tmp_path):
        path = tmp_path / "vectors.txt"
        path.write_text("cat 1.0 0.0\ndog 0.5 0.5\n", encoding="utf-8")
        emb = WordEmbedding.load_text_format(path)
        assert len(emb) == 2 and emb.dimension == 2

    def test_text_format_empty(self, tmp_path):
        path = tmp_path / "vectors.txt"
        path.write_text("", encoding="utf-8")
        with pytest.raises(EmbeddingError):
            WordEmbedding.load_text_format(path)


class TestNearestRegression:
    """The argpartition-served ``nearest`` must match the historical
    full-argsort scan (same words, same order, scores to float precision).

    One documented deviation: vectors with sub-epsilon (but nonzero) norm
    are clamped to score ~0 instead of their noise-direction cosine — see
    ``VectorIndex._score_rows``."""

    @staticmethod
    def legacy_nearest(embedding, vector, k):
        """The pre-index implementation: full scan + full argsort."""
        matrix = embedding.matrix()
        norms = np.linalg.norm(matrix, axis=1) * (np.linalg.norm(vector) + 1e-12)
        norms[norms == 0] = 1e-12
        scores = matrix @ vector / norms
        order = np.argsort(-scores)[:k]
        words = embedding.vocabulary
        return [(words[i], float(scores[i])) for i in order]

    @staticmethod
    def assert_same_results(actual, expected):
        """Same words in the same order; scores equal to float precision
        (the index uses a GEMM kernel, the legacy path a GEMV)."""
        assert [word for word, _ in actual] == [word for word, _ in expected]
        assert np.allclose(
            [score for _, score in actual], [score for _, score in expected]
        )

    def test_matches_legacy_path_on_random_vocabulary(self):
        rng = np.random.default_rng(42)
        embedding = WordEmbedding(12)
        for i in range(300):
            embedding.add(f"word{i}", rng.normal(size=12))
        embedding.add("null_vector", np.zeros(12))
        for _ in range(10):
            query = rng.normal(size=12)
            self.assert_same_results(
                embedding.nearest(query, k=15),
                self.legacy_nearest(embedding, query, 15),
            )

    def test_matches_legacy_path_for_k_exceeding_vocabulary(self):
        rng = np.random.default_rng(7)
        embedding = WordEmbedding(4)
        for i in range(5):
            embedding.add(f"w{i}", rng.normal(size=4))
        query = rng.normal(size=4)
        self.assert_same_results(
            embedding.nearest(query, k=50),
            self.legacy_nearest(embedding, query, 50),
        )

    def test_index_cache_invalidated_by_add(self):
        rng = np.random.default_rng(3)
        embedding = WordEmbedding(6)
        for i in range(10):
            embedding.add(f"w{i}", rng.normal(size=6))
        query = rng.normal(size=6)
        before = embedding.nearest(query, k=3)
        winner = np.asarray(query, dtype=np.float64) * 10.0
        embedding.add("newcomer", winner)
        after = embedding.nearest(query, k=3)
        assert after != before and after[0][0] == "newcomer"
