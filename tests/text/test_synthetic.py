"""Tests for the synthetic, concept-structured embedding space."""

import numpy as np
import pytest

from repro.errors import EmbeddingError
from repro.text.embedding import cosine
from repro.text.synthetic import SyntheticEmbeddingSpace


@pytest.fixture()
def space():
    space = SyntheticEmbeddingSpace(dimension=32, seed=3)
    space.add_concept("language/english", ["english"])
    space.add_concept("country/usa", ["usa", "american"], parent="language/english")
    space.add_concept("genre/horror", ["haunted", "scream", "nightmare"])
    space.add_background_words(["the", "of"])
    return space


class TestConstruction:
    def test_dimension_validation(self):
        with pytest.raises(EmbeddingError):
            SyntheticEmbeddingSpace(dimension=0)

    def test_duplicate_concept_rejected(self, space):
        with pytest.raises(EmbeddingError):
            space.add_concept("genre/horror")

    def test_unknown_parent_rejected(self, space):
        with pytest.raises(EmbeddingError):
            space.add_concept("x", parent="does/not/exist")

    def test_add_words_to_unknown_concept(self, space):
        with pytest.raises(EmbeddingError):
            space.add_words("does/not/exist", ["word"])

    def test_build_requires_words(self):
        with pytest.raises(EmbeddingError):
            SyntheticEmbeddingSpace(dimension=4).build()


class TestStructure:
    def test_words_cluster_around_their_concept(self, space):
        embedding = space.build()
        horror = [embedding[w] for w in ("haunted", "scream", "nightmare")]
        centroid = space.concept_centroid("genre/horror")
        for vector in horror:
            assert cosine(vector, centroid) > 0.7

    def test_within_cluster_similarity_exceeds_between(self, space):
        embedding = space.build()
        within = embedding.cosine_similarity("haunted", "scream")
        between = embedding.cosine_similarity("haunted", "american")
        assert within > between

    def test_child_concept_near_parent(self, space):
        child = space.concept_centroid("country/usa")
        parent = space.concept_centroid("language/english")
        assert cosine(child, parent) > 0.5

    def test_concept_of(self, space):
        assert space.concept_of("haunted") == "genre/horror"
        assert space.concept_of("the") == "__background__"
        assert space.concept_of("unknown") is None

    def test_determinism(self):
        def build():
            s = SyntheticEmbeddingSpace(dimension=16, seed=11)
            s.add_concept("c", ["a", "b"])
            return s.build()

        first, second = build(), build()
        assert np.allclose(first.matrix(), second.matrix())

    def test_different_seeds_differ(self):
        def build(seed):
            s = SyntheticEmbeddingSpace(dimension=16, seed=seed)
            s.add_concept("c", ["a", "b"])
            return s.build()

        assert not np.allclose(build(1).matrix(), build(2).matrix())

    def test_noise_scale_independent_of_dimension(self):
        distances = []
        for dim in (8, 128):
            s = SyntheticEmbeddingSpace(dimension=dim, seed=5)
            s.add_concept("c", [f"w{i}" for i in range(20)], spread=0.3)
            emb = s.build()
            centroid = s.concept_centroid("c")
            distance = np.mean([
                np.linalg.norm(emb[f"w{i}"] - centroid) for i in range(20)
            ])
            distances.append(distance)
        assert distances[1] == pytest.approx(distances[0], rel=0.5)

    def test_len_counts_words(self, space):
        assert len(space) == 8


class TestSyntheticCorpus:
    def test_deterministic_and_blockwise_consistent(self):
        from repro.text.synthetic import SyntheticCorpus

        corpus = SyntheticCorpus(
            5_000, dimension=12, n_clusters=10, n_categories=4,
            seed=7, block_size=512,
        )
        matrix = corpus.matrix()
        assert matrix.shape == (5_000, 12)
        again = SyntheticCorpus(
            5_000, dimension=12, n_clusters=10, n_categories=4,
            seed=7, block_size=512,
        ).matrix()
        np.testing.assert_array_equal(matrix, again)
        for start, block in corpus.iter_blocks():
            np.testing.assert_array_equal(
                block, matrix[start:start + block.shape[0]]
            )

    def test_zipfian_category_sizes(self):
        from repro.text.synthetic import SyntheticCorpus

        corpus = SyntheticCorpus(20_000, n_categories=6, seed=1)
        sizes = corpus.category_sizes()
        assert sum(sizes) == 20_000
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] > 2 * sizes[-1]  # head-heavy skew
        assert corpus.category_of(0) == "synthetic.cat00"
        assert corpus.category_of(19_999) == "synthetic.cat05"

    def test_lazy_value_strings(self):
        from repro.text.synthetic import SyntheticCorpus

        corpus = SyntheticCorpus(1_000_000, dimension=8, seed=2)
        # no million-string materialisation happened; lookups still work
        assert corpus.value_text(999_999) == "value 00999999"
        with pytest.raises(EmbeddingError):
            corpus.value_text(1_000_000)

    def test_queries_cluster_near_corpus(self):
        from repro.text.synthetic import SyntheticCorpus

        corpus = SyntheticCorpus(
            3_000, dimension=16, n_clusters=8, seed=4, block_size=1_000
        )
        queries = corpus.queries(10)
        assert queries.shape == (10, 16)
        matrix = corpus.matrix()
        sims = (queries / np.linalg.norm(queries, axis=1, keepdims=True)) @ (
            matrix / np.linalg.norm(matrix, axis=1, keepdims=True)
        ).T
        # clustered data: every query has close neighbours in the corpus
        assert sims.max(axis=1).min() > 0.7

    def test_validation(self):
        from repro.text.synthetic import SyntheticCorpus

        with pytest.raises(EmbeddingError):
            SyntheticCorpus(0)
        with pytest.raises(EmbeddingError):
            SyntheticCorpus(10, dimension=0)
        with pytest.raises(EmbeddingError):
            SyntheticCorpus(10, block_size=0)
