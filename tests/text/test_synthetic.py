"""Tests for the synthetic, concept-structured embedding space."""

import numpy as np
import pytest

from repro.errors import EmbeddingError
from repro.text.embedding import cosine
from repro.text.synthetic import SyntheticEmbeddingSpace


@pytest.fixture()
def space():
    space = SyntheticEmbeddingSpace(dimension=32, seed=3)
    space.add_concept("language/english", ["english"])
    space.add_concept("country/usa", ["usa", "american"], parent="language/english")
    space.add_concept("genre/horror", ["haunted", "scream", "nightmare"])
    space.add_background_words(["the", "of"])
    return space


class TestConstruction:
    def test_dimension_validation(self):
        with pytest.raises(EmbeddingError):
            SyntheticEmbeddingSpace(dimension=0)

    def test_duplicate_concept_rejected(self, space):
        with pytest.raises(EmbeddingError):
            space.add_concept("genre/horror")

    def test_unknown_parent_rejected(self, space):
        with pytest.raises(EmbeddingError):
            space.add_concept("x", parent="does/not/exist")

    def test_add_words_to_unknown_concept(self, space):
        with pytest.raises(EmbeddingError):
            space.add_words("does/not/exist", ["word"])

    def test_build_requires_words(self):
        with pytest.raises(EmbeddingError):
            SyntheticEmbeddingSpace(dimension=4).build()


class TestStructure:
    def test_words_cluster_around_their_concept(self, space):
        embedding = space.build()
        horror = [embedding[w] for w in ("haunted", "scream", "nightmare")]
        centroid = space.concept_centroid("genre/horror")
        for vector in horror:
            assert cosine(vector, centroid) > 0.7

    def test_within_cluster_similarity_exceeds_between(self, space):
        embedding = space.build()
        within = embedding.cosine_similarity("haunted", "scream")
        between = embedding.cosine_similarity("haunted", "american")
        assert within > between

    def test_child_concept_near_parent(self, space):
        child = space.concept_centroid("country/usa")
        parent = space.concept_centroid("language/english")
        assert cosine(child, parent) > 0.5

    def test_concept_of(self, space):
        assert space.concept_of("haunted") == "genre/horror"
        assert space.concept_of("the") == "__background__"
        assert space.concept_of("unknown") is None

    def test_determinism(self):
        def build():
            s = SyntheticEmbeddingSpace(dimension=16, seed=11)
            s.add_concept("c", ["a", "b"])
            return s.build()

        first, second = build(), build()
        assert np.allclose(first.matrix(), second.matrix())

    def test_different_seeds_differ(self):
        def build(seed):
            s = SyntheticEmbeddingSpace(dimension=16, seed=seed)
            s.add_concept("c", ["a", "b"])
            return s.build()

        assert not np.allclose(build(1).matrix(), build(2).matrix())

    def test_noise_scale_independent_of_dimension(self):
        distances = []
        for dim in (8, 128):
            s = SyntheticEmbeddingSpace(dimension=dim, seed=5)
            s.add_concept("c", [f"w{i}" for i in range(20)], spread=0.3)
            emb = s.build()
            centroid = s.concept_centroid("c")
            distance = np.mean([
                np.linalg.norm(emb[f"w{i}"] - centroid) for i in range(20)
            ])
            distances.append(distance)
        assert distances[1] == pytest.approx(distances[0], rel=0.5)

    def test_len_counts_words(self, space):
        assert len(space) == 8
