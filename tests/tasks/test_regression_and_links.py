"""Tests for the regression and link-prediction tasks."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.tasks.link_prediction import LinkPredictionTask
from repro.tasks.regression import RegressionTask


def linear_regression_data(n=260, dim=5, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, dim))
    weights = np.linspace(1.0, 2.0, dim)
    targets = features @ weights * 1e6 + 5e6
    return features, targets


def link_data(n_entities=30, dim=8, seed=0):
    """Pairs are positive when source and target share the same latent group."""
    rng = np.random.default_rng(seed)
    groups = rng.integers(0, 3, n_entities)
    centres = rng.normal(0.0, 2.0, (3, dim))
    vectors = centres[groups] + rng.normal(0.0, 0.3, (n_entities, dim))
    sources, targets, labels = [], [], []
    for _ in range(400):
        i, j = rng.integers(0, n_entities, 2)
        sources.append(vectors[i])
        targets.append(vectors[j])
        labels.append(1.0 if groups[i] == groups[j] else 0.0)
    return np.array(sources), np.array(targets), np.array(labels)


class TestRegressionTask:
    def test_requires_hidden_layer(self):
        with pytest.raises(ExperimentError):
            RegressionTask(hidden_units=())

    def test_requires_two_targets(self):
        task = RegressionTask(hidden_units=(4,), epochs=1)
        with pytest.raises(ExperimentError):
            task.train_and_evaluate(
                np.zeros((1, 2)), np.zeros(1), np.zeros((1, 2)), np.zeros(1)
            )

    def test_learns_linear_target(self):
        features, targets = linear_regression_data()
        task = RegressionTask(hidden_units=(32, 32), dropout=0.0, epochs=120,
                              seed=0)
        outcome = task.train_and_evaluate(
            features[:200], targets[:200], features[200:], targets[200:]
        )
        # predicting the mean would give a normalised MAE around 0.8
        assert outcome.normalised_mae < 0.6
        assert outcome.mae > 0  # rescaled to original units (dollars)

    def test_mae_in_original_units(self):
        features, targets = linear_regression_data(n=120)
        task = RegressionTask(hidden_units=(8,), dropout=0.0, epochs=10)
        outcome = task.train_and_evaluate(
            features[:100], targets[:100], features[100:], targets[100:]
        )
        assert outcome.mae == pytest.approx(
            outcome.normalised_mae * targets[:100].std(), rel=0.05
        )

    def test_constant_targets_do_not_crash(self):
        features = np.random.default_rng(0).normal(size=(30, 3))
        targets = np.full(30, 7.0)
        task = RegressionTask(hidden_units=(4,), epochs=3)
        outcome = task.train_and_evaluate(features[:20], targets[:20],
                                          features[20:], targets[20:])
        assert np.isfinite(outcome.mae)


class TestLinkPredictionTask:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            LinkPredictionTask(hidden_units=0)

    def test_shape_checks(self):
        task = LinkPredictionTask(hidden_units=4, epochs=1)
        with pytest.raises(ExperimentError):
            task.train_and_evaluate(
                np.zeros((4, 3)), np.zeros((4, 2)), np.zeros(4),
                np.zeros((2, 3)), np.zeros((2, 3)), np.zeros(2),
            )
        with pytest.raises(ExperimentError):
            task.train_and_evaluate(
                np.zeros((4, 3)), np.zeros((4, 3)), np.zeros(3),
                np.zeros((2, 3)), np.zeros((2, 3)), np.zeros(2),
            )

    def test_learns_group_membership_links(self):
        sources, targets, labels = link_data()
        task = LinkPredictionTask(hidden_units=32, epochs=80, seed=0)
        outcome = task.train_and_evaluate(
            sources[:300], targets[:300], labels[:300],
            sources[300:], targets[300:], labels[300:],
        )
        assert outcome.accuracy > 0.7
        assert len(outcome.train_loss) == 80
        assert outcome.train_loss[-1] < outcome.train_loss[0]
