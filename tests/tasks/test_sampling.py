"""Tests for sampling helpers and trial statistics."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.tasks.sampling import (
    TrialStatistics,
    balanced_binary_sample,
    normalise_features,
    stratified_sample,
    train_test_split,
)


class TestTrialStatistics:
    def test_mean_std_min_max(self):
        stats = TrialStatistics("demo")
        for value in (0.5, 0.7, 0.9):
            stats.add(value)
        assert stats.count == 3
        assert stats.mean == pytest.approx(0.7)
        assert stats.std == pytest.approx(np.std([0.5, 0.7, 0.9]))
        assert stats.minimum == 0.5 and stats.maximum == 0.9
        assert stats.summary()["n"] == 3.0

    def test_empty_statistics_raise(self):
        stats = TrialStatistics("empty")
        with pytest.raises(ExperimentError):
            _ = stats.mean
        with pytest.raises(ExperimentError):
            _ = stats.std


class TestTrainTestSplit:
    def test_sizes(self, rng):
        features = np.arange(20).reshape(10, 2)
        targets = np.arange(10)
        x_train, y_train, x_test, y_test = train_test_split(
            features, targets, test_fraction=0.3, rng=rng
        )
        assert len(x_test) == 3 and len(x_train) == 7
        assert len(y_test) == 3 and len(y_train) == 7

    def test_rows_stay_aligned(self, rng):
        features = np.arange(10).reshape(10, 1)
        targets = np.arange(10) * 10
        x_train, y_train, _, _ = train_test_split(features, targets, 0.2, rng)
        assert np.all(y_train == x_train.ravel() * 10)

    def test_validation(self, rng):
        with pytest.raises(ExperimentError):
            train_test_split(np.zeros((3, 1)), np.zeros(3), 0.0, rng)
        with pytest.raises(ExperimentError):
            train_test_split(np.zeros((3, 1)), np.zeros(2), 0.5, rng)


class TestBalancedBinarySample:
    def test_balanced_output(self, rng):
        indices, labels = balanced_binary_sample(
            np.arange(0, 50), np.arange(50, 100), 20, rng
        )
        assert len(indices) == 40
        assert labels.sum() == 20

    def test_labels_match_source_pools(self, rng):
        positives = np.arange(0, 10)
        negatives = np.arange(100, 110)
        indices, labels = balanced_binary_sample(positives, negatives, 5, rng)
        assert np.all(indices[labels == 1] < 10)
        assert np.all(indices[labels == 0] >= 100)

    def test_sampling_with_replacement_when_pool_small(self, rng):
        indices, labels = balanced_binary_sample(
            np.array([1]), np.array([2, 3]), 10, rng
        )
        assert len(indices) == 20

    def test_validation(self, rng):
        with pytest.raises(ExperimentError):
            balanced_binary_sample(np.array([]), np.array([1]), 5, rng)
        with pytest.raises(ExperimentError):
            balanced_binary_sample(np.array([1]), np.array([2]), 0, rng)


class TestStratifiedSample:
    def test_preserves_proportions_roughly(self, rng):
        labels = np.array([0] * 80 + [1] * 20)
        sample = stratified_sample(labels, 50, rng)
        share = labels[sample].mean()
        assert 0.1 <= share <= 0.35

    def test_all_classes_present(self, rng):
        labels = np.array([0] * 95 + [1] * 5)
        sample = stratified_sample(labels, 20, rng)
        assert set(labels[sample]) == {0, 1}

    def test_validation(self, rng):
        with pytest.raises(ExperimentError):
            stratified_sample(np.array([]), 5, rng)
        with pytest.raises(ExperimentError):
            stratified_sample(np.array([1, 2]), 0, rng)


class TestNormaliseFeatures:
    def test_rows_unit_length(self):
        features = np.array([[3.0, 4.0], [1.0, 0.0]])
        normalised = normalise_features(features)
        assert np.allclose(np.linalg.norm(normalised, axis=1), 1.0)

    def test_zero_rows_preserved(self):
        normalised = normalise_features(np.zeros((2, 3)))
        assert np.allclose(normalised, 0.0)
