"""Tests for the binary classification and category imputation tasks."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.tasks.classification import BinaryClassificationTask
from repro.tasks.imputation import CategoryImputationTask, one_hot


def separable_binary(n=160, dim=6, seed=0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, n)
    direction = np.zeros(dim)
    direction[0] = 1.0
    features = rng.normal(0.0, 0.4, (n, dim)) + np.outer(2 * labels - 1, direction)
    return features, labels


def separable_multiclass(n=200, n_classes=4, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_classes, n)
    centres = rng.normal(0.0, 2.0, (n_classes, dim))
    features = centres[labels] + rng.normal(0.0, 0.4, (n, dim))
    return features, labels


class TestOneHot:
    def test_encoding(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        assert encoded.shape == (3, 3)
        assert np.allclose(encoded.sum(axis=1), 1.0)
        assert encoded[1, 2] == 1.0

    def test_out_of_range(self):
        with pytest.raises(ExperimentError):
            one_hot(np.array([0, 3]), 3)


class TestBinaryClassificationTask:
    def test_requires_hidden_layer(self):
        with pytest.raises(ExperimentError):
            BinaryClassificationTask(hidden_units=())

    def test_learns_separable_problem(self):
        features, labels = separable_binary()
        task = BinaryClassificationTask(hidden_units=(16,), epochs=60,
                                        dropout=0.0, seed=0)
        outcome = task.train_and_evaluate(
            features[:100], labels[:100], features[100:], labels[100:]
        )
        assert outcome.accuracy > 0.85
        assert 0.0 <= outcome.precision <= 1.0
        assert 0.0 <= outcome.recall <= 1.0
        assert outcome.history.epochs > 0

    def test_length_mismatch_rejected(self):
        features, labels = separable_binary(40)
        task = BinaryClassificationTask(hidden_units=(4,), epochs=2)
        with pytest.raises(ExperimentError):
            task.train_and_evaluate(features, labels[:-1], features, labels)
        with pytest.raises(ExperimentError):
            task.train_and_evaluate(features, labels, features[:-1], labels)

    def test_network_architecture(self):
        task = BinaryClassificationTask(hidden_units=(32, 16))
        network = task.build_network()
        from repro.ml.layers import Dense
        dense_layers = [l for l in network.layers if isinstance(l, Dense)]
        assert [l.units for l in dense_layers] == [32, 16, 1]


class TestCategoryImputationTask:
    def test_requires_two_classes(self):
        task = CategoryImputationTask(hidden_units=(8,))
        with pytest.raises(ExperimentError):
            task.build_network(1)

    def test_learns_separable_multiclass(self):
        features, labels = separable_multiclass()
        task = CategoryImputationTask(hidden_units=(24,), epochs=80,
                                      dropout=0.0, seed=1)
        outcome = task.train_and_evaluate(
            features[:140], labels[:140], features[140:], labels[140:]
        )
        assert outcome.accuracy > 0.8
        assert outcome.n_classes == 4

    def test_n_classes_inferred(self):
        features, labels = separable_multiclass(n=80, n_classes=3)
        task = CategoryImputationTask(hidden_units=(8,), epochs=5)
        outcome = task.train_and_evaluate(
            features[:60], labels[:60], features[60:], labels[60:]
        )
        assert outcome.n_classes == 3
