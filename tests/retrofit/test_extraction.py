"""Tests for text-value / relationship extraction (paper §3.2, §3.3)."""

import pytest

from repro.db.database import Database, build_table_schema
from repro.db.schema import ForeignKey
from repro.db.types import ColumnType
from repro.errors import ExtractionError
from repro.retrofit.extraction import extract_text_values


@pytest.fixture()
def toy_extraction(toy_dataset):
    return extract_text_values(toy_dataset.database)


class TestRecordsAndCategories:
    def test_one_record_per_unique_value_per_column(self, toy_extraction):
        assert len(toy_extraction) == 5  # 2 countries + 3 movies
        assert set(toy_extraction.categories) == {"countries.name", "movies.title"}

    def test_indices_are_dense_and_unique(self, toy_extraction):
        indices = [record.index for record in toy_extraction.records]
        assert indices == list(range(len(toy_extraction)))

    def test_index_of_lookup(self, toy_extraction):
        index = toy_extraction.index_of("movies.title", "amelie")
        assert toy_extraction.records[index].text == "amelie"
        assert toy_extraction.has_value("movies.title", "amelie")
        assert not toy_extraction.has_value("movies.title", "matrix")
        with pytest.raises(ExtractionError):
            toy_extraction.index_of("movies.title", "matrix")

    def test_same_value_in_two_columns_gets_two_records(self):
        db = Database()
        db.create_table(build_table_schema(
            "a", [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
            primary_key="id"))
        db.create_table(build_table_schema(
            "b", [("id", ColumnType.INTEGER), ("label", ColumnType.TEXT)],
            primary_key="id"))
        db.insert("a", {"id": 1, "name": "amelie"})
        db.insert("b", {"id": 1, "label": "amelie"})
        extraction = extract_text_values(db)
        assert len(extraction) == 2

    def test_duplicate_value_in_one_column_gets_one_record(self):
        db = Database()
        db.create_table(build_table_schema(
            "a", [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
            primary_key="id"))
        db.insert("a", {"id": 1, "name": "amelie"})
        db.insert("a", {"id": 2, "name": "amelie"})
        extraction = extract_text_values(db)
        assert len(extraction) == 1

    def test_records_of_category(self, toy_extraction):
        records = toy_extraction.records_of_category("movies.title")
        assert {r.text for r in records} == {"amelie", "inception", "godfather"}
        with pytest.raises(ExtractionError):
            toy_extraction.records_of_category("nope")


class TestRelationGroups:
    def test_fk_relation_pairs(self, toy_extraction):
        group = toy_extraction.relation_group(
            "movies.title->countries.name[fk:country_id]"
        )
        texts = {
            (toy_extraction.records[i].text, toy_extraction.records[j].text)
            for i, j in group.pairs
        }
        assert texts == {
            ("amelie", "france"), ("inception", "usa"), ("godfather", "usa"),
        }

    def test_relation_group_lookup_error(self, toy_extraction):
        with pytest.raises(ExtractionError):
            toy_extraction.relation_group("nope")

    def test_inverted_group(self, toy_extraction):
        group = toy_extraction.relation_groups[0]
        inverted = group.inverted()
        assert inverted.pairs == [(j, i) for i, j in group.pairs]
        assert inverted.source_category == group.target_category

    def test_relation_groups_of(self, toy_extraction):
        amelie = toy_extraction.index_of("movies.title", "amelie")
        groups = toy_extraction.relation_groups_of(amelie)
        assert len(groups) == 1

    def test_relation_count(self, toy_extraction):
        assert toy_extraction.relation_count() == 3

    def test_row_and_m2m_relations_in_tmdb(self, tmdb_extraction):
        kinds = {group.kind for group in tmdb_extraction.relation_groups}
        assert kinds == {"row", "fk", "m2m"}

    def test_tmdb_pairs_reference_valid_indices(self, tmdb_extraction):
        n = len(tmdb_extraction)
        for group in tmdb_extraction.relation_groups:
            for i, j in group.pairs:
                assert 0 <= i < n and 0 <= j < n


class TestExclusions:
    def test_exclude_columns_removes_category_and_relations(self, small_tmdb):
        full = extract_text_values(small_tmdb.database)
        reduced = extract_text_values(
            small_tmdb.database, exclude_columns=("movies.original_language",)
        )
        assert "movies.original_language" in full.categories
        assert "movies.original_language" not in reduced.categories
        assert len(reduced) < len(full)
        for group in reduced.relation_groups:
            assert group.source_category != "movies.original_language"
            assert group.target_category != "movies.original_language"

    def test_exclude_relations_keeps_categories(self, small_tmdb):
        excluded = [
            spec.name for spec in small_tmdb.database.relationships()
            if "genres.name" in (str(spec.source), str(spec.target))
        ]
        reduced = extract_text_values(
            small_tmdb.database, exclude_relations=excluded
        )
        assert "genres.name" in reduced.categories
        for group in reduced.relation_groups:
            assert "genres.name" not in (group.source_category, group.target_category)

    def test_min_relation_pairs_filter(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database, min_relation_pairs=10)
        assert extraction.relation_groups == []


class TestFkJoinCorrectness:
    def test_fk_relation_via_non_pk_column(self):
        db = Database()
        db.create_table(build_table_schema(
            "languages",
            [("code", ColumnType.TEXT), ("label", ColumnType.TEXT)],
        ))
        db.create_table(build_table_schema(
            "movies",
            [("id", ColumnType.INTEGER), ("title", ColumnType.TEXT),
             ("lang_code", ColumnType.TEXT)],
            primary_key="id",
            foreign_keys=[ForeignKey("lang_code", "languages", "code")],
        ))
        db.insert("languages", {"code": "en", "label": "english"})
        db.insert("movies", {"id": 1, "title": "inception", "lang_code": "en"})
        extraction = extract_text_values(db)
        names = {group.name for group in extraction.relation_groups}
        assert "movies.title->languages.label[fk:lang_code]" in names
