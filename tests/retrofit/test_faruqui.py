"""Tests for the Faruqui et al. retrofitting baseline (MF)."""

import numpy as np
import pytest

from repro.errors import RetrofitError
from repro.retrofit.extraction import extract_text_values
from repro.retrofit.faruqui import edges_from_extraction, faruqui_retrofit
from repro.retrofit.loss import faruqui_loss


class TestEdgesFromExtraction:
    def test_edges_are_undirected_and_deduplicated(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        edges = edges_from_extraction(extraction)
        assert len(edges) == 3
        assert all(i < j for i, j in edges)

    def test_category_edges_optional(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        with_categories = edges_from_extraction(extraction, include_categories=True)
        without = edges_from_extraction(extraction)
        assert len(with_categories) > len(without)


class TestFaruquiRetrofit:
    def test_no_edges_returns_copy(self):
        base = np.random.default_rng(0).normal(size=(4, 3))
        matrix, report = faruqui_retrofit(base, [])
        assert np.allclose(matrix, base)
        assert report.iterations == 0

    def test_input_validation(self):
        base = np.zeros((3, 2))
        with pytest.raises(RetrofitError):
            faruqui_retrofit(base.ravel(), [(0, 1)])
        with pytest.raises(RetrofitError):
            faruqui_retrofit(base, [(0, 7)])

    def test_connected_words_move_towards_each_other(self):
        base = np.array([[1.0, 0.0], [0.0, 1.0], [5.0, 5.0]])
        matrix, _ = faruqui_retrofit(base, [(0, 1)], iterations=20)
        before = np.linalg.norm(base[0] - base[1])
        after = np.linalg.norm(matrix[0] - matrix[1])
        assert after < before
        # the isolated word must not move at all
        assert np.allclose(matrix[2], base[2])

    def test_loss_does_not_increase(self):
        rng = np.random.default_rng(1)
        base = rng.normal(size=(6, 4))
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]
        degrees = np.zeros(6)
        for i, j in edges:
            degrees[i] += 1
            degrees[j] += 1
        alpha = np.ones(6)
        beta = 1.0 / degrees
        undirected = edges + [(j, i) for i, j in edges]
        previous = faruqui_loss(base, base, undirected, alpha, beta)
        matrix = base
        for _ in range(5):
            matrix, _ = faruqui_retrofit(base, edges, iterations=1) if matrix is base \
                else faruqui_retrofit(matrix, edges, iterations=1)
        final = faruqui_loss(matrix, base, undirected, alpha, beta)
        assert final <= previous

    def test_early_stopping(self):
        base = np.array([[1.0, 0.0], [1.0, 0.0]])
        matrix, report = faruqui_retrofit(base, [(0, 1)], iterations=50)
        assert report.iterations < 50
        assert np.allclose(matrix, base)

    def test_alpha_dominates_when_large(self):
        base = np.array([[1.0, 0.0], [0.0, 1.0]])
        tight, _ = faruqui_retrofit(base, [(0, 1)], alpha=100.0, iterations=20)
        loose, _ = faruqui_retrofit(base, [(0, 1)], alpha=0.01, iterations=20)
        drift_tight = np.linalg.norm(tight - base)
        drift_loose = np.linalg.norm(loose - base)
        assert drift_tight < drift_loose

    def test_on_tmdb_extraction(self, tmdb_extraction, tmdb_base):
        edges = edges_from_extraction(tmdb_extraction)
        matrix, report = faruqui_retrofit(tmdb_base.matrix, edges, iterations=5)
        assert matrix.shape == tmdb_base.matrix.shape
        assert np.all(np.isfinite(matrix))
        assert report.iterations == 5
