"""Tests for normalisation, concatenation and the TextValueEmbeddingSet."""

import numpy as np
import pytest

from repro.errors import RetrofitError
from repro.retrofit.combine import (
    TextValueEmbeddingSet,
    concatenate_embeddings,
    normalise_rows,
)
from repro.retrofit.extraction import extract_text_values
from repro.retrofit.initialization import initialise_vectors


@pytest.fixture()
def toy_set(toy_dataset):
    extraction = extract_text_values(toy_dataset.database)
    base = initialise_vectors(extraction, toy_dataset.embedding)
    return TextValueEmbeddingSet(extraction, base.matrix, name="PV")


class TestNormaliseRows:
    def test_unit_norms(self):
        matrix = np.array([[3.0, 4.0], [0.0, 2.0]])
        normalised = normalise_rows(matrix)
        assert np.allclose(np.linalg.norm(normalised, axis=1), 1.0)

    def test_zero_rows_stay_zero(self):
        matrix = np.array([[0.0, 0.0], [1.0, 0.0]])
        normalised = normalise_rows(matrix)
        assert np.allclose(normalised[0], 0.0)

    def test_original_untouched(self):
        matrix = np.array([[3.0, 4.0]])
        normalise_rows(matrix)
        assert np.allclose(matrix, [[3.0, 4.0]])


class TestConcatenate:
    def test_dimensions_add_up(self):
        left = np.ones((4, 3))
        right = np.ones((4, 2))
        combined = concatenate_embeddings(left, right)
        assert combined.shape == (4, 5)

    def test_row_mismatch_rejected(self):
        with pytest.raises(RetrofitError):
            concatenate_embeddings(np.ones((3, 2)), np.ones((4, 2)))

    def test_normalisation_balances_scales(self):
        left = 100.0 * np.ones((2, 2))
        right = 0.01 * np.ones((2, 2))
        combined = concatenate_embeddings(left, right, normalise=True)
        assert np.allclose(
            np.linalg.norm(combined[:, :2], axis=1),
            np.linalg.norm(combined[:, 2:], axis=1),
        )

    def test_without_normalisation(self):
        left = np.array([[2.0, 0.0]])
        right = np.array([[0.0, 3.0]])
        combined = concatenate_embeddings(left, right, normalise=False)
        assert np.allclose(combined, [[2.0, 0.0, 0.0, 3.0]])


class TestTextValueEmbeddingSet:
    def test_row_count_validated(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        with pytest.raises(RetrofitError):
            TextValueEmbeddingSet(extraction, np.zeros((2, 4)))

    def test_vector_lookup(self, toy_set, toy_dataset):
        vector = toy_set.vector_for("countries.name", "france")
        assert np.allclose(vector, toy_dataset.embedding["france"])
        assert toy_set.has_value("countries.name", "france")
        assert not toy_set.has_value("countries.name", "spain")

    def test_vectors_for_many(self, toy_set):
        matrix = toy_set.vectors_for("movies.title", ["amelie", "godfather"])
        assert matrix.shape == (2, toy_set.dimension)

    def test_category_matrix(self, toy_set):
        texts, matrix = toy_set.category_matrix("movies.title")
        assert len(texts) == 3 and matrix.shape[0] == 3

    def test_nearest_within_category(self, toy_set, toy_dataset):
        query = toy_dataset.embedding["usa"]
        results = toy_set.nearest(query, k=2, category="movies.title")
        assert len(results) == 2
        assert all(category == "movies.title" for category, _, _ in results)
        scores = [score for _, _, score in results]
        assert scores == sorted(scores, reverse=True)

    def test_nearest_over_all_categories(self, toy_set, toy_dataset):
        results = toy_set.nearest(toy_dataset.embedding["france"], k=1)
        assert results[0][1] == "france"

    def test_concatenated_with(self, toy_set):
        other = np.ones((len(toy_set), 2))
        combined = toy_set.concatenated_with(other, name="PV+X")
        assert combined.dimension == toy_set.dimension + 2
        assert combined.name == "PV+X"
        assert len(combined) == len(toy_set)


class TestIndexInvalidation:
    def test_matrix_reassignment_drops_cached_indexes(self):
        from repro.retrofit.extraction import ExtractionResult, TextValueRecord

        extraction = ExtractionResult(
            records=[
                TextValueRecord(0, "a", "t", "c"),
                TextValueRecord(1, "b", "t", "c"),
            ],
            categories={"t.c": [0, 1]},
            relation_groups=[],
        )
        embeddings = TextValueEmbeddingSet(extraction, np.eye(2), "x")
        assert embeddings.nearest(np.array([1.0, 0.0]), 1)[0][1] == "a"
        embeddings.matrix = np.asarray([[0.0, 1.0], [1.0, 0.0]], dtype=np.float64)
        assert embeddings.nearest(np.array([1.0, 0.0]), 1)[0][1] == "b"
