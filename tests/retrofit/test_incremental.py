"""Tests for incremental maintenance of retrofitted embeddings."""

import numpy as np
import pytest

from repro.datasets import build_toy_movie_database
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.incremental import full_and_incremental_agree
from repro.retrofit.pipeline import RetroPipeline


@pytest.fixture()
def toy_pipeline():
    # a fresh toy dataset per test because the database is mutated
    dataset = build_toy_movie_database()
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    return dataset, pipeline, pipeline.run()


def add_movie(dataset, title="matrix", country_id=2):
    dataset.database.insert("movies", {
        "id": 10 + country_id, "title": title, "country_id": country_id,
    })


class TestIncrementalRetrofitter:
    def test_new_value_receives_vector(self, toy_pipeline):
        dataset, pipeline, result = toy_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        add_movie(dataset, "matrix", 2)
        update = retrofitter.update(dataset.database)
        assert update.embeddings.has_value("movies.title", "matrix")
        vector = update.embeddings.vector_for("movies.title", "matrix")
        assert np.linalg.norm(vector) > 0.0

    def test_existing_vectors_are_frozen(self, toy_pipeline):
        dataset, pipeline, result = toy_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        add_movie(dataset, "matrix", 2)
        update = retrofitter.update(dataset.database)
        for record in result.extraction.records:
            old = result.embeddings.vector_for(record.category, record.text)
            new = update.embeddings.vector_for(record.category, record.text)
            assert np.allclose(old, new)

    def test_new_and_reused_bookkeeping(self, toy_pipeline):
        dataset, pipeline, result = toy_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        add_movie(dataset, "matrix", 2)
        update = retrofitter.update(dataset.database)
        assert len(update.new_indices) == 1
        assert len(update.reused_indices) == len(result.extraction)

    def test_new_vector_close_to_related_country(self, toy_pipeline):
        dataset, pipeline, result = toy_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        add_movie(dataset, "matrix", 2)
        update = retrofitter.update(dataset.database)
        matrix_vector = update.embeddings.vector_for("movies.title", "matrix")
        usa = update.embeddings.vector_for("countries.name", "usa")
        france = update.embeddings.vector_for("countries.name", "france")

        def cos(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

        assert cos(matrix_vector, usa) > cos(matrix_vector, france)

    def test_agreement_with_full_rerun(self, toy_pipeline):
        dataset, pipeline, result = toy_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        add_movie(dataset, "matrix", 2)
        update = retrofitter.update(dataset.database)
        full = pipeline.run()
        assert full_and_incremental_agree(full.embeddings, update.embeddings)

    def test_successive_updates(self, toy_pipeline):
        dataset, pipeline, result = toy_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        add_movie(dataset, "matrix", 2)
        first = retrofitter.update(dataset.database)
        add_movie(dataset, "ratatouille", 1)
        second = retrofitter.update(dataset.database)
        assert second.embeddings.has_value("movies.title", "matrix")
        assert second.embeddings.has_value("movies.title", "ratatouille")
        assert len(second.new_indices) == 1
        # the vector solved in the first update is reused untouched
        assert np.allclose(
            first.embeddings.vector_for("movies.title", "matrix"),
            second.embeddings.vector_for("movies.title", "matrix"),
        )


class TestDeltaPipeline:
    """The delta fast path: IncrementalRetrofitter.apply."""

    def _tmdb_setup(self, method, hyperparams):
        from repro.datasets import generate_tmdb
        dataset = generate_tmdb(num_movies=60, seed=7, embedding_dimension=16)
        pipeline = RetroPipeline(
            dataset.database, dataset.embedding,
            hyperparams=hyperparams, method=method,
        )
        result = pipeline.run(iterations=200)
        return dataset, pipeline, result

    def _movie_delta(self, key=0):
        from repro.db.delta import DatabaseDelta
        delta = DatabaseDelta()
        delta.insert("persons", {"id": 80_000 + key, "name": f"fresh director {key}"})
        delta.insert("movies", {
            "id": 80_000 + key, "title": f"uncharted nebula {key}",
            "original_language": "english",
            "overview": "an epic space voyage with a fearless crew",
            "budget": 1e7, "revenue": 3e7, "popularity": 2.0,
            "release_year": 2026, "collection_id": None,
        })
        delta.insert("movie_directors", {
            "id": 80_000 + key, "movie_id": 80_000 + key, "person_id": 80_000 + key,
        })
        delta.insert("movie_countries", {
            "id": 80_000 + key, "movie_id": 80_000 + key, "country_id": 1,
        })
        return delta

    def test_apply_produces_vectors_and_bookkeeping(self):
        dataset, pipeline, result = self._tmdb_setup(
            "series", RetroHyperparameters.paper_rn_default()
        )
        retrofitter = pipeline.incremental_retrofitter(result)
        update = retrofitter.apply(dataset.database, self._movie_delta())
        assert update.embeddings.has_value("movies.title", "uncharted nebula 0")
        vector = update.embeddings.vector_for("movies.title", "uncharted nebula 0")
        assert np.linalg.norm(vector) > 0.0
        assert update.delta_map is not None
        assert update.extraction_delta is not None
        assert update.changed_rows is not None
        assert update.report.mode == "warm+subset"
        assert update.report.n_active == update.changed_rows.size
        assert set(update.new_indices) <= set(int(i) for i in update.changed_rows)
        assert "solve" in update.timings

    def test_rows_outside_active_set_are_untouched(self):
        dataset, pipeline, result = self._tmdb_setup(
            "series", RetroHyperparameters.paper_rn_default()
        )
        retrofitter = pipeline.incremental_retrofitter(result)
        update = retrofitter.apply(dataset.database, self._movie_delta())
        changed = set(int(i) for i in update.changed_rows)
        old_to_new = update.delta_map.old_to_new
        for record in result.extraction.records:
            new_index = int(old_to_new[record.index])
            if new_index < 0 or new_index in changed:
                continue
            assert np.array_equal(
                result.embeddings.matrix[record.index],
                update.embeddings.matrix[new_index],
            )

    def test_exhausted_refinement_is_reported_unconverged(self, monkeypatch):
        """When the residual loop runs out of rounds with offenders left,
        the report must not claim convergence (or count unsolved rows)."""
        from repro.retrofit.incremental import IncrementalRetrofitter

        dataset, pipeline, result = self._tmdb_setup(
            "series", RetroHyperparameters.paper_rn_default()
        )
        retrofitter = pipeline.incremental_retrofitter(result)
        monkeypatch.setattr(IncrementalRetrofitter, "MAX_REFINEMENT_ROUNDS", 1)
        retrofitter._residual_tolerance = 1e-9  # impossible to certify
        update = retrofitter.apply(dataset.database, self._movie_delta())
        assert update.report.converged is False
        assert update.report.n_active == update.changed_rows.size

    def test_measure_cold_fills_speedup(self):
        dataset, pipeline, result = self._tmdb_setup(
            "series", RetroHyperparameters.paper_rn_default()
        )
        retrofitter = pipeline.incremental_retrofitter(result)
        update = retrofitter.apply(
            dataset.database, self._movie_delta(), measure_cold=True
        )
        assert update.report.cold_runtime_seconds is not None
        assert update.report.speedup_vs_cold is not None
        assert update.report.speedup_vs_cold > 0


class TestFullAndIncrementalAgree:
    """Property-style satellite: a random delta stream applied incrementally
    matches a cold re-extract + re-solve within tolerance, for RO and RN."""

    # The RO configuration is chosen convex at this dataset scale (the
    # paper's delta=3 violates Eq. 7 on tiny graphs, where the fixed-point
    # iteration oscillates and "the" cold solution is not well-defined).
    @pytest.mark.parametrize(
        "method, hyperparams",
        [
            ("series", RetroHyperparameters.paper_rn_default()),
            ("optimization", RetroHyperparameters(alpha=1, beta=0, gamma=3, delta=0.25)),
        ],
        ids=["RN", "RO"],
    )
    def test_random_stream_agrees_with_cold(self, method, hyperparams):
        from repro.datasets import generate_tmdb
        from repro.experiments.update_bench import synthesize_tmdb_delta
        from repro.retrofit.combine import TextValueEmbeddingSet
        from repro.retrofit.extraction import extract_text_values
        from repro.retrofit.incremental import max_cosine_distance
        from repro.retrofit.initialization import initialise_vectors
        from repro.retrofit.retro import RetroSolver

        dataset = generate_tmdb(num_movies=60, seed=21, embedding_dimension=16)
        pipeline = RetroPipeline(
            dataset.database, dataset.embedding,
            hyperparams=hyperparams, method=method,
        )
        result = pipeline.run(iterations=300)
        retrofitter = pipeline.incremental_retrofitter(result)
        rng = np.random.default_rng(5)
        for _ in range(3):
            delta = synthesize_tmdb_delta(dataset.database, rng, 1)
            update = retrofitter.apply(dataset.database, delta, iterations=300)

        cold_extraction = extract_text_values(dataset.database)
        cold_base = initialise_vectors(
            cold_extraction, dataset.embedding, pipeline.tokenizer
        )
        cold_matrix, _ = RetroSolver(
            cold_extraction, cold_base.matrix, hyperparams
        ).solve(method=method, iterations=300)
        cold = TextValueEmbeddingSet(cold_extraction, cold_matrix, method)

        # same value universe...
        assert {(r.category, r.text) for r in cold_extraction.records} == {
            (r.category, r.text) for r in update.embeddings.extraction.records
        }
        # ...and vectors within the acceptance tolerance on every shared value
        worst = max_cosine_distance(cold, update.embeddings)
        assert worst < 1e-3, f"max cosine distance {worst:.2e}"
        assert full_and_incremental_agree(cold, update.embeddings, tolerance=0.01)
