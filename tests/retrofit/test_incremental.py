"""Tests for incremental maintenance of retrofitted embeddings."""

import numpy as np
import pytest

from repro.datasets import build_toy_movie_database
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.incremental import full_and_incremental_agree
from repro.retrofit.pipeline import RetroPipeline


@pytest.fixture()
def toy_pipeline():
    # a fresh toy dataset per test because the database is mutated
    dataset = build_toy_movie_database()
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    return dataset, pipeline, pipeline.run()


def add_movie(dataset, title="matrix", country_id=2):
    dataset.database.insert("movies", {
        "id": 10 + country_id, "title": title, "country_id": country_id,
    })


class TestIncrementalRetrofitter:
    def test_new_value_receives_vector(self, toy_pipeline):
        dataset, pipeline, result = toy_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        add_movie(dataset, "matrix", 2)
        update = retrofitter.update(dataset.database)
        assert update.embeddings.has_value("movies.title", "matrix")
        vector = update.embeddings.vector_for("movies.title", "matrix")
        assert np.linalg.norm(vector) > 0.0

    def test_existing_vectors_are_frozen(self, toy_pipeline):
        dataset, pipeline, result = toy_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        add_movie(dataset, "matrix", 2)
        update = retrofitter.update(dataset.database)
        for record in result.extraction.records:
            old = result.embeddings.vector_for(record.category, record.text)
            new = update.embeddings.vector_for(record.category, record.text)
            assert np.allclose(old, new)

    def test_new_and_reused_bookkeeping(self, toy_pipeline):
        dataset, pipeline, result = toy_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        add_movie(dataset, "matrix", 2)
        update = retrofitter.update(dataset.database)
        assert len(update.new_indices) == 1
        assert len(update.reused_indices) == len(result.extraction)

    def test_new_vector_close_to_related_country(self, toy_pipeline):
        dataset, pipeline, result = toy_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        add_movie(dataset, "matrix", 2)
        update = retrofitter.update(dataset.database)
        matrix_vector = update.embeddings.vector_for("movies.title", "matrix")
        usa = update.embeddings.vector_for("countries.name", "usa")
        france = update.embeddings.vector_for("countries.name", "france")

        def cos(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

        assert cos(matrix_vector, usa) > cos(matrix_vector, france)

    def test_agreement_with_full_rerun(self, toy_pipeline):
        dataset, pipeline, result = toy_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        add_movie(dataset, "matrix", 2)
        update = retrofitter.update(dataset.database)
        full = pipeline.run()
        assert full_and_incremental_agree(full.embeddings, update.embeddings)

    def test_successive_updates(self, toy_pipeline):
        dataset, pipeline, result = toy_pipeline
        retrofitter = pipeline.incremental_retrofitter(result)
        add_movie(dataset, "matrix", 2)
        first = retrofitter.update(dataset.database)
        add_movie(dataset, "ratatouille", 1)
        second = retrofitter.update(dataset.database)
        assert second.embeddings.has_value("movies.title", "matrix")
        assert second.embeddings.has_value("movies.title", "ratatouille")
        assert len(second.new_indices) == 1
        # the vector solved in the first update is reused untouched
        assert np.allclose(
            first.embeddings.vector_for("movies.title", "matrix"),
            second.embeddings.vector_for("movies.title", "matrix"),
        )
