"""Tests for the end-to-end RetroPipeline and in-database deployment."""

import numpy as np
import pytest

from repro.db.database import Database, build_table_schema
from repro.db.types import ColumnType
from repro.errors import RetrofitError
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import EMBEDDING_TABLE_NAME, RetroPipeline


@pytest.fixture(scope="module")
def toy_pipeline_result(toy_dataset):
    pipeline = RetroPipeline(
        toy_dataset.database,
        toy_dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
        method="series",
    )
    return pipeline, pipeline.run()


class TestPipelineRun:
    def test_result_contents(self, toy_pipeline_result):
        _, result = toy_pipeline_result
        assert len(result.extraction) == 5
        assert result.embeddings.matrix.shape == (5, result.dimension)
        assert result.plain.matrix.shape == (5, result.dimension)
        assert result.report.method == "RN"
        assert result.node_embeddings is None and result.combined is None

    def test_vector_lookup(self, toy_pipeline_result):
        _, result = toy_pipeline_result
        vector = result.vector_for("movies.title", "amelie")
        assert vector.shape == (result.dimension,)
        assert np.all(np.isfinite(vector))

    def test_plain_equals_tokenised_base(self, toy_pipeline_result, toy_dataset):
        _, result = toy_pipeline_result
        assert np.allclose(
            result.plain.vector_for("countries.name", "usa"),
            toy_dataset.embedding["usa"],
        )

    def test_retrofitting_moves_vectors(self, toy_pipeline_result):
        _, result = toy_pipeline_result
        assert not np.allclose(result.embeddings.matrix, result.plain.matrix)

    def test_optimization_method(self, toy_dataset):
        pipeline = RetroPipeline(
            toy_dataset.database, toy_dataset.embedding, method="optimization"
        )
        result = pipeline.run(iterations=5)
        assert result.report.method == "RO"
        assert result.report.iterations <= 5

    def test_node_embeddings_and_combination(self, toy_dataset):
        from repro.deepwalk.deepwalk import DeepWalkConfig

        pipeline = RetroPipeline(
            toy_dataset.database,
            toy_dataset.embedding,
            deepwalk_config=DeepWalkConfig(dimension=4, walks_per_node=2,
                                           walk_length=4, epochs=1),
        )
        result = pipeline.run(include_node_embeddings=True)
        assert result.node_embeddings is not None
        assert result.node_embeddings.matrix.shape == (5, 4)
        assert result.combined is not None
        assert result.combined.dimension == result.dimension + 4

    def test_empty_database_rejected(self, toy_dataset):
        empty = Database("empty")
        empty.create_table(build_table_schema(
            "numbers", [("id", ColumnType.INTEGER), ("x", ColumnType.FLOAT)],
            primary_key="id"))
        pipeline = RetroPipeline(empty, toy_dataset.embedding)
        with pytest.raises(RetrofitError):
            pipeline.run()

    def test_exclude_columns_respected(self, small_tmdb):
        pipeline = RetroPipeline(
            small_tmdb.database,
            small_tmdb.embedding,
            exclude_columns=("movies.original_language",),
        )
        extraction = pipeline.extract()
        assert "movies.original_language" not in extraction.categories


class TestAugmentDatabase:
    """Uses a fresh toy database per test because augmenting mutates it."""

    @staticmethod
    def _fresh():
        from repro.datasets import build_toy_movie_database

        return build_toy_movie_database()

    def test_vectors_written_back(self):
        dataset = self._fresh()
        pipeline = RetroPipeline(dataset.database, dataset.embedding)
        result = pipeline.run()
        pipeline.augment_database(result)
        table = dataset.database.table(EMBEDDING_TABLE_NAME)
        assert len(table) == len(result.extraction)
        row = table.get_by_key(0)
        assert isinstance(row["vector"], list)
        assert len(row["vector"]) == result.dimension

    def test_augment_is_idempotent(self):
        dataset = self._fresh()
        pipeline = RetroPipeline(dataset.database, dataset.embedding)
        result = pipeline.run()
        pipeline.augment_database(result)
        pipeline.augment_database(result)
        table = dataset.database.table(EMBEDDING_TABLE_NAME)
        assert len(table) == len(result.extraction)

    def test_stored_vector_matches_result(self):
        dataset = self._fresh()
        pipeline = RetroPipeline(dataset.database, dataset.embedding)
        result = pipeline.run()
        pipeline.augment_database(result)
        table = dataset.database.table(EMBEDDING_TABLE_NAME)
        for row in table:
            expected = result.vector_for(
                f"{row['source_table']}.{row['source_column']}", row["value"]
            )
            assert np.allclose(np.array(row["vector"]), expected, atol=1e-9)
