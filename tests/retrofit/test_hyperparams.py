"""Tests for hyperparameter handling, derived weights and convexity."""

import numpy as np
import pytest

from repro.errors import RetrofitError
from repro.retrofit.extraction import RelationGroup
from repro.retrofit.hyperparams import (
    DerivedWeights,
    DirectedRelation,
    RetroHyperparameters,
    build_directed_relations,
    check_convexity,
    participation_counts,
)


def simple_groups():
    return [
        RelationGroup(
            name="a->b", kind="fk",
            source_category="a", target_category="b",
            pairs=[(0, 2), (1, 2), (1, 3)],
        ),
    ]


class TestRetroHyperparameters:
    def test_defaults(self):
        params = RetroHyperparameters()
        assert params.alpha == 1.0 and params.gamma == 3.0

    def test_paper_defaults(self):
        assert RetroHyperparameters.paper_ro_default().delta == 3.0
        assert RetroHyperparameters.paper_rn_default().delta == 1.0

    def test_negative_values_rejected(self):
        with pytest.raises(RetrofitError):
            RetroHyperparameters(alpha=-1.0)
        with pytest.raises(RetrofitError):
            RetroHyperparameters(delta=-0.5)

    def test_all_zero_pull_rejected(self):
        with pytest.raises(RetrofitError):
            RetroHyperparameters(alpha=0.0, beta=0.0, gamma=0.0)

    def test_non_finite_rejected(self):
        with pytest.raises(RetrofitError):
            RetroHyperparameters(alpha=float("nan"))

    def test_replace(self):
        params = RetroHyperparameters().replace(gamma=5.0)
        assert params.gamma == 5.0 and params.alpha == 1.0


class TestDirectedRelations:
    def test_forward_and_inverse_created(self):
        directed = build_directed_relations(simple_groups(), n_values=4)
        assert len(directed) == 2
        forward, inverse = directed
        assert forward.name == "a->b"
        assert inverse.name == "a->b::inv"
        assert set(map(tuple, zip(inverse.source_rows, inverse.target_rows))) == {
            (2, 0), (2, 1), (3, 1)
        }

    def test_out_degree_and_cardinalities(self):
        forward = build_directed_relations(simple_groups(), n_values=4)[0]
        assert forward.out_degree == {0: 1, 1: 2}
        assert forward.n_sources == 2 and forward.n_targets == 2
        assert forward.max_cardinality() == 2

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(RetrofitError):
            build_directed_relations(simple_groups(), n_values=2)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(RetrofitError):
            DirectedRelation("bad", np.array([0, 1]), np.array([2]))

    def test_empty_groups_skipped(self):
        groups = [RelationGroup("empty", "fk", "a", "b", pairs=[])]
        assert build_directed_relations(groups, n_values=4) == []

    def test_participation_counts(self):
        directed = build_directed_relations(simple_groups(), n_values=5)
        counts = participation_counts(directed, 5)
        assert list(counts) == [1, 1, 1, 1, 0]


class TestDerivedWeights:
    def test_alpha_and_beta_vectors(self):
        directed = build_directed_relations(simple_groups(), n_values=4)
        params = RetroHyperparameters(alpha=2.0, beta=1.0, gamma=3.0, delta=1.0)
        weights = DerivedWeights(params, 4, directed)
        assert np.allclose(weights.alpha_vec, 2.0)
        # every node participates in exactly one directed group -> beta/2
        assert np.allclose(weights.beta_vec, 0.5)

    def test_gamma_weights_follow_eq_12(self):
        directed = build_directed_relations(simple_groups(), n_values=4)
        params = RetroHyperparameters(alpha=1.0, beta=0.0, gamma=3.0, delta=0.0)
        weights = DerivedWeights(params, 4, directed)
        gamma_forward = weights.gamma_node[0]
        # node 0 has out-degree 1, node 1 has out-degree 2; |R_i| = 1
        assert gamma_forward[0] == pytest.approx(3.0 / (1 * 2))
        assert gamma_forward[1] == pytest.approx(3.0 / (2 * 2))
        assert gamma_forward[2] == 0.0

    def test_delta_ro_follows_eq_13(self):
        directed = build_directed_relations(simple_groups(), n_values=4)
        params = RetroHyperparameters(alpha=1.0, beta=0.0, gamma=1.0, delta=2.0)
        weights = DerivedWeights(params, 4, directed)
        # mc(r) = 2, mr(r) = 2 -> delta / 4
        assert weights.delta_ro[0] == pytest.approx(0.5)

    def test_delta_rn_scaled_by_target_count(self):
        directed = build_directed_relations(simple_groups(), n_values=4)
        params = RetroHyperparameters(alpha=1.0, beta=0.0, gamma=1.0, delta=2.0)
        weights = DerivedWeights(params, 4, directed)
        delta_rn = weights.delta_rn_node[0]
        # sources are 0 and 1, 2 distinct targets, |R_i|+1 = 2 -> 2/(2*2)
        assert delta_rn[0] == pytest.approx(0.5)
        assert delta_rn[2] == 0.0

    def test_gamma_pair_weights(self):
        directed = build_directed_relations(simple_groups(), n_values=4)
        params = RetroHyperparameters(gamma=3.0)
        weights = DerivedWeights(params, 4, directed)
        pair_weights = weights.gamma_pair_weights(0)
        assert pair_weights.shape == (3,)
        assert pair_weights[0] == weights.gamma_node[0][0]


class TestConvexity:
    def test_zero_delta_is_always_convex(self):
        directed = build_directed_relations(simple_groups(), n_values=4)
        params = RetroHyperparameters(alpha=0.1, delta=0.0)
        convex, margin = check_convexity(params, directed, 4)
        assert convex and margin >= 0.0

    def test_large_delta_violates_convexity(self):
        directed = build_directed_relations(simple_groups(), n_values=4)
        params = RetroHyperparameters(alpha=0.01, delta=10.0)
        convex, margin = check_convexity(params, directed, 4)
        assert not convex and margin < 0.0

    def test_margin_monotone_in_alpha(self):
        directed = build_directed_relations(simple_groups(), n_values=4)
        _, low = check_convexity(RetroHyperparameters(alpha=1.0, delta=1.0), directed, 4)
        _, high = check_convexity(RetroHyperparameters(alpha=5.0, delta=1.0), directed, 4)
        assert high > low
