"""Tests for the RO and RN solvers: correctness against the naive reference,
convergence behaviour, loss decrease, incremental freezing.
"""

import numpy as np
import pytest

from repro.errors import ConvexityError, RetrofitError
from repro.retrofit.extraction import extract_text_values
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.initialization import initialise_vectors
from repro.retrofit.loss import category_centroids, relational_loss
from repro.retrofit.retro import RetroSolver


@pytest.fixture(scope="module")
def toy_problem(toy_dataset):
    extraction = extract_text_values(toy_dataset.database)
    base = initialise_vectors(extraction, toy_dataset.embedding)
    return extraction, base.matrix


@pytest.fixture(scope="module")
def tmdb_problem(tmdb_extraction, tmdb_base):
    return tmdb_extraction, tmdb_base.matrix


class TestConstruction:
    def test_shape_validation(self, toy_problem):
        extraction, base = toy_problem
        with pytest.raises(RetrofitError):
            RetroSolver(extraction, base[:2])
        with pytest.raises(RetrofitError):
            RetroSolver(extraction, base.ravel())

    def test_enforce_convexity(self, toy_problem):
        extraction, base = toy_problem
        params = RetroHyperparameters(alpha=0.001, delta=10.0)
        with pytest.raises(ConvexityError):
            RetroSolver(extraction, base, params, enforce_convexity=True)

    def test_unknown_method(self, toy_problem):
        extraction, base = toy_problem
        solver = RetroSolver(extraction, base)
        with pytest.raises(RetrofitError):
            solver.solve(method="bogus")


class TestAgainstNaiveReference:
    @pytest.mark.parametrize("params", [
        RetroHyperparameters(alpha=1.0, beta=0.0, gamma=3.0, delta=3.0),
        RetroHyperparameters(alpha=1.0, beta=1.0, gamma=2.0, delta=0.0),
        RetroHyperparameters(alpha=2.0, beta=0.5, gamma=1.0, delta=1.0),
    ])
    def test_optimization_matches_naive(self, toy_problem, params):
        extraction, base = toy_problem
        solver = RetroSolver(extraction, base, params)
        matrix, report = solver.solve_optimization(iterations=6, tolerance=0.0)
        naive = solver.solve_optimization_naive(iterations=report.iterations)
        assert np.allclose(matrix, naive, atol=1e-8)

    @pytest.mark.parametrize("params", [
        RetroHyperparameters(alpha=1.0, beta=0.0, gamma=3.0, delta=1.0),
        RetroHyperparameters(alpha=1.0, beta=1.0, gamma=2.0, delta=0.0),
    ])
    def test_series_matches_naive(self, toy_problem, params):
        extraction, base = toy_problem
        solver = RetroSolver(extraction, base, params)
        matrix, report = solver.solve_series(iterations=6, tolerance=0.0)
        naive = solver.solve_series_naive(iterations=report.iterations)
        assert np.allclose(matrix, naive, atol=1e-8)


class TestOptimizationSolver:
    def test_loss_decreases_for_convex_configuration(self, toy_problem):
        extraction, base = toy_problem
        params = RetroHyperparameters(alpha=2.0, beta=1.0, gamma=2.0, delta=0.0)
        solver = RetroSolver(extraction, base, params)
        assert solver.is_convex
        _, report = solver.solve_optimization(iterations=15, track_loss=True)
        losses = report.loss_history
        assert losses[-1] <= losses[0]
        assert all(b <= a + 1e-9 for a, b in zip(losses, losses[1:]))

    def test_alpha_only_returns_base(self, toy_problem):
        extraction, base = toy_problem
        params = RetroHyperparameters(alpha=1.0, beta=0.0, gamma=0.0, delta=0.0)
        solver = RetroSolver(extraction, base, params)
        matrix, _ = solver.solve_optimization(iterations=5)
        assert np.allclose(matrix, base)

    def test_gamma_pulls_related_values_together(self, toy_problem):
        extraction, base = toy_problem
        amelie = extraction.index_of("movies.title", "amelie")
        france = extraction.index_of("countries.name", "france")
        before = np.linalg.norm(base[amelie] - base[france])
        solver = RetroSolver(
            extraction, base,
            RetroHyperparameters(alpha=1.0, beta=0.0, gamma=3.0, delta=0.5),
        )
        matrix, _ = solver.solve_optimization(iterations=20)
        after = np.linalg.norm(matrix[amelie] - matrix[france])
        assert after < before

    def test_result_is_finite(self, tmdb_problem):
        extraction, base = tmdb_problem
        solver = RetroSolver(
            extraction, base, RetroHyperparameters.paper_ro_default()
        )
        matrix, _ = solver.solve_optimization(iterations=10)
        assert np.all(np.isfinite(matrix))

    def test_report_fields(self, toy_problem):
        extraction, base = toy_problem
        solver = RetroSolver(extraction, base)
        matrix, report = solver.solve_optimization(iterations=5)
        assert report.method == "RO"
        assert report.iterations <= 5
        assert report.runtime_seconds >= 0.0
        assert len(report.shift_history) == report.iterations
        assert matrix.shape == base.shape


class TestSeriesSolver:
    def test_rows_are_unit_length(self, tmdb_problem):
        extraction, base = tmdb_problem
        solver = RetroSolver(
            extraction, base, RetroHyperparameters.paper_rn_default()
        )
        matrix, _ = solver.solve_series(iterations=10)
        norms = np.linalg.norm(matrix, axis=1)
        non_zero = norms > 1e-9
        assert np.allclose(norms[non_zero], 1.0)

    def test_oov_rows_receive_meaningful_vectors(self, tmdb_problem, tmdb_base):
        extraction, base = tmdb_problem
        solver = RetroSolver(
            extraction, base, RetroHyperparameters.paper_rn_default()
        )
        matrix, _ = solver.solve_series(iterations=10)
        oov_norms = np.linalg.norm(matrix[tmdb_base.oov_mask], axis=1)
        # most OOV values participate in relations and must move off zero
        # (a few OOV values are only related to other OOV values and can
        # legitimately stay at the origin)
        assert np.mean(oov_norms > 1e-6) > 0.75

    def test_series_converges_quickly_on_toy(self, toy_problem):
        extraction, base = toy_problem
        solver = RetroSolver(extraction, base)
        _, report = solver.solve_series(iterations=50, tolerance=1e-8)
        assert report.converged
        assert report.iterations < 50

    def test_stability_for_large_delta(self, toy_problem):
        extraction, base = toy_problem
        params = RetroHyperparameters(alpha=1.0, beta=0.0, gamma=1.0, delta=8.0)
        solver = RetroSolver(extraction, base, params)
        matrix, _ = solver.solve_series(iterations=20)
        assert np.all(np.isfinite(matrix))

    def test_report_fields(self, toy_problem):
        extraction, base = toy_problem
        solver = RetroSolver(extraction, base)
        _, report = solver.solve_series(iterations=5)
        assert report.method == "RN"


class TestNoRelationsProblem:
    def test_solver_without_relations_uses_alpha_and_beta_only(self):
        from repro.db.database import Database, build_table_schema
        from repro.db.types import ColumnType
        from repro.text.embedding import WordEmbedding

        db = Database()
        db.create_table(build_table_schema(
            "words", [("id", ColumnType.INTEGER), ("w", ColumnType.TEXT)],
            primary_key="id"))
        for i, word in enumerate(["alpha", "beta", "gamma"], start=1):
            db.insert("words", {"id": i, "w": word})
        embedding = WordEmbedding.from_dict({
            "alpha": np.array([1.0, 0.0]),
            "beta": np.array([0.0, 1.0]),
            "gamma": np.array([1.0, 1.0]),
        })
        extraction = extract_text_values(db)
        base = initialise_vectors(extraction, embedding)
        params = RetroHyperparameters(alpha=1.0, beta=1.0, gamma=3.0, delta=1.0)
        solver = RetroSolver(extraction, base.matrix, params)
        matrix, _ = solver.solve_optimization(iterations=10)
        centroids = category_centroids(base.matrix, extraction.categories)
        # without relations |R_i| = 0, so beta_i = beta and the fixed point is
        # the alpha/beta-weighted mean of the original vector and the centroid
        expected = (base.matrix + centroids) / 2.0
        assert np.allclose(matrix, expected, atol=1e-6)


class TestFrozenRows:
    def test_frozen_rows_do_not_move(self, toy_problem):
        extraction, base = toy_problem
        solver = RetroSolver(extraction, base)
        frozen = np.zeros(len(extraction), dtype=bool)
        frozen[0] = True
        initial = base.copy()
        matrix, _ = solver.solve_series(
            iterations=5, initial_matrix=initial, frozen_rows=frozen
        )
        normalised_first = initial[0] / (np.linalg.norm(initial[0]) + 1e-12)
        assert np.allclose(matrix[0], normalised_first)

    def test_initial_matrix_shape_checked(self, toy_problem):
        extraction, base = toy_problem
        solver = RetroSolver(extraction, base)
        with pytest.raises(RetrofitError):
            solver.solve_series(initial_matrix=base[:2])


class TestLossFunction:
    def test_loss_is_zero_for_identical_isolated_vectors(self):
        from repro.retrofit.hyperparams import DerivedWeights

        base = np.ones((3, 2))
        weights = DerivedWeights(RetroHyperparameters(), 3, [])
        centroids = np.ones((3, 2))
        assert relational_loss(base, base, centroids, weights) == pytest.approx(0.0)

    def test_loss_shape_mismatch(self, toy_problem):
        extraction, base = toy_problem
        solver = RetroSolver(extraction, base)
        with pytest.raises(RetrofitError):
            relational_loss(base[:2], base, solver.centroids, solver.weights)

    def test_moving_away_from_base_increases_alpha_loss(self, toy_problem):
        extraction, base = toy_problem
        solver = RetroSolver(
            extraction, base,
            RetroHyperparameters(alpha=1.0, beta=0.0, gamma=0.0001, delta=0.0),
        )
        baseline = relational_loss(base, base, solver.centroids, solver.weights)
        shifted = relational_loss(base + 1.0, base, solver.centroids, solver.weights)
        assert shifted > baseline
