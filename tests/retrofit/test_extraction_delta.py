"""Tests for the extraction-level delta machinery (tentpole layer 1)."""

import numpy as np
import pytest

from repro.datasets import build_toy_movie_database, generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.errors import ExtractionError
from repro.retrofit.extraction import (
    ExtractionDelta,
    RelationDelta,
    derive_extraction_delta,
    extract_text_values,
)


def value_set(extraction):
    return {(record.category, record.text) for record in extraction.records}


def pair_sets(extraction):
    return {
        group.name: {
            (extraction.records[i].text, extraction.records[j].text)
            for i, j in group.pairs
        }
        for group in extraction.relation_groups
        if group.pairs
    }


def assert_matches_cold(extraction, database):
    cold = extract_text_values(database)
    assert value_set(extraction) == value_set(cold)
    assert pair_sets(extraction) == pair_sets(cold)
    # the structural invariant the store relies on
    for position, record in enumerate(extraction.records):
        assert record.index == position
    for category, indices in extraction.categories.items():
        for index in indices:
            assert extraction.records[index].category == category


class TestDeriveAndApply:
    def test_insert_only_matches_cold_extraction(self):
        dataset = build_toy_movie_database()
        extraction = extract_text_values(dataset.database)
        delta = DatabaseDelta().insert(
            "movies", {"id": 99, "title": "matrix", "country_id": 2}
        )
        delta.apply_to(dataset.database)
        extraction_delta = derive_extraction_delta(
            extraction, dataset.database, delta
        )
        delta_map = extraction.apply_delta(extraction_delta)
        assert delta_map.n_added == 1 and delta_map.n_removed == 0
        # append-only fast path: nothing renumbers
        assert np.array_equal(
            delta_map.old_to_new, np.arange(delta_map.old_to_new.size)
        )
        assert_matches_cold(extraction, dataset.database)

    def test_update_and_delete_match_cold_extraction(self):
        dataset = generate_tmdb(num_movies=40, seed=9, embedding_dimension=16)
        extraction = extract_text_values(dataset.database)
        victim = dataset.database.table("reviews").rows[0]["id"]
        delta = (
            DatabaseDelta()
            .update("movies", 3, overview="a complete replacement overview")
            .delete("reviews", victim)
        )
        delta.apply_to(dataset.database)
        extraction_delta = derive_extraction_delta(
            extraction, dataset.database, delta
        )
        delta_map = extraction.apply_delta(extraction_delta)
        assert delta_map.n_removed >= 1  # the old overview and/or review text
        assert_matches_cold(extraction, dataset.database)

    def test_mixed_stream_matches_cold_extraction(self):
        from repro.experiments.update_bench import synthesize_tmdb_delta

        dataset = generate_tmdb(num_movies=60, seed=4, embedding_dimension=16)
        extraction = extract_text_values(dataset.database)
        rng = np.random.default_rng(13)
        for _ in range(3):
            delta = synthesize_tmdb_delta(dataset.database, rng, 2)
            delta.apply_to(dataset.database)
            extraction_delta = derive_extraction_delta(
                extraction, dataset.database, delta
            )
            extraction.apply_delta(extraction_delta)
            assert_matches_cold(extraction, dataset.database)

    def test_respects_exclusions(self):
        dataset = build_toy_movie_database()
        excluded = ("countries.name",)
        extraction = extract_text_values(
            dataset.database, exclude_columns=excluded
        )
        delta = DatabaseDelta().insert(
            "countries", {"id": 9, "name": "iceland"}
        ).insert("movies", {"id": 99, "title": "volcano", "country_id": 9})
        delta.apply_to(dataset.database)
        extraction_delta = derive_extraction_delta(
            extraction, dataset.database, delta, exclude_columns=excluded
        )
        assert "countries.name" not in extraction_delta.added_values
        extraction.apply_delta(extraction_delta)
        assert not extraction.has_value("countries.name", "iceland")
        assert extraction.has_value("movies.title", "volcano")


class TestApplyDeltaValidation:
    def test_removing_unknown_value_fails(self):
        dataset = build_toy_movie_database()
        extraction = extract_text_values(dataset.database)
        bad = ExtractionDelta(removed_values={"movies.title": ["nope"]})
        with pytest.raises(ExtractionError):
            extraction.apply_delta(bad)

    def test_adding_duplicate_value_fails(self):
        dataset = build_toy_movie_database()
        extraction = extract_text_values(dataset.database)
        bad = ExtractionDelta(added_values={"movies.title": ["amelie"]})
        with pytest.raises(ExtractionError):
            extraction.apply_delta(bad)

    def test_relation_delta_with_unknown_value_fails(self):
        dataset = build_toy_movie_database()
        extraction = extract_text_values(dataset.database)
        group = extraction.relation_groups[0]
        bad = ExtractionDelta(relations=[
            RelationDelta(
                name=group.name,
                kind=group.kind,
                source_category=group.source_category,
                target_category=group.target_category,
                added=[("ghost", "usa")],
            )
        ])
        with pytest.raises(ExtractionError):
            extraction.apply_delta(bad)

    def test_copy_is_independent(self):
        dataset = build_toy_movie_database()
        extraction = extract_text_values(dataset.database)
        snapshot = extraction.copy()
        extraction.apply_delta(
            ExtractionDelta(added_values={"movies.title": ["matrix"]})
        )
        assert extraction.has_value("movies.title", "matrix")
        assert not snapshot.has_value("movies.title", "matrix")
        assert len(snapshot) == len(extraction) - 1


class TestExtractionDeltaSerialisation:
    def test_round_trip(self):
        delta = ExtractionDelta(
            added_values={"movies.title": ["matrix"]},
            removed_values={"reviews.text": ["old review"]},
            relations=[
                RelationDelta(
                    name="a->b[fk:c]",
                    kind="fk",
                    source_category="a.x",
                    target_category="b.y",
                    added=[("matrix", "usa")],
                    removed=[("amelie", "france")],
                )
            ],
        )
        rebuilt = ExtractionDelta.from_dict(delta.to_dict())
        assert rebuilt.added_values == delta.added_values
        assert rebuilt.removed_values == delta.removed_values
        assert rebuilt.relations[0].added == delta.relations[0].added
        assert rebuilt.relations[0].removed == delta.relations[0].removed
        assert not delta.is_empty()
        assert delta.summary()["pairs_added"] == 1
        assert "movies.title" in delta.touched_categories()

    def test_empty_delta(self):
        delta = ExtractionDelta()
        assert delta.is_empty()
        assert ExtractionDelta.from_dict(delta.to_dict()).is_empty()
