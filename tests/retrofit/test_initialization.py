"""Tests for W0 initialisation."""

import numpy as np

from repro.retrofit.extraction import extract_text_values
from repro.retrofit.initialization import initialise_vectors
from repro.text.tokenizer import Tokenizer


class TestInitialiseVectors:
    def test_shapes_and_coverage(self, small_tmdb, tmdb_extraction, tmdb_base):
        assert tmdb_base.matrix.shape == (
            len(tmdb_extraction), small_tmdb.embedding.dimension
        )
        assert tmdb_base.n_values == len(tmdb_extraction)
        assert tmdb_base.dimension == small_tmdb.embedding.dimension
        assert 0.0 < tmdb_base.coverage <= 1.0
        assert tmdb_base.oov_count == int(tmdb_base.oov_mask.sum())

    def test_oov_rows_are_null_vectors(self, tmdb_base):
        oov_rows = tmdb_base.matrix[tmdb_base.oov_mask]
        assert np.allclose(oov_rows, 0.0)

    def test_in_vocabulary_rows_are_non_null(self, tmdb_base):
        in_vocab = tmdb_base.matrix[~tmdb_base.oov_mask]
        norms = np.linalg.norm(in_vocab, axis=1)
        assert np.all(norms > 0.0)

    def test_some_oov_exists_in_tmdb(self, tmdb_base):
        # the synthetic TMDB dataset keeps a share of person names out of
        # vocabulary on purpose
        assert 0 < tmdb_base.oov_count < tmdb_base.n_values

    def test_toy_dataset_fully_covered(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        base = initialise_vectors(extraction, toy_dataset.embedding)
        assert base.oov_count == 0
        assert base.coverage == 1.0

    def test_known_value_matches_embedding(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        base = initialise_vectors(extraction, toy_dataset.embedding)
        index = extraction.index_of("countries.name", "france")
        assert np.allclose(base.matrix[index], toy_dataset.embedding["france"])

    def test_reusing_prebuilt_tokenizer(self, small_tmdb, tmdb_extraction):
        tokenizer = Tokenizer(small_tmdb.embedding)
        first = initialise_vectors(tmdb_extraction, small_tmdb.embedding, tokenizer)
        second = initialise_vectors(tmdb_extraction, small_tmdb.embedding)
        assert np.allclose(first.matrix, second.matrix)
