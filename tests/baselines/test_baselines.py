"""Tests for the mode-imputation and DataWig-style baselines."""

import numpy as np
import pytest

from repro.baselines.datawig import (
    NGramFeaturizer,
    NGramImputer,
    denormalise_spreadsheet,
)
from repro.baselines.mode_imputation import ModeImputer
from repro.errors import ExperimentError


class TestModeImputer:
    def test_mode_and_accuracy(self):
        imputer = ModeImputer().fit(["en", "en", "fr", "en", "de"])
        assert imputer.mode == "en"
        assert imputer.predict(3) == ["en", "en", "en"]
        assert imputer.accuracy(["en", "fr", "en", "en"]) == pytest.approx(0.75)

    def test_fit_before_predict(self):
        with pytest.raises(ExperimentError):
            ModeImputer().predict(1)

    def test_empty_inputs(self):
        with pytest.raises(ExperimentError):
            ModeImputer().fit([])
        imputer = ModeImputer().fit(["a"])
        with pytest.raises(ExperimentError):
            imputer.accuracy([])


class TestNGramFeaturizer:
    def test_vector_properties(self):
        featurizer = NGramFeaturizer(n_features=64)
        vector = featurizer.transform_text("banking app")
        assert vector.shape == (64,)
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_deterministic(self):
        featurizer = NGramFeaturizer(n_features=64)
        assert np.allclose(
            featurizer.transform_text("hello"), featurizer.transform_text("hello")
        )

    def test_similar_strings_share_buckets(self):
        featurizer = NGramFeaturizer(n_features=256)
        a = featurizer.transform_text("banking application")
        b = featurizer.transform_text("banking applications")
        c = featurizer.transform_text("zzz qqq xxx")
        assert a @ b > a @ c

    def test_row_transform_concatenates_columns(self):
        featurizer = NGramFeaturizer(n_features=32)
        rows = [{"a": "x", "b": "y"}, {"a": None, "b": "z"}]
        features = featurizer.transform_rows(rows, ["a", "b"])
        assert features.shape == (2, 64)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            NGramFeaturizer(n_features=0)
        with pytest.raises(ExperimentError):
            NGramFeaturizer(ngram_range=(3, 2))


class TestNGramImputer:
    @staticmethod
    def make_rows(n_per_class=40, seed=0):
        rng = np.random.default_rng(seed)
        finance_words = ["banking", "budget", "loan", "invest", "wallet"]
        fitness_words = ["workout", "yoga", "steps", "calorie", "running"]
        rows = []
        for _ in range(n_per_class):
            rows.append({
                "name": " ".join(rng.choice(finance_words, 2)),
                "category": "finance",
            })
            rows.append({
                "name": " ".join(rng.choice(fitness_words, 2)),
                "category": "fitness",
            })
        rng.shuffle(rows)
        return rows

    def test_validation(self):
        with pytest.raises(ExperimentError):
            NGramImputer(input_columns=[], output_column="y")
        imputer = NGramImputer(["name"], "category")
        with pytest.raises(ExperimentError):
            imputer.predict([{"name": "x"}])
        with pytest.raises(ExperimentError):
            imputer.fit([{"name": "x", "category": "a"}])

    def test_learns_simple_imputation(self):
        rows = self.make_rows()
        imputer = NGramImputer(["name"], "category", n_features=128,
                               hidden_units=(32,), epochs=40)
        imputer.fit(rows[:60])
        assert imputer.accuracy(rows[60:]) > 0.8

    def test_predict_returns_known_labels(self):
        rows = self.make_rows(10)
        imputer = NGramImputer(["name"], "category", n_features=64,
                               hidden_units=(16,), epochs=10)
        imputer.fit(rows)
        predictions = imputer.predict(rows)
        assert set(predictions) <= {"finance", "fitness"}


class TestDenormaliseSpreadsheet:
    def test_foreign_keys_resolved_to_text(self, toy_dataset):
        rows = denormalise_spreadsheet(toy_dataset.database, "movies")
        assert len(rows) == 3
        amelie = next(row for row in rows if row["title"] == "amelie")
        assert amelie["country_id__resolved"] == "france"

    def test_plain_columns_preserved(self, toy_dataset):
        rows = denormalise_spreadsheet(toy_dataset.database, "countries")
        assert {row["name"] for row in rows} == {"france", "usa"}

    def test_tmdb_spreadsheet_has_no_link_table_content(self, small_tmdb):
        rows = denormalise_spreadsheet(small_tmdb.database, "movies")
        columns = set(rows[0])
        # persons/genres are only reachable through link tables and must be absent
        assert not any("person" in column for column in columns)
        assert not any("genre" in column for column in columns)
