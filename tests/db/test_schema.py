"""Tests for Column, ForeignKey and TableSchema."""

import pytest

from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.types import ColumnType
from repro.errors import SchemaError


def make_schema():
    return TableSchema(
        name="movies",
        columns=[
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("title", ColumnType.TEXT),
            Column("overview", ColumnType.TEXT),
            Column("budget", ColumnType.FLOAT),
            Column("collection_id", ColumnType.INTEGER),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("collection_id", "collections", "id")],
    )


class TestColumn:
    def test_requires_name(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_requires_column_type_instance(self):
        with pytest.raises(SchemaError):
            Column("x", "text")  # type: ignore[arg-type]


class TestForeignKey:
    def test_requires_all_fields(self):
        with pytest.raises(SchemaError):
            ForeignKey("", "other", "id")


class TestTableSchema:
    def test_column_names_in_order(self):
        schema = make_schema()
        assert schema.column_names == [
            "id", "title", "overview", "budget", "collection_id"
        ]

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a"), Column("a")])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a")], primary_key="b")

    def test_foreign_key_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t", [Column("a")],
                foreign_keys=[ForeignKey("missing", "other", "id")],
            )

    def test_requires_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_column_lookup(self):
        schema = make_schema()
        assert schema.column("title").column_type is ColumnType.TEXT
        assert schema.has_column("budget")
        assert not schema.has_column("missing")
        with pytest.raises(SchemaError):
            schema.column("missing")

    def test_text_columns_exclude_keys(self):
        schema = make_schema()
        assert schema.text_columns() == ["title", "overview"]

    def test_text_columns_can_include_keys(self):
        schema = TableSchema(
            "t",
            [Column("code", ColumnType.TEXT), Column("label", ColumnType.TEXT)],
            primary_key="code",
        )
        assert schema.text_columns() == ["label"]
        assert schema.text_columns(exclude_keys=False) == ["code", "label"]

    def test_numeric_columns(self):
        schema = make_schema()
        assert schema.numeric_columns() == ["id", "budget", "collection_id"]

    def test_foreign_key_for(self):
        schema = make_schema()
        fk = schema.foreign_key_for("collection_id")
        assert fk is not None and fk.ref_table == "collections"
        assert schema.foreign_key_for("title") is None
