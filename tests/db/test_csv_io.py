"""Tests for CSV import/export."""

import pytest

from repro.db.csv_io import load_csv_directory, read_csv_table, write_csv_table
from repro.db.database import build_table_schema
from repro.db.types import ColumnType
from repro.errors import SchemaError


@pytest.fixture()
def csv_file(tmp_path):
    path = tmp_path / "movies.csv"
    path.write_text(
        "id,title,budget,released\n"
        "1,amelie,1000000,true\n"
        "2,inception,200000000,false\n"
        "3,godfather,,true\n",
        encoding="utf-8",
    )
    return path


class TestReadCsv:
    def test_types_are_inferred(self, csv_file):
        table = read_csv_table(csv_file)
        assert table.schema.column("id").column_type is ColumnType.INTEGER
        assert table.schema.column("title").column_type is ColumnType.TEXT
        assert table.schema.column("budget").column_type is ColumnType.INTEGER
        assert table.schema.column("released").column_type is ColumnType.BOOLEAN

    def test_rows_and_nulls(self, csv_file):
        table = read_csv_table(csv_file)
        assert len(table) == 3
        assert table.rows[2]["budget"] is None

    def test_table_name_defaults_to_stem(self, csv_file):
        assert read_csv_table(csv_file).name == "movies"

    def test_type_override(self, csv_file):
        table = read_csv_table(
            csv_file, column_types={"budget": ColumnType.FLOAT}
        )
        assert table.rows[0]["budget"] == pytest.approx(1_000_000.0)

    def test_primary_key(self, csv_file):
        table = read_csv_table(csv_file, primary_key="id")
        assert table.get_by_key(2)["title"] == "inception"

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("", encoding="utf-8")
        with pytest.raises(SchemaError):
            read_csv_table(empty)

    def test_null_literals(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\nNULL,x\nn/a,y\n", encoding="utf-8")
        table = read_csv_table(path)
        assert table.rows[0]["a"] is None
        assert table.rows[1]["a"] is None


class TestWriteCsv:
    def test_roundtrip(self, csv_file, tmp_path):
        table = read_csv_table(csv_file)
        out = tmp_path / "out" / "movies.csv"
        write_csv_table(table, out)
        again = read_csv_table(out)
        assert [r["title"] for r in again] == [r["title"] for r in table]
        assert again.rows[2]["budget"] is None


class TestLoadDirectory:
    def test_loads_all_csv_files(self, tmp_path):
        (tmp_path / "a.csv").write_text("id,name\n1,x\n", encoding="utf-8")
        (tmp_path / "b.csv").write_text("id,label\n1,y\n2,z\n", encoding="utf-8")
        db = load_csv_directory(tmp_path, "demo")
        assert set(db.table_names) == {"a", "b"}
        assert len(db.table("b")) == 2

    def test_respects_provided_schema(self, tmp_path):
        (tmp_path / "cities.csv").write_text(
            "id,name\n1,paris\n2,rome\n", encoding="utf-8"
        )
        schema = build_table_schema(
            "cities",
            [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
            primary_key="id",
        )
        db = load_csv_directory(tmp_path, schemas={"cities": schema})
        assert db.table("cities").get_by_key(1)["name"] == "paris"
