"""Tests for row-level database deltas (repro.db.delta)."""

import pytest

from repro.datasets import build_toy_movie_database
from repro.db.delta import DatabaseDelta
from repro.errors import IntegrityError, SchemaError


@pytest.fixture()
def toy_db():
    return build_toy_movie_database().database


class TestDatabaseDelta:
    def test_empty_delta(self, toy_db):
        delta = DatabaseDelta()
        assert delta.is_empty()
        assert len(delta) == 0
        delta.apply_to(toy_db)  # no-op

    def test_insert_update_delete_roundtrip(self, toy_db):
        movies = toy_db.table("movies")
        n_before = len(movies)
        delta = (
            DatabaseDelta()
            .insert("movies", {"id": 99, "title": "matrix", "country_id": 2})
            .update("movies", 99, title="matrix reloaded")
        )
        delta.apply_to(toy_db)
        assert len(movies) == n_before + 1
        assert movies.get_by_key(99)["title"] == "matrix reloaded"

        DatabaseDelta().delete("movies", 99).apply_to(toy_db)
        assert movies.get_by_key(99) is None
        assert len(movies) == n_before

    def test_insert_checks_foreign_keys(self, toy_db):
        delta = DatabaseDelta().insert(
            "movies", {"id": 99, "title": "matrix", "country_id": 4711}
        )
        with pytest.raises(IntegrityError):
            delta.apply_to(toy_db)

    def test_delete_refused_while_referenced(self, toy_db):
        with pytest.raises(IntegrityError):
            DatabaseDelta().delete("countries", 1).apply_to(toy_db)

    def test_ordering_allows_parent_then_child(self, toy_db):
        delta = (
            DatabaseDelta()
            .insert("countries", {"id": 9, "name": "iceland"})
            .insert("movies", {"id": 99, "title": "volcano", "country_id": 9})
        )
        delta.apply_to(toy_db)
        assert toy_db.table("movies").get_by_key(99)["country_id"] == 9

    def test_touched_tables_and_summary(self):
        delta = (
            DatabaseDelta()
            .insert("movies", {"id": 1})
            .update("countries", 1, name="x")
            .delete("reviews", 5)
        )
        assert delta.touched_tables() == {"movies", "countries", "reviews"}
        assert delta.summary() == {"inserts": 1, "updates": 1, "deletes": 1}

    def test_update_validates_foreign_keys(self, toy_db):
        delta = DatabaseDelta().update("movies", 1, country_id=4711)
        with pytest.raises(IntegrityError):
            delta.apply_to(toy_db)
        assert toy_db.table("movies").get_by_key(1)["country_id"] != 4711

    def test_self_referential_delete_is_checked(self):
        from repro.db.database import Database, build_table_schema
        from repro.db.schema import ForeignKey
        from repro.db.types import ColumnType

        db = Database()
        db.create_table(build_table_schema(
            "emp",
            [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT),
             ("manager_id", ColumnType.INTEGER)],
            primary_key="id",
            foreign_keys=[ForeignKey("manager_id", "emp", "id")],
        ))
        db.insert("emp", {"id": 1, "name": "boss", "manager_id": None})
        db.insert("emp", {"id": 2, "name": "ic", "manager_id": 1})
        with pytest.raises(IntegrityError):
            db.delete_rows("emp", lambda row: row["id"] == 1)
        # deleting manager and report together is fine
        assert db.delete_rows("emp", lambda row: row["id"] in (1, 2)) == 2

    def test_update_cannot_orphan_inbound_references(self):
        from repro.db.database import Database, build_table_schema
        from repro.db.schema import ForeignKey
        from repro.db.types import ColumnType

        db = Database()
        db.create_table(build_table_schema(
            "languages",
            [("id", ColumnType.INTEGER), ("code", ColumnType.TEXT)],
            primary_key="id",
        ))
        db.create_table(build_table_schema(
            "movies",
            [("id", ColumnType.INTEGER), ("lang_code", ColumnType.TEXT)],
            primary_key="id",
            foreign_keys=[ForeignKey("lang_code", "languages", "code")],
        ))
        db.insert("languages", {"id": 1, "code": "en"})
        db.insert("movies", {"id": 1, "lang_code": "en"})
        # repointing the only provider of "en" would dangle movies.lang_code
        with pytest.raises(IntegrityError):
            db.update_rows("languages", lambda row: row["id"] == 1, {"code": "de"})
        # with a second provider the same update is fine
        db.insert("languages", {"id": 2, "code": "en"})
        assert db.update_rows(
            "languages", lambda row: row["id"] == 1, {"code": "de"}
        ) == 1

    def test_update_without_primary_key_fails(self, toy_db):
        from repro.db.database import build_table_schema
        from repro.db.types import ColumnType

        toy_db.create_table(
            build_table_schema("notes", [("text", ColumnType.TEXT)])
        )
        with pytest.raises(SchemaError):
            DatabaseDelta().update("notes", 1, text="x").apply_to(toy_db)


class TestNonUniqueRefDelete:
    """Deleting one of several rows carrying the same (non-unique) referenced
    value must succeed; the reference is only dangling when no survivor
    provides it."""

    def _db(self):
        from repro.db.database import Database, build_table_schema
        from repro.db.schema import ForeignKey
        from repro.db.types import ColumnType

        db = Database()
        db.create_table(build_table_schema(
            "languages",
            [("id", ColumnType.INTEGER), ("code", ColumnType.TEXT)],
            primary_key="id",
        ))
        db.create_table(build_table_schema(
            "movies",
            [("id", ColumnType.INTEGER), ("title", ColumnType.TEXT),
             ("lang_code", ColumnType.TEXT)],
            primary_key="id",
            foreign_keys=[ForeignKey("lang_code", "languages", "code")],
        ))
        db.insert("languages", {"id": 1, "code": "en"})
        db.insert("languages", {"id": 2, "code": "en"})  # code is not unique
        db.insert("movies", {"id": 1, "title": "inception", "lang_code": "en"})
        return db

    def test_delete_one_provider_succeeds(self):
        db = self._db()
        assert db.delete_rows("languages", lambda row: row["id"] == 2) == 1

    def test_delete_last_provider_fails(self):
        db = self._db()
        db.delete_rows("languages", lambda row: row["id"] == 2)
        with pytest.raises(IntegrityError):
            db.delete_rows("languages", lambda row: row["id"] == 1)


class TestTableDelete:
    def test_delete_where_maintains_indexes(self, toy_db):
        movies = toy_db.table("movies")
        movies.insert({"id": 50, "title": "temp", "country_id": 1})
        removed = movies.delete_where(lambda row: row["id"] == 50)
        assert removed == 1
        assert movies.get_by_key(50) is None
        # the pk slot is reusable after deletion
        movies.insert({"id": 50, "title": "temp2", "country_id": 1})
        assert movies.get_by_key(50)["title"] == "temp2"

    def test_delete_where_no_match(self, toy_db):
        assert toy_db.table("movies").delete_where(lambda row: False) == 0


class TestValidateAgainst:
    """Write-ahead validation: rejected ⇒ database provably untouched."""

    def test_valid_delta_passes_and_database_is_untouched(self, toy_db):
        movies = toy_db.table("movies")
        n_before = len(movies)
        delta = (
            DatabaseDelta()
            .insert("movies", {"id": 99, "title": "matrix", "country_id": 2})
            .update("movies", 99, title="matrix reloaded")
            .delete("movies", 99)
        )
        delta.validate_against(toy_db)
        assert len(movies) == n_before

    def test_unknown_table_rejected(self, toy_db):
        with pytest.raises(Exception):
            DatabaseDelta().insert("nope", {"id": 1}).validate_against(toy_db)

    def test_unknown_column_rejected(self, toy_db):
        delta = DatabaseDelta().insert("movies", {"id": 99, "director": "x"})
        with pytest.raises(SchemaError, match="unknown columns"):
            delta.validate_against(toy_db)

    def test_duplicate_primary_key_rejected(self, toy_db):
        existing = toy_db.table("movies").rows[0]["id"]
        delta = DatabaseDelta().insert(
            "movies", {"id": existing, "title": "clone", "country_id": 2}
        )
        with pytest.raises(SchemaError, match="reuses primary key"):
            delta.validate_against(toy_db)
        # also within one batch
        delta = (
            DatabaseDelta()
            .insert("movies", {"id": 99, "title": "one", "country_id": 2})
            .insert("movies", {"id": 99, "title": "two", "country_id": 2})
        )
        with pytest.raises(SchemaError, match="reuses primary key"):
            delta.validate_against(toy_db)

    def test_update_of_missing_row_rejected(self, toy_db):
        delta = DatabaseDelta().update("movies", 12345, title="ghost")
        with pytest.raises(SchemaError, match="missing row"):
            delta.validate_against(toy_db)
        # ...but addressing a row the same batch inserts is fine
        delta = (
            DatabaseDelta()
            .insert("movies", {"id": 99, "title": "new", "country_id": 2})
            .update("movies", 99, title="renamed")
        )
        delta.validate_against(toy_db)

    def test_update_may_not_change_the_primary_key(self, toy_db):
        existing = toy_db.table("movies").rows[0]["id"]
        delta = DatabaseDelta().update("movies", existing, id=123)
        with pytest.raises(SchemaError, match="primary key"):
            delta.validate_against(toy_db)

    def test_delete_of_missing_or_doubled_row_rejected(self, toy_db):
        with pytest.raises(SchemaError, match="missing row"):
            DatabaseDelta().delete("movies", 12345).validate_against(toy_db)
        existing = toy_db.table("movies").rows[0]["id"]
        delta = DatabaseDelta().delete("movies", existing).delete(
            "movies", existing
        )
        with pytest.raises(SchemaError, match="twice"):
            delta.validate_against(toy_db)
