"""Tests for column types, coercion and type inference."""

import pytest

from repro.db.types import ColumnType, coerce_value, infer_column_type
from repro.errors import IntegrityError


class TestColumnType:
    def test_text_is_textual(self):
        assert ColumnType.TEXT.is_textual
        assert not ColumnType.INTEGER.is_textual

    def test_numeric_types(self):
        assert ColumnType.INTEGER.is_numeric
        assert ColumnType.FLOAT.is_numeric
        assert not ColumnType.TEXT.is_numeric
        assert not ColumnType.BOOLEAN.is_numeric


class TestCoerceValue:
    def test_none_passes_through(self):
        assert coerce_value(None, ColumnType.TEXT) is None
        assert coerce_value(None, ColumnType.INTEGER) is None

    def test_text_coercion(self):
        assert coerce_value(42, ColumnType.TEXT) == "42"
        assert coerce_value("hello", ColumnType.TEXT) == "hello"

    def test_integer_coercion(self):
        assert coerce_value("7", ColumnType.INTEGER) == 7
        assert coerce_value(7.0, ColumnType.INTEGER) == 7
        assert coerce_value(True, ColumnType.INTEGER) == 1

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(IntegrityError):
            coerce_value(7.5, ColumnType.INTEGER)

    def test_integer_rejects_text(self):
        with pytest.raises(IntegrityError):
            coerce_value("seven", ColumnType.INTEGER)

    def test_float_coercion(self):
        assert coerce_value("3.25", ColumnType.FLOAT) == pytest.approx(3.25)
        assert coerce_value(2, ColumnType.FLOAT) == pytest.approx(2.0)

    @pytest.mark.parametrize("literal,expected", [
        ("true", True), ("Yes", True), ("1", True), ("t", True),
        ("false", False), ("no", False), ("0", False), ("N", False),
    ])
    def test_boolean_literals(self, literal, expected):
        assert coerce_value(literal, ColumnType.BOOLEAN) is expected

    def test_boolean_from_numbers(self):
        assert coerce_value(1, ColumnType.BOOLEAN) is True
        assert coerce_value(0.0, ColumnType.BOOLEAN) is False

    def test_boolean_rejects_garbage(self):
        with pytest.raises(IntegrityError):
            coerce_value("maybe", ColumnType.BOOLEAN)

    def test_json_coercion(self):
        assert coerce_value('{"a": 1}', ColumnType.JSON) == {"a": 1}
        assert coerce_value([1, 2], ColumnType.JSON) == [1, 2]

    def test_json_rejects_invalid(self):
        with pytest.raises(IntegrityError):
            coerce_value("{not json", ColumnType.JSON)


class TestInferColumnType:
    def test_empty_defaults_to_text(self):
        assert infer_column_type([]) is ColumnType.TEXT
        assert infer_column_type([None, ""]) is ColumnType.TEXT

    def test_integer_column(self):
        assert infer_column_type(["1", "2", None, "30"]) is ColumnType.INTEGER

    def test_float_column(self):
        assert infer_column_type(["1.5", "2", "3.25"]) is ColumnType.FLOAT

    def test_boolean_column(self):
        assert infer_column_type(["true", "false", "yes"]) is ColumnType.BOOLEAN

    def test_text_column(self):
        assert infer_column_type(["alpha", "beta"]) is ColumnType.TEXT

    def test_mixed_falls_back_to_text(self):
        assert infer_column_type(["1", "two"]) is ColumnType.TEXT
