"""Tests for the Table row store."""

import pytest

from repro.db.database import build_table_schema
from repro.db.table import Table
from repro.db.types import ColumnType
from repro.errors import IntegrityError, SchemaError


@pytest.fixture()
def people_table():
    schema = build_table_schema(
        "people",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT),
         ("age", ColumnType.INTEGER)],
        primary_key="id",
        unique=["name"],
    )
    return Table(schema)


class TestInsert:
    def test_insert_and_len(self, people_table):
        people_table.insert({"id": 1, "name": "ada", "age": 36})
        people_table.insert({"id": 2, "name": "grace", "age": 45})
        assert len(people_table) == 2

    def test_missing_columns_become_null(self, people_table):
        row = people_table.insert({"id": 1, "name": "ada"})
        assert row["age"] is None

    def test_unknown_column_rejected(self, people_table):
        with pytest.raises(SchemaError):
            people_table.insert({"id": 1, "name": "ada", "height": 170})

    def test_primary_key_not_nullable(self, people_table):
        with pytest.raises(IntegrityError):
            people_table.insert({"name": "ada"})

    def test_duplicate_primary_key_rejected(self, people_table):
        people_table.insert({"id": 1, "name": "ada"})
        with pytest.raises(IntegrityError):
            people_table.insert({"id": 1, "name": "grace"})

    def test_duplicate_unique_column_rejected(self, people_table):
        people_table.insert({"id": 1, "name": "ada"})
        with pytest.raises(IntegrityError):
            people_table.insert({"id": 2, "name": "ada"})

    def test_type_coercion_on_insert(self, people_table):
        row = people_table.insert({"id": "3", "name": 42, "age": "7"})
        assert row["id"] == 3 and row["name"] == "42" and row["age"] == 7

    def test_insert_many(self, people_table):
        count = people_table.insert_many(
            {"id": i, "name": f"p{i}"} for i in range(5)
        )
        assert count == 5 and len(people_table) == 5


class TestLookup:
    def test_get_by_key(self, people_table):
        people_table.insert({"id": 7, "name": "ada"})
        assert people_table.get_by_key(7)["name"] == "ada"
        assert people_table.get_by_key(99) is None

    def test_get_by_key_requires_primary_key(self):
        table = Table(build_table_schema("t", [("x", ColumnType.TEXT)]))
        with pytest.raises(SchemaError):
            table.get_by_key(1)

    def test_column_values_and_nulls(self, people_table):
        people_table.insert({"id": 1, "name": "ada", "age": 30})
        people_table.insert({"id": 2, "name": "bob"})
        assert people_table.column_values("age") == [30]
        assert people_table.column_values("age", include_nulls=True) == [30, None]

    def test_column_values_unknown_column(self, people_table):
        with pytest.raises(SchemaError):
            people_table.column_values("missing")

    def test_distinct_values_order(self, people_table):
        schema = build_table_schema("t", [("word", ColumnType.TEXT)])
        table = Table(schema)
        for word in ["b", "a", "b", "c", "a"]:
            table.insert({"word": word})
        assert table.distinct_values("word") == ["b", "a", "c"]

    def test_select_rows_with_predicate(self, people_table):
        people_table.insert({"id": 1, "name": "ada", "age": 30})
        people_table.insert({"id": 2, "name": "bob", "age": 60})
        old = people_table.select_rows(lambda row: row["age"] > 40)
        assert [row["name"] for row in old] == ["bob"]


class TestUpdate:
    def test_update_where(self, people_table):
        people_table.insert({"id": 1, "name": "ada", "age": 30})
        people_table.insert({"id": 2, "name": "bob", "age": 60})
        changed = people_table.update_where(lambda r: r["age"] > 40, {"age": 61})
        assert changed == 1
        assert people_table.get_by_key(2)["age"] == 61

    def test_update_cannot_touch_keys(self, people_table):
        people_table.insert({"id": 1, "name": "ada"})
        with pytest.raises(IntegrityError):
            people_table.update_where(lambda r: True, {"id": 5})

    def test_update_unknown_column(self, people_table):
        people_table.insert({"id": 1, "name": "ada"})
        with pytest.raises(SchemaError):
            people_table.update_where(lambda r: True, {"height": 1})
