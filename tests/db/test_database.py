"""Tests for the Database container: constraints, reflection, statistics."""

import pytest

from repro.db.database import Database, build_table_schema
from repro.db.schema import ForeignKey
from repro.db.types import ColumnType
from repro.errors import IntegrityError, SchemaError


@pytest.fixture()
def movie_db():
    db = Database("movies_db")
    db.create_table(build_table_schema(
        "countries",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
        primary_key="id",
    ))
    db.create_table(build_table_schema(
        "persons",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
        primary_key="id",
    ))
    db.create_table(build_table_schema(
        "movies",
        [
            ("id", ColumnType.INTEGER),
            ("title", ColumnType.TEXT),
            ("language", ColumnType.TEXT),
            ("budget", ColumnType.FLOAT),
            ("country_id", ColumnType.INTEGER),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("country_id", "countries", "id")],
    ))
    db.create_table(build_table_schema(
        "movie_persons",
        [
            ("id", ColumnType.INTEGER),
            ("movie_id", ColumnType.INTEGER),
            ("person_id", ColumnType.INTEGER),
        ],
        primary_key="id",
        foreign_keys=[
            ForeignKey("movie_id", "movies", "id"),
            ForeignKey("person_id", "persons", "id"),
        ],
    ))
    db.insert("countries", {"id": 1, "name": "france"})
    db.insert("countries", {"id": 2, "name": "usa"})
    db.insert("persons", {"id": 1, "name": "luc besson"})
    db.insert("movies", {"id": 1, "title": "amelie", "language": "french",
                         "budget": 1e6, "country_id": 1})
    db.insert("movies", {"id": 2, "title": "inception", "language": "english",
                         "budget": 2e8, "country_id": 2})
    db.insert("movie_persons", {"id": 1, "movie_id": 1, "person_id": 1})
    return db


class TestTableManagement:
    def test_duplicate_table_rejected(self, movie_db):
        with pytest.raises(SchemaError):
            movie_db.create_table(build_table_schema(
                "movies", [("id", ColumnType.INTEGER)], primary_key="id"
            ))

    def test_foreign_key_to_unknown_table_rejected(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.create_table(build_table_schema(
                "reviews",
                [("id", ColumnType.INTEGER), ("movie_id", ColumnType.INTEGER)],
                primary_key="id",
                foreign_keys=[ForeignKey("movie_id", "movies", "id")],
            ))

    def test_drop_table(self, movie_db):
        movie_db.drop_table("movie_persons")
        assert not movie_db.has_table("movie_persons")

    def test_drop_referenced_table_rejected(self, movie_db):
        with pytest.raises(IntegrityError):
            movie_db.drop_table("countries")

    def test_unknown_table_lookup(self, movie_db):
        with pytest.raises(SchemaError):
            movie_db.table("nope")
        with pytest.raises(SchemaError):
            movie_db.drop_table("nope")

    def test_table_names_order(self, movie_db):
        assert movie_db.table_names == [
            "countries", "persons", "movies", "movie_persons"
        ]


class TestForeignKeys:
    def test_insert_with_valid_fk(self, movie_db):
        movie_db.insert("movies", {"id": 3, "title": "godfather",
                                   "language": "english", "budget": 6e6,
                                   "country_id": 2})
        assert len(movie_db.table("movies")) == 3

    def test_insert_with_dangling_fk_rejected(self, movie_db):
        with pytest.raises(IntegrityError):
            movie_db.insert("movies", {"id": 3, "title": "ghost",
                                       "language": "english", "budget": 0.0,
                                       "country_id": 99})

    def test_null_fk_is_allowed(self, movie_db):
        movie_db.insert("movies", {"id": 4, "title": "orphan",
                                   "language": "english", "budget": 0.0,
                                   "country_id": None})
        assert movie_db.table("movies").get_by_key(4)["country_id"] is None


class TestReflection:
    def test_text_columns(self, movie_db):
        refs = {str(ref) for ref in movie_db.text_columns()}
        assert refs == {"countries.name", "persons.name", "movies.title",
                        "movies.language"}

    def test_numeric_columns_include_budget(self, movie_db):
        refs = {str(ref) for ref in movie_db.numeric_columns()}
        assert "movies.budget" in refs

    def test_link_table_detection(self, movie_db):
        assert movie_db.is_link_table("movie_persons")
        assert not movie_db.is_link_table("movies")
        assert not movie_db.is_link_table("countries")

    def test_relationship_kinds(self, movie_db):
        specs = movie_db.relationships()
        kinds = {spec.kind for spec in specs}
        assert kinds == {"row", "fk", "m2m"}

    def test_row_relationship_between_title_and_language(self, movie_db):
        names = [spec.name for spec in movie_db.relationships()]
        assert "movies.title->movies.language[row]" in names

    def test_fk_relationship_carries_fk_column(self, movie_db):
        fk_specs = [s for s in movie_db.relationships() if s.kind == "fk"]
        assert all(spec.fk_column == "country_id" for spec in fk_specs)

    def test_m2m_relationship_via_link_table(self, movie_db):
        m2m = [s for s in movie_db.relationships() if s.kind == "m2m"]
        assert m2m and all(spec.via == "movie_persons" for spec in m2m)
        assert all(spec.via_source_fk == "movie_id" for spec in m2m)


class TestStatistics:
    def test_counts(self, movie_db):
        assert movie_db.count_tables() == 4
        assert movie_db.count_tables(include_link_tables=False) == 3
        assert movie_db.count_link_tables() == 1
        assert movie_db.count_rows() == 6

    def test_unique_text_values_per_column(self, movie_db):
        # same string in two different columns counts twice (paper §3.3)
        movie_db.insert("persons", {"id": 2, "name": "amelie"})
        assert movie_db.unique_text_values() == 2 + 2 + 2 + 2

    def test_repeated_value_in_one_column_counts_once(self, movie_db):
        movie_db.insert("countries", {"id": 3, "name": "usa"})
        summary = movie_db.summary()
        assert summary["unique_text_values"] == 2 + 1 + 2 + 2

    def test_summary_keys(self, movie_db):
        summary = movie_db.summary()
        assert {"name", "tables", "link_tables", "rows", "text_columns",
                "unique_text_values", "relationships"} <= set(summary)
