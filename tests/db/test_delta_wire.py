"""Round-trip tests for the DatabaseDelta wire form (to_dict / from_dict)."""

import json

import pytest

from repro.db.delta import DatabaseDelta, RowDelete, RowInsert, RowUpdate
from repro.errors import SchemaError


def _sample_delta() -> DatabaseDelta:
    return (
        DatabaseDelta()
        .insert("movie", {"id": 1, "title": "Alien", "popularity": 8.1})
        .insert("movie_countries", {"movie_id": 1, "country": "US"})
        .update("movie", 1, popularity=9.0, title="Alien (1979)")
        .update("country", "US", name="United States")
        .delete("movie", 2)
    )


class TestRoundTrip:
    def test_exact_round_trip(self):
        delta = _sample_delta()
        rebuilt = DatabaseDelta.from_dict(delta.to_dict())
        assert rebuilt.inserts == delta.inserts
        assert rebuilt.updates == delta.updates
        assert rebuilt.deletes == delta.deletes

    def test_survives_json_encoding(self):
        delta = _sample_delta()
        wire = json.loads(json.dumps(delta.to_dict()))
        rebuilt = DatabaseDelta.from_dict(wire)
        assert rebuilt.inserts == delta.inserts
        assert rebuilt.updates == delta.updates
        assert rebuilt.deletes == delta.deletes

    def test_empty_delta_round_trips(self):
        wire = DatabaseDelta().to_dict()
        assert wire == {"inserts": [], "updates": [], "deletes": []}
        rebuilt = DatabaseDelta.from_dict(wire)
        assert rebuilt.is_empty()

    def test_missing_sections_default_to_empty(self):
        rebuilt = DatabaseDelta.from_dict(
            {"inserts": [{"table": "movie", "row": {"id": 3}}]}
        )
        assert rebuilt.inserts == [RowInsert("movie", {"id": 3})]
        assert rebuilt.updates == []
        assert rebuilt.deletes == []

    def test_operation_order_is_preserved(self):
        delta = DatabaseDelta()
        for key in (5, 3, 9):
            delta.delete("movie", key)
        rebuilt = DatabaseDelta.from_dict(delta.to_dict())
        assert [op.key for op in rebuilt.deletes] == [5, 3, 9]

    def test_non_string_keys_survive(self):
        delta = DatabaseDelta().update("t", 42, x=1).delete("t", "forty-two")
        rebuilt = DatabaseDelta.from_dict(json.loads(json.dumps(delta.to_dict())))
        assert rebuilt.updates == [RowUpdate("t", 42, {"x": 1})]
        assert rebuilt.deletes == [RowDelete("t", "forty-two")]


class TestIndependence:
    def test_to_dict_snapshots_rows(self):
        """Mutating the delta after to_dict must not change the wire form."""
        delta = DatabaseDelta().insert("movie", {"id": 1, "title": "Alien"})
        wire = delta.to_dict()
        delta.inserts[0].row["title"] = "Aliens"
        delta.insert("movie", {"id": 2})
        assert wire["inserts"] == [
            {"table": "movie", "row": {"id": 1, "title": "Alien"}}
        ]

    def test_from_dict_copies_payload_rows(self):
        """Mutating the source payload must not reach the rebuilt delta."""
        payload = {"inserts": [{"table": "movie", "row": {"id": 1}}]}
        rebuilt = DatabaseDelta.from_dict(payload)
        payload["inserts"][0]["row"]["id"] = 999
        assert rebuilt.inserts[0].row == {"id": 1}


class TestMalformedPayloads:
    @pytest.mark.parametrize("payload", [None, [], "delta", 7])
    def test_non_dict_payload(self, payload):
        with pytest.raises(SchemaError, match="JSON object"):
            DatabaseDelta.from_dict(payload)

    def test_unknown_keys(self):
        with pytest.raises(SchemaError, match="unknown keys.*upserts"):
            DatabaseDelta.from_dict({"upserts": []})

    def test_insert_missing_row(self):
        with pytest.raises(SchemaError, match="malformed delta payload"):
            DatabaseDelta.from_dict({"inserts": [{"table": "movie"}]})

    def test_update_missing_key(self):
        with pytest.raises(SchemaError, match="malformed delta payload"):
            DatabaseDelta.from_dict(
                {"updates": [{"table": "movie", "changes": {"x": 1}}]}
            )

    def test_delete_missing_key(self):
        with pytest.raises(SchemaError, match="malformed delta payload"):
            DatabaseDelta.from_dict({"deletes": [{"table": "movie"}]})

    def test_row_must_be_a_mapping(self):
        with pytest.raises(SchemaError, match="malformed delta payload"):
            DatabaseDelta.from_dict(
                {"inserts": [{"table": "movie", "row": [1, 2, 3]}]}
            )

    def test_section_must_be_a_list_of_mappings(self):
        with pytest.raises(SchemaError, match="malformed delta payload"):
            DatabaseDelta.from_dict({"inserts": ["movie"]})
