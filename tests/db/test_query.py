"""Tests for the functional query layer."""

import pytest

from repro.db.database import build_table_schema
from repro.db.query import (
    Predicate,
    aggregate,
    group_by,
    inner_join,
    mode_value,
    select,
)
from repro.db.table import Table
from repro.db.types import ColumnType
from repro.errors import QueryError


@pytest.fixture()
def movies():
    table = Table(build_table_schema(
        "movies",
        [("id", ColumnType.INTEGER), ("title", ColumnType.TEXT),
         ("genre", ColumnType.TEXT), ("budget", ColumnType.FLOAT)],
        primary_key="id",
    ))
    table.insert_many([
        {"id": 1, "title": "amelie", "genre": "romance", "budget": 1.0},
        {"id": 2, "title": "inception", "genre": "thriller", "budget": 8.0},
        {"id": 3, "title": "heat", "genre": "thriller", "budget": 6.0},
        {"id": 4, "title": "nosferatu", "genre": "horror", "budget": None},
    ])
    return table


@pytest.fixture()
def reviews():
    table = Table(build_table_schema(
        "reviews",
        [("id", ColumnType.INTEGER), ("movie_id", ColumnType.INTEGER),
         ("stars", ColumnType.INTEGER)],
        primary_key="id",
    ))
    table.insert_many([
        {"id": 1, "movie_id": 1, "stars": 5},
        {"id": 2, "movie_id": 2, "stars": 4},
        {"id": 3, "movie_id": 2, "stars": 3},
    ])
    return table


class TestPredicate:
    def test_equality(self, movies):
        rows = select(movies, where=Predicate("genre", "==", "thriller"))
        assert len(rows) == 2

    @pytest.mark.parametrize("operator,value,expected", [
        ("!=", "thriller", 2),
        ("<", 6.0, 1),
        ("<=", 6.0, 2),
        (">", 1.0, 2),
        (">=", 6.0, 2),
        ("in", ["romance", "horror"], 2),
        ("not in", ["romance", "horror"], 2),
    ])
    def test_operators(self, movies, operator, value, expected):
        column = "budget" if isinstance(value, float) else "genre"
        rows = select(movies, where=Predicate(column, operator, value))
        assert len(rows) == expected

    def test_null_checks(self, movies):
        assert len(select(movies, where=Predicate("budget", "is null"))) == 1
        assert len(select(movies, where=Predicate("budget", "is not null"))) == 3

    def test_null_values_never_match_comparisons(self, movies):
        rows = select(movies, where=Predicate("budget", ">", 0.0))
        assert all(row["budget"] is not None for row in rows)

    def test_unknown_operator(self, movies):
        with pytest.raises(QueryError):
            select(movies, where=Predicate("budget", "~", 1))

    def test_unknown_column(self, movies):
        with pytest.raises(QueryError):
            select(movies, where=Predicate("missing", "==", 1))


class TestSelect:
    def test_projection(self, movies):
        rows = select(movies, columns=["title"])
        assert rows[0] == {"title": "amelie"}

    def test_projection_unknown_column(self, movies):
        with pytest.raises(QueryError):
            select(movies, columns=["missing"])

    def test_limit(self, movies):
        assert len(select(movies, limit=2)) == 2

    def test_select_returns_copies(self, movies):
        rows = select(movies)
        rows[0]["title"] = "changed"
        assert movies.rows[0]["title"] == "amelie"


class TestJoinGroupAggregate:
    def test_inner_join(self, movies, reviews):
        joined = inner_join(movies, reviews, "id", "movie_id")
        assert len(joined) == 3
        assert {row["left_title"] for row in joined} == {"amelie", "inception"}

    def test_join_missing_column(self, movies, reviews):
        with pytest.raises(QueryError):
            inner_join(movies, reviews, "nope", "movie_id")

    def test_group_by(self, movies):
        groups = group_by(movies.rows, "genre")
        assert len(groups["thriller"]) == 2

    def test_aggregates(self, movies):
        assert aggregate(movies.rows, "budget", "count") == 3
        assert aggregate(movies.rows, "budget", "sum") == pytest.approx(15.0)
        assert aggregate(movies.rows, "budget", "avg") == pytest.approx(5.0)
        assert aggregate(movies.rows, "budget", "min") == pytest.approx(1.0)
        assert aggregate(movies.rows, "budget", "max") == pytest.approx(8.0)

    def test_aggregate_mode_and_unknown(self, movies):
        assert aggregate(movies.rows, "genre", "mode") == "thriller"
        with pytest.raises(QueryError):
            aggregate(movies.rows, "budget", "median")

    def test_aggregate_on_empty(self):
        with pytest.raises(QueryError):
            aggregate([], "x", "avg")

    def test_mode_value(self, movies):
        assert mode_value(movies.rows, "genre") == "thriller"
        assert mode_value([], "genre") is None
