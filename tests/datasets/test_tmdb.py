"""Tests for the synthetic TMDB dataset generator."""

import numpy as np
import pytest

from repro.datasets import generate_tmdb
from repro.datasets import vocabulary as vocab
from repro.datasets.tmdb import build_movie_embedding_space
from repro.errors import DatasetError


class TestSchemaShape:
    def test_table_counts_match_paper_shape(self, small_tmdb):
        summary = small_tmdb.summary()
        assert summary["tables"] == 8
        assert summary["link_tables"] == 6

    def test_text_columns(self, small_tmdb):
        categories = {str(ref) for ref in small_tmdb.database.text_columns()}
        assert {"movies.title", "movies.original_language", "movies.overview",
                "persons.name", "genres.name", "countries.name",
                "reviews.text"} <= categories

    def test_numeric_columns_for_regression(self, small_tmdb):
        numeric = {str(ref) for ref in small_tmdb.database.numeric_columns()}
        assert "movies.budget" in numeric
        assert "movies.revenue" in numeric

    def test_link_tables_are_detected(self, small_tmdb):
        db = small_tmdb.database
        for name in ("movie_directors", "movie_genres", "movie_countries"):
            assert db.is_link_table(name)


class TestGroundTruth:
    def test_every_movie_has_labels(self, small_tmdb):
        titles = set(small_tmdb.database.table("movies").distinct_values("title"))
        assert set(small_tmdb.movie_language) == titles
        assert set(small_tmdb.movie_budget) == titles
        assert set(small_tmdb.movie_genres) == titles

    def test_languages_come_from_vocabulary(self, small_tmdb):
        assert set(small_tmdb.movie_language.values()) <= set(vocab.LANGUAGES)

    def test_director_citizenship_covers_directed_movies(self, small_tmdb):
        directors_in_db = set()
        db = small_tmdb.database
        persons = db.table("persons")
        for row in db.table("movie_directors"):
            directors_in_db.add(persons.get_by_key(row["person_id"])["name"])
        assert directors_in_db <= set(small_tmdb.director_citizenship)

    def test_both_citizenship_classes_present(self, small_tmdb):
        labels = set(small_tmdb.director_is_us().values())
        assert labels == {True, False}

    def test_budgets_positive_and_tiered(self, small_tmdb):
        budgets = np.array(list(small_tmdb.movie_budget.values()))
        assert np.all(budgets > 0)
        assert budgets.max() / budgets.min() > 5.0

    def test_genres_are_valid(self, small_tmdb):
        for genres in small_tmdb.movie_genres.values():
            assert 1 <= len(genres) <= 3
            assert set(genres) <= set(small_tmdb.genre_names)


class TestGeneration:
    def test_determinism(self):
        first = generate_tmdb(num_movies=20, seed=5, embedding_dimension=16)
        second = generate_tmdb(num_movies=20, seed=5, embedding_dimension=16)
        assert first.summary() == second.summary()
        assert first.movie_language == second.movie_language

    def test_different_seeds_differ(self):
        first = generate_tmdb(num_movies=20, seed=1, embedding_dimension=16)
        second = generate_tmdb(num_movies=20, seed=2, embedding_dimension=16)
        assert first.movie_language != second.movie_language

    def test_size_scales(self):
        small = generate_tmdb(num_movies=20, seed=0, embedding_dimension=16)
        large = generate_tmdb(num_movies=60, seed=0, embedding_dimension=16)
        assert large.summary()["unique_text_values"] > small.summary()["unique_text_values"]

    def test_minimum_size_enforced(self):
        with pytest.raises(DatasetError):
            generate_tmdb(num_movies=2)

    def test_shared_embedding_reuse(self):
        embedding = build_movie_embedding_space(dimension=16, seed=0).build()
        dataset = generate_tmdb(num_movies=15, seed=0, embedding=embedding)
        assert dataset.embedding is embedding

    def test_referential_integrity_enforced_on_build(self, small_tmdb):
        # generation succeeded, so every foreign key resolved; spot-check one
        db = small_tmdb.database
        movies = db.table("movies")
        for row in db.table("movie_countries"):
            assert movies.get_by_key(row["movie_id"]) is not None


class TestEmbeddingSpace:
    def test_language_and_demonym_are_in_vocabulary(self, small_tmdb):
        for country in vocab.COUNTRIES:
            assert country.language in small_tmdb.embedding
            assert country.demonym in small_tmdb.embedding

    def test_some_person_names_are_out_of_vocabulary(self, small_tmdb):
        names = small_tmdb.database.table("persons").distinct_values("name")
        tokens = {token for name in names for token in name.split()}
        missing = [token for token in tokens if token not in small_tmdb.embedding]
        assert missing, "expected a share of person-name tokens to be OOV"

    def test_invalid_vocab_fraction(self):
        with pytest.raises(DatasetError):
            build_movie_embedding_space(name_vocab_fraction=1.5)

    def test_genre_words_cluster_by_genre(self, small_tmdb):
        embedding = small_tmdb.embedding
        within = embedding.cosine_similarity("haunted", "nightmare")
        between = embedding.cosine_similarity("haunted", "wedding")
        assert within > between
