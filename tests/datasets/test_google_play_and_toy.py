"""Tests for the Google Play generator and the Figure-3 toy dataset."""

import pytest

from repro.datasets import build_toy_movie_database, generate_google_play
from repro.datasets import vocabulary as vocab
from repro.errors import DatasetError
from repro.retrofit.extraction import extract_text_values


class TestGooglePlay:
    def test_table_counts_match_paper_shape(self, small_google_play):
        summary = small_google_play.summary()
        assert summary["tables"] == 6
        assert summary["link_tables"] == 1

    def test_every_app_has_a_category(self, small_google_play):
        apps = small_google_play.database.table("apps").distinct_values("name")
        assert set(small_google_play.app_category) == set(apps)
        assert set(small_google_play.app_category.values()) <= set(
            vocab.APP_CATEGORIES
        )

    def test_thirty_three_categories_available(self, small_google_play):
        assert len(small_google_play.category_names) == 33
        assert len(small_google_play.database.table("categories")) == 33

    def test_reviews_reference_apps(self, small_google_play):
        db = small_google_play.database
        apps = db.table("apps")
        for review in db.table("reviews"):
            assert apps.get_by_key(review["app_id"]) is not None

    def test_every_app_has_reviews(self, small_google_play):
        db = small_google_play.database
        reviewed = {row["app_id"] for row in db.table("reviews")}
        assert reviewed == {row["id"] for row in db.table("apps")}

    def test_spreadsheet_rows(self, small_google_play):
        rows = small_google_play.spreadsheet_rows()
        assert len(rows) == small_google_play.num_apps
        assert {"name", "pricing", "age_group", "category"} <= set(rows[0])
        assert all(row["pricing"] in vocab.PRICING_TYPES for row in rows)

    def test_determinism(self):
        first = generate_google_play(num_apps=15, seed=4, embedding_dimension=16)
        second = generate_google_play(num_apps=15, seed=4, embedding_dimension=16)
        assert first.app_category == second.app_category

    def test_minimum_size(self):
        with pytest.raises(DatasetError):
            generate_google_play(num_apps=1)

    def test_review_words_match_category_cluster(self, small_google_play):
        embedding = small_google_play.embedding
        within = embedding.cosine_similarity("banking", "budget")
        between = embedding.cosine_similarity("banking", "yoga")
        assert within > between


class TestToyDataset:
    def test_structure(self, toy_dataset):
        summary = toy_dataset.database.summary()
        assert summary["tables"] == 2
        assert summary["unique_text_values"] == 5

    def test_embedding_is_two_dimensional(self, toy_dataset):
        assert toy_dataset.embedding.dimension == 2
        assert len(toy_dataset.embedding) == 5

    def test_movie_country_ground_truth(self, toy_dataset):
        assert toy_dataset.movie_country == {
            "amelie": "france", "inception": "usa", "godfather": "usa",
        }

    def test_extraction_matches_figure(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        assert len(extraction.relation_groups) == 1
        assert len(extraction.relation_groups[0]) == 3

    def test_higher_dimensional_variant(self):
        toy = build_toy_movie_database(dimension=8)
        assert toy.embedding.dimension == 8
