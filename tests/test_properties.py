"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.db.types import ColumnType, coerce_value, infer_column_type
from repro.retrofit.combine import concatenate_embeddings, normalise_rows
from repro.retrofit.extraction import RelationGroup
from repro.retrofit.hyperparams import (
    RetroHyperparameters,
    build_directed_relations,
    participation_counts,
)
from repro.serving.index import FlatIndex, IVFIndex, topk_descending
from repro.tasks.imputation import one_hot
from repro.text.embedding import WordEmbedding
from repro.text.tokenizer import normalise_text
from repro.text.trie import TokenTrie

# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
words = st.text(
    alphabet=st.sampled_from("abcdefghij"), min_size=1, max_size=6
)
token_lists = st.lists(words, min_size=1, max_size=5)
small_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestTrieProperties:
    @given(st.lists(token_lists, min_size=1, max_size=20), token_lists)
    @settings(max_examples=60, deadline=None)
    def test_longest_match_equals_bruteforce(self, phrases, query):
        trie = TokenTrie()
        for tokens in phrases:
            trie.insert(tokens)
        length, phrase = trie.longest_match(query)

        best = 0
        for tokens in phrases:
            size = len(tokens)
            if size <= len(query) and query[:size] == tokens and size > best:
                best = size
        assert length == best
        if best > 0:
            assert phrase is not None and len(phrase.split("_")) == best

    @given(st.lists(token_lists, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_every_inserted_phrase_is_found(self, phrases):
        trie = TokenTrie()
        for tokens in phrases:
            trie.insert(tokens)
        for tokens in phrases:
            assert trie.contains(tokens)
            length, _ = trie.longest_match(tokens)
            assert length >= len(tokens) or length > 0


class TestTypeProperties:
    @given(st.integers(min_value=-10**9, max_value=10**9))
    @settings(max_examples=50, deadline=None)
    def test_integer_roundtrip(self, value):
        assert coerce_value(str(value), ColumnType.INTEGER) == value

    @given(small_floats)
    @settings(max_examples=50, deadline=None)
    def test_float_roundtrip(self, value):
        assert coerce_value(str(value), ColumnType.FLOAT) == float(str(value))

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_inferred_type_accepts_all_values(self, values):
        column_type = infer_column_type([str(v) for v in values])
        for value in values:
            coerce_value(str(value), column_type)


class TestTextProperties:
    @given(st.text(max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_normalise_text_is_lowercase_alnum(self, text):
        for token in normalise_text(text):
            assert token == token.lower()
            assert all(c.isalnum() or c == "'" for c in token)

    @given(words)
    @settings(max_examples=40, deadline=None)
    def test_embedding_canonical_idempotent(self, word):
        canonical = WordEmbedding.canonical(word)
        assert WordEmbedding.canonical(canonical) == canonical


class TestMatrixProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_normalise_rows_unit_or_zero(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(0.0, 10.0, (rows, cols))
        matrix[0] = 0.0
        normalised = normalise_rows(matrix)
        norms = np.linalg.norm(normalised, axis=1)
        for norm in norms:
            assert norm == 0.0 or abs(norm - 1.0) < 1e-9

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_concatenation_preserves_rows(self, rows, left_cols, right_cols, seed):
        rng = np.random.default_rng(seed)
        left = rng.normal(size=(rows, left_cols))
        right = rng.normal(size=(rows, right_cols))
        combined = concatenate_embeddings(left, right)
        assert combined.shape == (rows, left_cols + right_cols)

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_one_hot_rows_sum_to_one(self, labels):
        encoded = one_hot(np.array(labels), 6)
        assert np.allclose(encoded.sum(axis=1), 1.0)
        assert np.all((encoded == 0.0) | (encoded == 1.0))


class TestRelationProperties:
    pair_lists = st.lists(
        st.tuples(st.integers(min_value=0, max_value=9),
                  st.integers(min_value=0, max_value=9)),
        min_size=1, max_size=30, unique=True,
    )

    @given(pair_lists)
    @settings(max_examples=50, deadline=None)
    def test_directed_relations_preserve_pairs(self, pairs):
        group = RelationGroup("r", "fk", "a", "b", pairs=sorted(set(pairs)))
        directed = build_directed_relations([group], n_values=10)
        forward, inverse = directed
        forward_pairs = set(zip(forward.source_rows.tolist(),
                                forward.target_rows.tolist()))
        inverse_pairs = set(zip(inverse.source_rows.tolist(),
                                inverse.target_rows.tolist()))
        assert forward_pairs == set(group.pairs)
        assert inverse_pairs == {(j, i) for i, j in group.pairs}

    @given(pair_lists)
    @settings(max_examples=50, deadline=None)
    def test_participation_counts_bounded(self, pairs):
        group = RelationGroup("r", "fk", "a", "b", pairs=sorted(set(pairs)))
        directed = build_directed_relations([group], n_values=10)
        counts = participation_counts(directed, 10)
        assert counts.min() >= 0
        assert counts.max() <= len(directed)
        participants = {i for pair in pairs for i in pair}
        for node in range(10):
            if node not in participants:
                assert counts[node] == 0

    @given(
        pair_lists,
        st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_gamma_mass_per_node_bounded_by_gamma(self, pairs, gamma, beta):
        """Eq. 12 normalisation: each node's total gamma weight over its
        outgoing edges of one relation is gamma / (|R_i| + 1)."""
        from repro.retrofit.hyperparams import DerivedWeights

        group = RelationGroup("r", "fk", "a", "b", pairs=sorted(set(pairs)))
        directed = build_directed_relations([group], n_values=10)
        params = RetroHyperparameters(alpha=1.0, beta=beta, gamma=gamma, delta=0.0)
        weights = DerivedWeights(params, 10, directed)
        for rel_index, relation in enumerate(directed):
            gamma_node = weights.gamma_node[rel_index]
            for node in relation.source_indices:
                total = gamma_node[node] * relation.out_degree[int(node)]
                participation = weights.participation[node]
                assert abs(total - gamma / (participation + 1)) < 1e-9


class TestIndexProperties:
    """Equivalence guards for the serving indexes, mirroring the naive-vs-
    vectorised solver guard in tests/retrofit/test_retro.py."""

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_flat_index_equals_loop_cosine_reference(self, rows, cols, k, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(rows, cols))
        if rows > 1:
            matrix[rows // 2] = 0.0  # include an all-zero row
        query = rng.normal(size=cols)

        indices, scores = FlatIndex(matrix).query(query, k)

        reference = []
        for row in matrix:
            denom = np.linalg.norm(row) * (np.linalg.norm(query) + 1e-12)
            if denom == 0:
                denom = 1e-12
            reference.append(float(row @ query / denom))
        reference = np.array(reference)
        expected = np.argsort(-reference, kind="stable")[: min(k, rows)]

        assert np.allclose(scores, reference[indices], atol=1e-9)
        # rankings agree wherever scores are not float-level ties
        assert np.allclose(
            reference[indices], reference[expected], atol=1e-9
        )

    @given(
        st.integers(min_value=2, max_value=60),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_exhaustive_ivf_equals_flat_topk(self, rows, cols, k, cells, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(rows, cols))
        queries = rng.normal(size=(3, cols))
        n_cells = min(cells, rows)

        flat_indices, flat_scores = FlatIndex(matrix).query_batch(queries, k)
        ivf = IVFIndex(matrix, n_cells=n_cells, nprobe=n_cells, seed=seed % 97)
        ivf_indices, ivf_scores = ivf.query_batch(queries, k)

        assert ivf_indices.shape == flat_indices.shape
        assert np.allclose(flat_scores, ivf_scores, atol=1e-9)
        # continuous random scores: ties have measure zero, so the full
        # rankings must coincide row by row
        assert np.array_equal(flat_indices, ivf_indices)

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_topk_selection_equals_full_sort(self, n, k, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=n)
        assert np.array_equal(
            topk_descending(scores, k),
            np.argsort(-scores, kind="stable")[: min(k, n)],
        )
