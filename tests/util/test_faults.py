"""Tests for the deterministic fault-injection plan and the shared retry policy."""

import multiprocessing
import pickle

import pytest

from repro.errors import ReproError
from repro.util import faults
from repro.util.faults import (
    FaultInjected,
    FaultPlan,
    FaultPoint,
    RetryPolicy,
    active_fault_plan,
    clear_fault_plan,
    install_fault_plan,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


# --------------------------------------------------------------------- #
# FaultPoint
# --------------------------------------------------------------------- #
class TestFaultPoint:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultPoint("store.x", "explode")

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown fault phase"):
            FaultPoint("store.x", "error", when="during")

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_out_of_range_tear_fraction(self, fraction):
        with pytest.raises(ValueError, match="tear_fraction"):
            FaultPoint("store.x", "torn_write", tear_fraction=fraction)

    def test_channel_follows_mode(self):
        assert FaultPoint("p", "error", when="after").channel == "after"
        assert FaultPoint("p", "crash").channel == "before"
        assert FaultPoint("p", "delay").channel == "before"
        assert FaultPoint("p", "torn_write").channel == "tear"
        assert FaultPoint("p", "drop_message").channel == "drop"
        assert FaultPoint("p", "fail_spawn").channel == "spawn"


# --------------------------------------------------------------------- #
# FaultPlan traversal counting
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_error_mode_raises_fault_injected(self):
        plan = FaultPlan([FaultPoint("seam", "error")])
        with pytest.raises(FaultInjected, match="seam"):
            plan.fire("seam")

    def test_fault_injected_is_a_repro_error(self):
        assert issubclass(FaultInjected, ReproError)

    def test_skip_passes_then_fires(self):
        plan = FaultPlan([FaultPoint("seam", "error", skip=2)])
        plan.fire("seam")
        plan.fire("seam")
        with pytest.raises(FaultInjected):
            plan.fire("seam")

    def test_hits_bounds_firings(self):
        plan = FaultPlan([FaultPoint("seam", "error", hits=2)])
        for _ in range(2):
            with pytest.raises(FaultInjected):
                plan.fire("seam")
        plan.fire("seam")  # exhausted: passes untouched
        plan.fire("seam")

    def test_nonpositive_hits_fires_forever(self):
        plan = FaultPlan([FaultPoint("seam", "error", hits=0)])
        for _ in range(5):
            with pytest.raises(FaultInjected):
                plan.fire("seam")

    def test_channels_are_counted_independently(self):
        plan = FaultPlan(
            [
                FaultPoint("seam", "error", when="after"),
                FaultPoint("seam", "torn_write", tear_fraction=0.25),
            ]
        )
        # "before" traversals touch neither armed channel
        plan.fire("seam", "before")
        plan.fire("seam", "before")
        assert plan.torn_fraction("seam") == 0.25
        with pytest.raises(FaultInjected):
            plan.fire("seam", "after")

    def test_unarmed_points_are_noops(self):
        plan = FaultPlan([FaultPoint("seam", "error")])
        plan.fire("other.seam")
        assert plan.torn_fraction("other.seam") is None
        assert plan.should_drop("other.seam") is False
        assert plan.should_fail_spawn("other.seam") is False

    def test_drop_and_spawn_queries(self):
        plan = FaultPlan(
            [
                FaultPoint("pipe", "drop_message", skip=1),
                FaultPoint("spawn", "fail_spawn"),
            ]
        )
        assert plan.should_drop("pipe") is False  # skipped traversal
        assert plan.should_drop("pipe") is True
        assert plan.should_drop("pipe") is False  # hits exhausted
        assert plan.should_fail_spawn("spawn") is True
        assert plan.should_fail_spawn("spawn") is False

    def test_delay_mode_sleeps(self, monkeypatch):
        slept = []
        monkeypatch.setattr(faults.time, "sleep", slept.append)
        plan = FaultPlan([FaultPoint("seam", "delay", delay_seconds=0.7)])
        plan.fire("seam")
        assert slept == [0.7]

    def test_history_records_fired_faults_in_order(self):
        plan = FaultPlan(
            [
                FaultPoint("a", "error", skip=1),
                FaultPoint("b", "drop_message"),
            ]
        )
        plan.fire("a")  # skipped — not in history
        assert plan.should_drop("b")
        with pytest.raises(FaultInjected):
            plan.fire("a")
        history = plan.history()
        assert [(h["point"], h["mode"]) for h in history] == [
            ("b", "drop_message"),
            ("a", "error"),
        ]
        assert history[1]["traversal"] == 2

    def test_deterministic_across_fresh_plans(self):
        def script(plan):
            outcomes = []
            for _ in range(6):
                try:
                    plan.fire("seam")
                    outcomes.append("pass")
                except FaultInjected:
                    outcomes.append("fire")
            return outcomes

        points = [FaultPoint("seam", "error", skip=2, hits=2)]
        assert script(FaultPlan(points)) == script(FaultPlan(points))
        assert script(FaultPlan(points)) == [
            "pass", "pass", "fire", "fire", "pass", "pass",
        ]

    def test_pickle_round_trip_preserves_counters(self):
        plan = FaultPlan([FaultPoint("seam", "error", skip=1)], seed=7)
        plan.fire("seam")  # consume the skipped traversal
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == 7
        assert clone.traversals() == {("seam", "before"): 1}
        with pytest.raises(FaultInjected):
            clone.fire("seam")
        # the original's counters are unaffected by the clone's firing
        with pytest.raises(FaultInjected):
            plan.fire("seam")


# --------------------------------------------------------------------- #
# module-level installation
# --------------------------------------------------------------------- #
class TestModuleHelpers:
    def test_helpers_are_noops_without_a_plan(self):
        assert active_fault_plan() is None
        faults.fire("anything")
        assert faults.torn_fraction("anything") is None
        assert faults.should_drop("anything") is False
        assert faults.should_fail_spawn("anything") is False

    def test_install_and_clear(self):
        plan = install_fault_plan(FaultPlan([FaultPoint("seam", "error")]))
        assert active_fault_plan() is plan
        with pytest.raises(FaultInjected):
            faults.fire("seam")
        clear_fault_plan()
        assert active_fault_plan() is None
        faults.fire("seam")  # no-op again

    def test_module_queries_route_to_the_active_plan(self):
        install_fault_plan(
            FaultPlan(
                [
                    FaultPoint("t", "torn_write", tear_fraction=0.125),
                    FaultPoint("d", "drop_message"),
                    FaultPoint("s", "fail_spawn"),
                ]
            )
        )
        assert faults.torn_fraction("t") == 0.125
        assert faults.should_drop("d") is True
        assert faults.should_fail_spawn("s") is True


def _crash_child(plan):
    install_fault_plan(plan)
    faults.fire("child.seam")
    raise SystemExit(0)  # unreachable when the crash fires


def test_crash_mode_exits_like_sigkill():
    """A crash fault kills the process with exit code 137, skipping cleanup."""
    ctx = multiprocessing.get_context("fork")
    plan = FaultPlan([FaultPoint("child.seam", "crash")])
    child = ctx.Process(target=_crash_child, args=(plan,))
    child.start()
    child.join(timeout=30)
    assert child.exitcode == 137


# --------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------- #
class _Flaky:
    def __init__(self, failures, error=RuntimeError("transient")):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


class _FixedRng:
    """A stand-in rng returning the upper bound (worst-case backoff)."""

    def uniform(self, low, high):
        return high


class TestRetryPolicy:
    def test_first_try_success_never_sleeps(self):
        slept = []
        policy = RetryPolicy(attempts=4)
        assert policy.call(_Flaky(0), sleep=slept.append) == "ok"
        assert slept == []

    def test_retries_until_success(self):
        fn = _Flaky(2)
        policy = RetryPolicy(attempts=4, base_delay=0.0)
        assert policy.call(fn, sleep=lambda _: None) == "ok"
        assert fn.calls == 3

    def test_exhaustion_reraises_the_last_error(self):
        fn = _Flaky(10, error=ValueError("still broken"))
        policy = RetryPolicy(attempts=3, base_delay=0.0)
        with pytest.raises(ValueError, match="still broken"):
            policy.call(fn, retry_on=(ValueError,), sleep=lambda _: None)
        assert fn.calls == 3

    def test_unlisted_errors_propagate_immediately(self):
        fn = _Flaky(1, error=KeyError("nope"))
        policy = RetryPolicy(attempts=4, base_delay=0.0)
        with pytest.raises(KeyError):
            policy.call(fn, retry_on=(ValueError,), sleep=lambda _: None)
        assert fn.calls == 1

    def test_backoff_cap_doubles_then_plateaus(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5)
        assert policy.backoff_cap(0) == pytest.approx(0.1)
        assert policy.backoff_cap(1) == pytest.approx(0.2)
        assert policy.backoff_cap(2) == pytest.approx(0.4)
        assert policy.backoff_cap(3) == pytest.approx(0.5)
        assert policy.backoff_cap(10) == pytest.approx(0.5)

    def test_full_jitter_draws_from_zero_to_cap(self):
        draws = []

        class _Recorder:
            def uniform(self, low, high):
                draws.append((low, high))
                return 0.0

        policy = RetryPolicy(attempts=4, base_delay=0.1, max_delay=0.3)
        policy.call(_Flaky(3), rng=_Recorder(), sleep=lambda _: None)
        assert draws == [
            (0.0, pytest.approx(0.1)),
            (0.0, pytest.approx(0.2)),
            (0.0, pytest.approx(0.3)),
        ]

    def test_deadline_caps_the_sleep_and_then_raises(self):
        clock_values = iter([0.0, 0.95, 1.2])
        slept = []
        policy = RetryPolicy(attempts=5, base_delay=1.0, deadline=1.0)
        with pytest.raises(RuntimeError):
            policy.call(
                _Flaky(10),
                rng=_FixedRng(),
                sleep=slept.append,
                clock=lambda: next(clock_values),
            )
        # first retry: 0.05s remained of the deadline, so the 1.0s draw is
        # clamped; second retry finds the deadline expired and re-raises
        assert slept == [pytest.approx(0.05)]

    def test_on_retry_observes_each_backoff(self):
        seen = []
        policy = RetryPolicy(attempts=3, base_delay=0.1)
        policy.call(
            _Flaky(2),
            rng=_FixedRng(),
            sleep=lambda _: None,
            on_retry=lambda attempt, error, delay: seen.append(
                (attempt, str(error), delay)
            ),
        )
        assert seen == [
            (0, "transient", pytest.approx(0.1)),
            (1, "transient", pytest.approx(0.2)),
        ]

    def test_single_attempt_policy_never_retries(self):
        fn = _Flaky(1)
        with pytest.raises(RuntimeError):
            RetryPolicy(attempts=1).call(fn, sleep=lambda _: None)
        assert fn.calls == 1
