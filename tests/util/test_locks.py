"""Tests for the cross-process file lock."""

import multiprocessing
import time
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.util.locks import FileLock, LockTimeoutError


class TestFileLockBasics:
    def test_acquire_release_cycle(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        assert not lock.locked
        with lock:
            assert lock.locked
            assert (tmp_path / "a.lock").exists()
        assert not lock.locked

    def test_release_is_idempotent(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        lock.acquire()
        lock.release()
        lock.release()
        assert not lock.locked

    def test_double_acquire_on_one_instance_raises(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        with lock:
            with pytest.raises(ReproError, match="already held"):
                lock.acquire()

    def test_creates_parent_directories(self, tmp_path):
        with FileLock(tmp_path / "deep" / "nested" / "a.lock"):
            assert (tmp_path / "deep" / "nested" / "a.lock").exists()

    def test_reacquire_after_release(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        with lock:
            pass
        with lock:
            assert lock.locked

    def test_timeout_when_held_elsewhere(self, tmp_path):
        holder = FileLock(tmp_path / "a.lock")
        holder.acquire()
        try:
            waiter = FileLock(tmp_path / "a.lock", timeout=0.2)
            started = time.monotonic()
            with pytest.raises(LockTimeoutError):
                waiter.acquire()
            assert time.monotonic() - started >= 0.15
        finally:
            holder.release()

    def test_second_instance_can_lock_after_release(self, tmp_path):
        first = FileLock(tmp_path / "a.lock")
        first.acquire()
        first.release()
        second = FileLock(tmp_path / "a.lock", timeout=0.5)
        with second:
            assert second.locked


def _locked_append(path_str: str, log_str: str, hold_seconds: float) -> None:
    """Worker: append one line to the log while holding the lock."""
    with FileLock(Path(path_str)):
        log = Path(log_str)
        content = log.read_text() if log.exists() else ""
        time.sleep(hold_seconds)  # widen the race window
        log.write_text(content + "x\n")


class TestFileLockAcrossProcesses:
    def test_mutual_exclusion_across_processes(self, tmp_path):
        """Read-modify-write under the lock never loses an update."""
        lock_path = str(tmp_path / "shared.lock")
        log_path = str(tmp_path / "log.txt")
        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(
                target=_locked_append, args=(lock_path, log_path, 0.05)
            )
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30)
            assert worker.exitcode == 0
        assert Path(log_path).read_text() == "x\n" * 4
