"""Tests for the cross-process file lock."""

import fcntl
import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.util.locks as locks_module
from repro.errors import ReproError
from repro.util.locks import FileLock, LockTimeoutError


class TestFileLockBasics:
    def test_acquire_release_cycle(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        assert not lock.locked
        with lock:
            assert lock.locked
            assert (tmp_path / "a.lock").exists()
        assert not lock.locked

    def test_release_is_idempotent(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        lock.acquire()
        lock.release()
        lock.release()
        assert not lock.locked

    def test_double_acquire_on_one_instance_raises(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        with lock:
            with pytest.raises(ReproError, match="already held"):
                lock.acquire()

    def test_creates_parent_directories(self, tmp_path):
        with FileLock(tmp_path / "deep" / "nested" / "a.lock"):
            assert (tmp_path / "deep" / "nested" / "a.lock").exists()

    def test_reacquire_after_release(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        with lock:
            pass
        with lock:
            assert lock.locked

    def test_timeout_when_held_elsewhere(self, tmp_path):
        holder = FileLock(tmp_path / "a.lock")
        holder.acquire()
        try:
            waiter = FileLock(tmp_path / "a.lock", timeout=0.2)
            started = time.monotonic()
            with pytest.raises(LockTimeoutError):
                waiter.acquire()
            assert time.monotonic() - started >= 0.15
        finally:
            holder.release()

    def test_second_instance_can_lock_after_release(self, tmp_path):
        first = FileLock(tmp_path / "a.lock")
        first.acquire()
        first.release()
        second = FileLock(tmp_path / "a.lock", timeout=0.5)
        with second:
            assert second.locked


def _locked_append(path_str: str, log_str: str, hold_seconds: float) -> None:
    """Worker: append one line to the log while holding the lock."""
    with FileLock(Path(path_str)):
        log = Path(log_str)
        content = log.read_text() if log.exists() else ""
        time.sleep(hold_seconds)  # widen the race window
        log.write_text(content + "x\n")


class TestFileLockAcrossProcesses:
    def test_mutual_exclusion_across_processes(self, tmp_path):
        """Read-modify-write under the lock never loses an update."""
        lock_path = str(tmp_path / "shared.lock")
        log_path = str(tmp_path / "log.txt")
        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(
                target=_locked_append, args=(lock_path, log_path, 0.05)
            )
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30)
            assert worker.exitcode == 0
        assert Path(log_path).read_text() == "x\n" * 4

    def test_mutual_exclusion_across_processes_fallback(self, tmp_path, monkeypatch):
        """The O_EXCL fallback path excludes too (children inherit the patch)."""
        monkeypatch.setattr(locks_module, "fcntl", None)
        lock_path = str(tmp_path / "shared.lock")
        log_path = str(tmp_path / "log.txt")
        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(
                target=_locked_append, args=(lock_path, log_path, 0.05)
            )
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30)
            assert worker.exitcode == 0
        assert Path(log_path).read_text() == "x\n" * 4


class TestCloseOnExec:
    def test_lock_fd_has_cloexec_flag(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        with lock:
            flags = fcntl.fcntl(lock._fd, fcntl.F_GETFD)
            assert flags & fcntl.FD_CLOEXEC

    def test_exec_child_does_not_inherit_flock(self, tmp_path):
        """Regression: a worker exec'd while the parent holds the lock must
        not keep the flock alive after the parent releases.

        Without ``O_CLOEXEC`` the exec'd child's inherited fd keeps the
        open file description — and with it the flock — referenced, so a
        second acquire times out even though the parent is long done.
        """
        lock_path = tmp_path / "a.lock"
        holder = FileLock(lock_path)
        holder.acquire()
        child = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"],
            close_fds=False,  # simulate a sloppy spawner leaking fds
        )
        try:
            # Crash-style teardown: close the fd without an explicit unlock.
            fd, holder._fd = holder._fd, None
            os.close(fd)
            second = FileLock(lock_path, timeout=5.0)
            with second:  # must not block on the child's inherited fd
                assert second.locked
        finally:
            child.kill()
            child.wait(timeout=10)


class TestStaleLockBreaking:
    """The fallback (no fcntl) stale-file breaking protocol."""

    @pytest.fixture(autouse=True)
    def _no_fcntl(self, monkeypatch):
        monkeypatch.setattr(locks_module, "fcntl", None)

    @staticmethod
    def _make_stale(path: Path, age: float = 3600.0) -> os.stat_result:
        path.write_text("12345:deadbeef")
        past = time.time() - age
        os.utime(path, (past, past))
        return path.stat()

    def test_stale_lock_is_broken_and_acquired(self, tmp_path):
        lock_path = tmp_path / "a.lock"
        self._make_stale(lock_path)
        lock = FileLock(lock_path, timeout=5.0, stale_seconds=60.0)
        with lock:
            assert lock.locked
            # The new lock file carries this holder's token, not the
            # stale owner's remnants.
            assert lock_path.read_text() == lock._token

    def test_only_one_breaker_wins(self, tmp_path):
        """Two waiters statting the same stale file: one break succeeds."""
        lock_path = tmp_path / "a.lock"
        st = self._make_stale(lock_path)
        first = FileLock(lock_path, stale_seconds=60.0)
        second = FileLock(lock_path, stale_seconds=60.0)
        outcomes = [first._break_stale(st), second._break_stale(st)]
        assert outcomes.count(True) == 1
        assert not lock_path.exists()

    def test_break_hands_back_fresh_lock(self, tmp_path):
        """A lock re-created between stat and break must survive the break.

        Regression for the stat-then-unlink race: the old code would
        unlink whatever file was at the path, deleting a *fresh* lock
        another process had just created.
        """
        lock_path = tmp_path / "a.lock"
        stale_st = self._make_stale(lock_path)
        # Simulate the holder releasing and a new holder acquiring in the
        # window between our stat and our break.
        lock_path.unlink()
        lock_path.write_text("999:freshtoken")
        breaker = FileLock(lock_path, stale_seconds=60.0)
        assert breaker._break_stale(stale_st) is False
        assert lock_path.read_text() == "999:freshtoken"
        assert not list(tmp_path.glob("*.break.*"))  # no claim debris

    def test_release_does_not_unlink_foreign_lock(self, tmp_path):
        """Release after our lock was stale-broken must not evict the new holder."""
        lock_path = tmp_path / "a.lock"
        mine = FileLock(lock_path)
        mine.acquire()
        # Another process broke our (stale) lock and acquired its own.
        lock_path.write_text("999:freshtoken")
        mine.release()
        assert lock_path.exists()
        assert lock_path.read_text() == "999:freshtoken"

    def test_release_unlinks_own_lock(self, tmp_path):
        lock_path = tmp_path / "a.lock"
        lock = FileLock(lock_path)
        lock.acquire()
        lock.release()
        assert not lock_path.exists()

    def test_fresh_lock_still_times_out_waiters(self, tmp_path):
        lock_path = tmp_path / "a.lock"
        holder = FileLock(lock_path)
        holder.acquire()
        try:
            waiter = FileLock(lock_path, timeout=0.2, stale_seconds=60.0)
            with pytest.raises(LockTimeoutError):
                waiter.acquire()
            assert lock_path.read_text() == holder._token
        finally:
            holder.release()
