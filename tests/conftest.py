"""Shared fixtures for the test-suite.

Expensive artefacts (the synthetic datasets, their extraction results and
base matrices) are built once per session and reused by many test modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import build_toy_movie_database, generate_google_play, generate_tmdb
from repro.retrofit.extraction import extract_text_values
from repro.retrofit.initialization import initialise_vectors
from repro.text.tokenizer import Tokenizer


@pytest.fixture(scope="session")
def small_tmdb():
    """A small synthetic TMDB dataset shared across the suite."""
    return generate_tmdb(num_movies=60, seed=1, embedding_dimension=24)


@pytest.fixture(scope="session")
def small_google_play():
    """A small synthetic Google Play dataset shared across the suite."""
    return generate_google_play(num_apps=40, seed=1, embedding_dimension=24)


@pytest.fixture(scope="session")
def toy_dataset():
    """The Figure-3 toy dataset (3 movies, 2 countries, 2-d embedding)."""
    return build_toy_movie_database()


@pytest.fixture(scope="session")
def tmdb_extraction(small_tmdb):
    """Extraction result of the small TMDB database."""
    return extract_text_values(small_tmdb.database)


@pytest.fixture(scope="session")
def tmdb_tokenizer(small_tmdb):
    """Tokenizer built over the TMDB embedding vocabulary."""
    return Tokenizer(small_tmdb.embedding)


@pytest.fixture(scope="session")
def tmdb_base(small_tmdb, tmdb_extraction, tmdb_tokenizer):
    """Initialised base matrix W0 for the small TMDB extraction."""
    return initialise_vectors(tmdb_extraction, small_tmdb.embedding, tmdb_tokenizer)


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(0)
