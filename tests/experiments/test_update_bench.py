"""Tests for the incremental-update benchmark harness and its CLI."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets import generate_tmdb
from repro.experiments.runner import ExperimentSizes
from repro.experiments.update_bench import (
    run_update_benchmark,
    synthesize_tmdb_delta,
)


class TestSynthesizeDelta:
    def test_delta_applies_cleanly_and_grows_the_database(self):
        dataset = generate_tmdb(num_movies=40, seed=3, embedding_dimension=16)
        movies = dataset.database.table("movies")
        n_before = len(movies)
        rng = np.random.default_rng(0)
        delta = synthesize_tmdb_delta(dataset.database, rng, 3)
        delta.apply_to(dataset.database)
        assert len(movies) == n_before + 3
        summary = delta.summary()
        assert summary["inserts"] >= 3 and summary["updates"] == 1
        assert summary["deletes"] == 1

    def test_insert_only_mode(self):
        dataset = generate_tmdb(num_movies=40, seed=3, embedding_dimension=16)
        rng = np.random.default_rng(0)
        delta = synthesize_tmdb_delta(
            dataset.database, rng, 2, include_update=False, include_delete=False
        )
        # 1 new person + 2 × (movie + 3 link rows + review)
        assert delta.summary() == {"inserts": 11, "updates": 0, "deletes": 0}


class TestRunUpdateBenchmark:
    def test_tiny_run_meets_the_agreement_gate(self):
        table, payload = run_update_benchmark(
            sizes=ExperimentSizes.tiny(), method="RN", n_deltas=2
        )
        assert payload["n_deltas"] == 2
        assert len(payload["update_seconds"]) == 2
        assert payload["seconds"] > 0
        assert payload["cold_rebuild_seconds"] > 0
        assert payload["agrees_with_cold"] is True
        assert payload["max_cosine_distance_vs_cold"] < 1e-3
        assert len(table.rows) == 2
        for entry in payload["deltas"]:
            assert entry["serving"]["index_updated_in_place"]
        # the payload is what --out writes: it must be JSON-serialisable
        json.dumps(payload)

    def test_unknown_method_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_update_benchmark(sizes=ExperimentSizes.tiny(), method="DW")


class TestCli:
    def test_parser_accepts_update_arguments(self):
        args = build_parser().parse_args([
            "update", "--sizes", "tiny", "--method", "RO",
            "--deltas", "2", "--fraction", "0.05", "--churn",
        ])
        assert args.command == "update"
        assert args.method == "RO"
        assert args.churn is True

    def test_update_command_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "update.json"
        code = main([
            "update", "--sizes", "tiny", "--deltas", "2", "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["method"] == "RN"
        assert payload["speedup_vs_cold"] > 0
        printed = capsys.readouterr().out
        assert "incremental updates" in printed
        assert "mean update" in printed


class TestSuiteCacheVersionResilience:
    def test_incompatible_cached_suite_triggers_rebuild(self, tmp_path):
        """A suite artifact from an older store format must be rebuilt, not
        crash the run (the STORE_VERSION bump invalidates v1 caches)."""
        import json as json_mod

        from repro.experiments.engine import RunContext

        sizes = ExperimentSizes.tiny()
        first = RunContext(sizes=sizes, cache_dir=tmp_path)
        first.suite("tmdb", methods=("PV",))
        assert first.stats.suite_builds == 1
        # age every cached artifact to an incompatible store version
        for header in (tmp_path / "suites").glob("suite_*.json"):
            payload = json_mod.loads(header.read_text())
            payload["version"] = 1
            header.write_text(json_mod.dumps(payload))
        second = RunContext(sizes=sizes, cache_dir=tmp_path)
        second.suite("tmdb", methods=("PV",))
        assert second.stats.suite_builds == 1  # rebuilt, no StoreFormatError
        assert second.stats.suite_disk_hits == 0


class TestBenchIntegration:
    def test_incremental_update_microbenchmark_payload(self):
        from repro.experiments.bench import MICROBENCHMARKS, bench_incremental_update

        assert "incremental_update" in MICROBENCHMARKS
        payload = bench_incremental_update(ExperimentSizes.tiny(), repeats=2)
        assert payload["seconds"] > 0
        # the cold reference intentionally lives under a non-gated key
        assert "cold_rebuild_seconds" in payload

    def test_gate_covers_incremental_update(self):
        from repro.experiments.bench import compare_against_baseline

        baseline = {"benchmarks": {"incremental_update": {"seconds": 0.05}}}
        current = {"benchmarks": {"incremental_update": {"seconds": 0.30}}}
        regressions = compare_against_baseline(current, baseline, threshold=3.0)
        assert any("incremental_update" in line for line in regressions)
