"""Tests for the perf harness (``repro bench``)."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import bench
from repro.experiments.runner import ExperimentSizes

TINY = ExperimentSizes.tiny()


class TestMicrobenchmarks:
    def test_walk_generation_payload(self):
        payload = bench.bench_walk_generation(TINY, repeats=1)
        assert payload["seconds"] > 0
        assert payload["n_walks"] > 0
        assert payload["walks_per_second"] > 0

    def test_sgns_epoch_payload_with_naive_speedup(self):
        payload = bench.bench_sgns_epoch(TINY, repeats=1, include_naive=True)
        assert payload["seconds"] > 0
        assert payload["naive_seconds"] > 0
        assert payload["speedup_vs_naive"] == pytest.approx(
            payload["naive_seconds"] / payload["seconds"]
        )

    def test_index_topk_payload(self):
        payload = bench.bench_index_topk(TINY, repeats=1, n_rows=512, n_queries=16)
        assert payload["flat"]["seconds"] > 0
        assert payload["ivf"]["seconds"] > 0


class TestRunBench:
    def test_full_payload_is_json_serialisable(self, tmp_path):
        payload = bench.run_bench(
            sizes_name="tiny",
            repeats=1,
            include_naive=False,
            include_end_to_end=False,
            rev="test",
        )
        assert payload["rev"] == "test"
        assert set(bench.MICROBENCHMARKS) <= set(payload["benchmarks"])
        path = bench.save_bench(payload, tmp_path / "BENCH_test.json")
        rebuilt = bench.load_bench(path)
        assert rebuilt == json.loads(json.dumps(payload))

    def test_save_into_directory_uses_rev_name(self, tmp_path):
        payload = {"rev": "abc", "benchmarks": {}}
        path = bench.save_bench(payload, tmp_path)
        assert path.name == "BENCH_abc.json"

    def test_load_rejects_non_bench_payloads(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(ExperimentError):
            bench.load_bench(bad)
        with pytest.raises(ExperimentError):
            bench.load_bench(tmp_path / "missing.json")


class TestRegressionGate:
    @staticmethod
    def _payload(walk_seconds: float, naive_seconds: float = 1.0):
        return {
            "rev": "x",
            "benchmarks": {
                "walk_generation": {"seconds": walk_seconds},
                "sgns_epoch": {
                    "seconds": 0.1,
                    "naive_seconds": naive_seconds,
                },
                "table2_end_to_end": {"seconds": 100.0},
            },
        }

    def test_no_regression_within_threshold(self):
        current = self._payload(0.2)
        baseline = self._payload(0.1)
        assert bench.compare_against_baseline(current, baseline, threshold=3.0) == []

    def test_regression_beyond_threshold_reported(self):
        current = self._payload(0.5)
        baseline = self._payload(0.1)
        regressions = bench.compare_against_baseline(current, baseline, threshold=3.0)
        assert len(regressions) == 1
        assert "walk_generation" in regressions[0]

    def test_end_to_end_and_naive_timings_not_gated(self):
        current = self._payload(0.1, naive_seconds=99.0)
        current["benchmarks"]["table2_end_to_end"]["seconds"] = 9999.0
        baseline = self._payload(0.1, naive_seconds=1.0)
        assert bench.compare_against_baseline(current, baseline, threshold=3.0) == []

    def test_sub_floor_baselines_not_gated(self):
        """Millisecond-scale baselines are tracked, never gated."""
        baseline = self._payload(0.001)
        current = self._payload(1.0)  # 1000x "regression" on a 1ms timing
        assert bench.compare_against_baseline(current, baseline) == []
        # but an explicit floor of zero gates it
        assert len(
            bench.compare_against_baseline(current, baseline, min_seconds=0.0)
        ) == 1

    def test_missing_key_in_current_is_ignored(self):
        baseline = self._payload(0.1)
        current = {"rev": "y", "benchmarks": {}}
        assert bench.compare_against_baseline(current, baseline) == []

    def test_collect_seconds_flattens_nested_payloads(self):
        payload = {
            "benchmarks": {
                "index_topk": {
                    "flat": {"seconds": 0.5},
                    "ivf": {"seconds": 0.1},
                    "k": 10,
                }
            }
        }
        timings = bench._collect_seconds(payload)
        assert timings == {
            "index_topk.flat": 0.5,
            "index_topk.ivf": 0.1,
        }
