"""Tests for the dataset → task-input mapping helpers."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.task_data import (
    app_category_data,
    budget_regression_data,
    director_classification_data,
    genre_link_pairs,
    genre_relation_names,
    language_imputation_data,
)
from repro.retrofit.extraction import extract_text_values


@pytest.fixture(scope="module")
def gp_extraction(small_google_play):
    return extract_text_values(small_google_play.database)


class TestDirectorData:
    def test_indices_and_labels(self, tmdb_extraction, small_tmdb):
        data = director_classification_data(tmdb_extraction, small_tmdb)
        assert len(data) > 0
        assert set(np.unique(data.labels)) <= {0, 1}
        assert data.n_classes == 2
        for index in data.indices:
            assert tmdb_extraction.records[index].category == "persons.name"

    def test_labels_match_ground_truth(self, tmdb_extraction, small_tmdb):
        data = director_classification_data(tmdb_extraction, small_tmdb)
        is_us = small_tmdb.director_is_us()
        for index, label in zip(data.indices, data.labels):
            name = tmdb_extraction.records[index].text
            assert is_us[name] == bool(label)


class TestLanguageData:
    def test_indices_point_to_titles(self, tmdb_extraction, small_tmdb):
        data = language_imputation_data(tmdb_extraction, small_tmdb)
        assert len(data) == small_tmdb.num_movies
        for index, label in zip(data.indices, data.labels):
            record = tmdb_extraction.records[index]
            assert record.category == "movies.title"
            assert small_tmdb.movie_language[record.text] == data.label_names[label]


class TestBudgetData:
    def test_targets_match_ground_truth(self, tmdb_extraction, small_tmdb):
        indices, targets = budget_regression_data(tmdb_extraction, small_tmdb)
        assert len(indices) == len(targets) == small_tmdb.num_movies
        for index, target in zip(indices, targets):
            title = tmdb_extraction.records[index].text
            assert small_tmdb.movie_budget[title] == pytest.approx(target)


class TestAppData:
    def test_indices_point_to_app_names(self, gp_extraction, small_google_play):
        data = app_category_data(gp_extraction, small_google_play)
        assert len(data) == small_google_play.num_apps
        assert data.n_classes == 33
        for index in data.indices:
            assert gp_extraction.records[index].category == "apps.name"


class TestGenreLinks:
    def test_relation_names_touch_genres(self, small_tmdb):
        names = genre_relation_names(small_tmdb.database)
        assert names
        assert all("genres.name" in name for name in names)

    def test_pairs_balanced_and_valid(self, tmdb_extraction, small_tmdb, rng):
        pairs = genre_link_pairs(tmdb_extraction, small_tmdb, n_pairs=60, rng=rng)
        assert len(pairs) == 2 * int(pairs.labels.sum())
        for source, target in zip(pairs.source_indices, pairs.target_indices):
            assert tmdb_extraction.records[source].category == "movies.title"
            assert tmdb_extraction.records[target].category == "genres.name"

    def test_positive_pairs_are_true_relations(self, tmdb_extraction, small_tmdb, rng):
        pairs = genre_link_pairs(tmdb_extraction, small_tmdb, n_pairs=50, rng=rng)
        for source, target, label in zip(
            pairs.source_indices, pairs.target_indices, pairs.labels
        ):
            title = tmdb_extraction.records[source].text
            genre = tmdb_extraction.records[target].text
            if label == 1.0:
                assert genre in small_tmdb.movie_genres[title]
            else:
                assert genre not in small_tmdb.movie_genres[title]

    def test_n_pairs_caps_positives(self, tmdb_extraction, small_tmdb, rng):
        pairs = genre_link_pairs(tmdb_extraction, small_tmdb, n_pairs=10, rng=rng)
        assert int(pairs.labels.sum()) == 10


class TestErrors:
    def test_missing_directors_raise(self, gp_extraction, small_tmdb):
        with pytest.raises(ExperimentError):
            director_classification_data(gp_extraction, small_tmdb)
