"""Tests for the embedding factory producing all compared embedding types."""

import numpy as np
import pytest

from repro.deepwalk.deepwalk import DeepWalkConfig
from repro.errors import ExperimentError
from repro.experiments.embedding_factory import build_embedding_suite
from repro.retrofit.hyperparams import RetroHyperparameters


@pytest.fixture(scope="module")
def toy_suite(toy_dataset):
    return build_embedding_suite(
        toy_dataset.database,
        toy_dataset.embedding,
        deepwalk_config=DeepWalkConfig(dimension=4, walks_per_node=2,
                                       walk_length=4, epochs=1),
    )


class TestBuildEmbeddingSuite:
    def test_all_methods_present(self, toy_suite):
        assert set(toy_suite.names) == {
            "PV", "MF", "RO", "RN", "DW",
            "PV+DW", "MF+DW", "RO+DW", "RN+DW",
        }

    def test_runtimes_recorded(self, toy_suite):
        for method in ("MF", "RO", "RN", "DW"):
            assert toy_suite.runtimes[method] >= 0.0
        assert toy_suite.preprocessing_seconds > 0.0

    def test_matrix_shapes(self, toy_suite):
        n = len(toy_suite.extraction)
        base_dim = toy_suite.base.dimension
        assert toy_suite.get("PV").matrix.shape == (n, base_dim)
        assert toy_suite.get("DW").matrix.shape == (n, 4)
        assert toy_suite.get("RN+DW").matrix.shape == (n, base_dim + 4)

    def test_pv_equals_base(self, toy_suite):
        assert np.allclose(toy_suite.get("PV").matrix, toy_suite.base.matrix)

    def test_unknown_method_rejected(self, toy_dataset):
        with pytest.raises(ExperimentError):
            build_embedding_suite(
                toy_dataset.database, toy_dataset.embedding, methods=("XX",)
            )

    def test_get_unknown_embedding(self, toy_suite):
        with pytest.raises(ExperimentError):
            toy_suite.get("nope")

    def test_subset_of_methods(self, toy_dataset):
        suite = build_embedding_suite(
            toy_dataset.database, toy_dataset.embedding, methods=("PV", "RN")
        )
        assert set(suite.names) == {"PV", "RN"}

    def test_no_combinations_without_deepwalk(self, toy_dataset):
        suite = build_embedding_suite(
            toy_dataset.database, toy_dataset.embedding, methods=("PV", "RO")
        )
        assert all("+" not in name for name in suite.names)

    def test_exclude_columns_propagates(self, small_tmdb):
        suite = build_embedding_suite(
            small_tmdb.database,
            small_tmdb.embedding,
            methods=("PV",),
            exclude_columns=("movies.original_language",),
        )
        assert "movies.original_language" not in suite.extraction.categories

    def test_custom_hyperparameters_change_result(self, toy_dataset):
        default = build_embedding_suite(
            toy_dataset.database, toy_dataset.embedding, methods=("RN",)
        )
        strong = build_embedding_suite(
            toy_dataset.database, toy_dataset.embedding, methods=("RN",),
            rn_params=RetroHyperparameters(alpha=1.0, beta=0.0, gamma=9.0, delta=0.0),
        )
        assert not np.allclose(default.get("RN").matrix, strong.get("RN").matrix)
