"""Tests for the concurrent-serving benchmark harness and its CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentSizes
from repro.experiments.serve_bench import run_serve_benchmark


class TestRunServeBenchmark:
    def test_tiny_run_reports_all_phases_and_agrees(self):
        table, payload = run_serve_benchmark(
            sizes=ExperimentSizes.tiny(),
            readers=2,
            queries_per_reader=40,
            pipeline_depth=8,
            n_deltas=2,
            corpus_scale=2,
            delta_interval_seconds=0.01,
        )
        assert [row["mode"] for row in table.rows] == [
            "single-thread", "concurrent", "conc.+churn",
        ]
        assert payload["baseline"]["qps"] > 0
        assert payload["concurrent"]["qps"] > 0
        assert payload["concurrent"]["queries_answered"] == 80
        assert payload["concurrent_under_churn"]["queries_answered"] == 80
        assert payload["concurrent"]["mean_batch_size"] >= 1.0
        assert payload["updates"]["published"] >= 1
        assert payload["updates"]["failures"] == 0
        assert payload["updates"]["mean_lag_seconds"] > 0
        # the correctness half of the gate: concurrent == serial ≤ 1e-3
        assert payload["max_cosine_distance_vs_serial"] <= 1e-3
        # the payload is what --out writes: it must be JSON-serialisable
        json.dumps(payload)

    def test_unknown_method_rejected(self):
        with pytest.raises(ExperimentError):
            run_serve_benchmark(sizes=ExperimentSizes.tiny(), method="PV")

    def test_bad_scale_rejected(self):
        with pytest.raises(ExperimentError):
            run_serve_benchmark(sizes=ExperimentSizes.tiny(), corpus_scale=0)
        with pytest.raises(ExperimentError):
            run_serve_benchmark(sizes=ExperimentSizes.tiny(), readers=0)


class TestServeBenchCli:
    def test_parser_accepts_serve_bench(self):
        args = build_parser().parse_args([
            "serve-bench", "--sizes", "tiny", "--readers", "2",
            "--queries", "16", "--deltas", "1", "--corpus-scale", "1",
        ])
        assert args.command == "serve-bench"
        assert args.readers == 2
        assert args.corpus_scale == 1

    def test_cli_end_to_end_writes_json(self, tmp_path):
        out = tmp_path / "serve.json"
        code = main([
            "serve-bench", "--sizes", "tiny", "--readers", "2",
            "--queries", "24", "--pipeline-depth", "8", "--deltas", "1",
            "--corpus-scale", "1", "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["readers"] == 2
        assert payload["concurrent"]["qps"] > 0
        assert payload["max_cosine_distance_vs_serial"] <= 1e-3
