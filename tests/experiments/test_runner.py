"""Tests for the experiment result table and sizing presets."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentSizes, ResultTable


class TestResultTable:
    def test_add_and_read_rows(self):
        table = ResultTable("demo", ["method", "accuracy"])
        table.add_row(method="PV", accuracy=0.8)
        table.add_row(method="RN", accuracy=0.9)
        assert table.column("accuracy") == [0.8, 0.9]
        assert table.row_for("method", "RN")["accuracy"] == 0.9

    def test_unknown_column_rejected(self):
        table = ResultTable("demo", ["a"])
        with pytest.raises(ExperimentError):
            table.add_row(b=1)
        with pytest.raises(ExperimentError):
            table.column("b")

    def test_missing_key_becomes_blank(self):
        table = ResultTable("demo", ["a", "b"])
        table.add_row(a=1)
        assert table.rows[0]["b"] == ""

    def test_row_for_missing_value(self):
        table = ResultTable("demo", ["a"])
        with pytest.raises(ExperimentError):
            table.row_for("a", 42)

    def test_to_text_contains_all_cells(self):
        table = ResultTable("demo", ["method", "value"])
        table.add_row(method="PV", value=0.1234)
        table.add_note("a note")
        text = table.to_text()
        assert "demo" in text and "PV" in text and "0.1234" in text
        assert "a note" in text

    def test_to_text_formats_large_numbers(self):
        table = ResultTable("demo", ["value"])
        table.add_row(value=1234567.0)
        assert "1,234,567.0" in table.to_text()

    def test_to_text_renders_ints_as_ints(self):
        import numpy as np

        table = ResultTable("demo", ["count", "flag"])
        table.add_row(count=1234567, flag=True)
        table.add_row(count=np.int64(42), flag=np.bool_(False))
        text = table.to_text()
        assert "1,234,567" in text and "1,234,567.0" not in text
        assert "42" in text
        assert "True" in text and "False" in text

    def test_to_text_handles_none_and_nan(self):
        import numpy as np

        table = ResultTable("demo", ["a", "b"])
        table.add_row(a=None, b=float("nan"))
        table.add_row(a=np.nan, b=0.5)
        text = table.to_text()  # must not crash
        assert "-" in text and "0.5000" in text
        assert "nan" not in text.lower().replace("name", "")

    def test_to_text_without_rows(self):
        table = ResultTable("empty", ["a"])
        assert "empty" in table.to_text()

    def test_dict_roundtrip_converts_numpy_scalars(self):
        import json

        import numpy as np

        table = ResultTable("demo", ["method", "accuracy", "n"])
        table.add_row(method="RN", accuracy=np.float64(0.75), n=np.int64(3))
        table.add_note("a note")
        payload = json.loads(json.dumps(table.to_dict()))
        rebuilt = ResultTable.from_dict(payload)
        assert rebuilt.name == table.name
        assert rebuilt.columns == table.columns
        assert rebuilt.rows == [{"method": "RN", "accuracy": 0.75, "n": 3}]
        assert rebuilt.notes == ["a note"]
        assert isinstance(rebuilt.rows[0]["n"], int)

    def test_from_dict_rejects_malformed_payload(self):
        with pytest.raises(ExperimentError):
            ResultTable.from_dict({"columns": ["a"]})


class TestExperimentSizes:
    def test_presets(self):
        assert ExperimentSizes.preset("quick") == ExperimentSizes.quick()
        assert ExperimentSizes.preset("paper") == ExperimentSizes.paper_scale()
        assert ExperimentSizes.preset("tiny").num_movies < ExperimentSizes.quick().num_movies
        with pytest.raises(ExperimentError):
            ExperimentSizes.preset("bogus")

    def test_dict_roundtrip(self):
        sizes = ExperimentSizes.quick()
        assert ExperimentSizes.from_dict(sizes.to_dict()) == sizes

    def test_quick_is_smaller_than_paper_scale(self):
        quick = ExperimentSizes.quick()
        paper = ExperimentSizes.paper_scale()
        assert quick.num_movies < paper.num_movies
        assert quick.trials < paper.trials
        assert quick.hidden_units[0] < paper.hidden_units[0]

    def test_frozen(self):
        sizes = ExperimentSizes.quick()
        with pytest.raises(Exception):
            sizes.num_movies = 10  # type: ignore[misc]
