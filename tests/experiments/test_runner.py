"""Tests for the experiment result table and sizing presets."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentSizes, ResultTable


class TestResultTable:
    def test_add_and_read_rows(self):
        table = ResultTable("demo", ["method", "accuracy"])
        table.add_row(method="PV", accuracy=0.8)
        table.add_row(method="RN", accuracy=0.9)
        assert table.column("accuracy") == [0.8, 0.9]
        assert table.row_for("method", "RN")["accuracy"] == 0.9

    def test_unknown_column_rejected(self):
        table = ResultTable("demo", ["a"])
        with pytest.raises(ExperimentError):
            table.add_row(b=1)
        with pytest.raises(ExperimentError):
            table.column("b")

    def test_missing_key_becomes_blank(self):
        table = ResultTable("demo", ["a", "b"])
        table.add_row(a=1)
        assert table.rows[0]["b"] == ""

    def test_row_for_missing_value(self):
        table = ResultTable("demo", ["a"])
        with pytest.raises(ExperimentError):
            table.row_for("a", 42)

    def test_to_text_contains_all_cells(self):
        table = ResultTable("demo", ["method", "value"])
        table.add_row(method="PV", value=0.1234)
        table.add_note("a note")
        text = table.to_text()
        assert "demo" in text and "PV" in text and "0.1234" in text
        assert "a note" in text

    def test_to_text_formats_large_numbers(self):
        table = ResultTable("demo", ["value"])
        table.add_row(value=1234567.0)
        assert "1,234,567.0" in table.to_text()

    def test_to_text_without_rows(self):
        table = ResultTable("empty", ["a"])
        assert "empty" in table.to_text()


class TestExperimentSizes:
    def test_quick_is_smaller_than_paper_scale(self):
        quick = ExperimentSizes.quick()
        paper = ExperimentSizes.paper_scale()
        assert quick.num_movies < paper.num_movies
        assert quick.trials < paper.trials
        assert quick.hidden_units[0] < paper.hidden_units[0]

    def test_frozen(self):
        sizes = ExperimentSizes.quick()
        with pytest.raises(Exception):
            sizes.num_movies = 10  # type: ignore[misc]
