"""Tests of the declarative experiment registry, the engine and the CLI.

The heavy assertions run at ``ExperimentSizes.tiny()`` so that the whole
module stays in smoke-test territory; the acceptance property — one suite
training shared by several experiments, and cross-process reuse through the
on-disk artifact cache — is asserted via the context's build/hit counters.
"""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.engine import (
    RunContext,
    RunResult,
    config_fingerprint,
    run_experiment,
    run_experiments,
)
from repro.experiments.registry import (
    ExperimentRegistry,
    ExperimentSpec,
    default_registry,
)
from repro.experiments.runner import ExperimentSizes, ResultTable

TINY = ExperimentSizes.tiny()


def _demo_spec(name="demo", **kwargs):
    def runner(ctx, greeting="hi"):
        table = ResultTable(name, ["greeting"])
        table.add_row(greeting=greeting)
        return table

    defaults = {"title": "Demo", "reference": "Figure 0", "runner": runner}
    defaults.update(kwargs)
    return ExperimentSpec(name=name, **defaults)


class TestRegistry:
    def test_register_and_get(self):
        registry = ExperimentRegistry()
        spec = registry.register(_demo_spec())
        assert registry.get("demo") is spec
        assert "demo" in registry
        assert registry.names() == ["demo"]

    def test_duplicate_name_collides(self):
        registry = ExperimentRegistry()
        registry.register(_demo_spec())
        with pytest.raises(ExperimentError, match="already registered"):
            registry.register(_demo_spec())

    def test_same_spec_reregistration_is_idempotent(self):
        registry = ExperimentRegistry()
        spec = registry.register(_demo_spec())
        assert registry.register(spec) is spec
        assert len(registry) == 1

    def test_unknown_name_lists_registered(self):
        registry = ExperimentRegistry()
        registry.register(_demo_spec())
        with pytest.raises(ExperimentError, match="demo"):
            registry.get("nope")

    def test_invalid_spec_rejected(self):
        with pytest.raises(ExperimentError):
            _demo_spec(name="has space")
        with pytest.raises(ExperimentError):
            ExperimentSpec(name="x", title="t", reference="r", runner="not callable")

    def test_option_merging_keeps_defaults_for_none(self):
        spec = _demo_spec(default_options={"greeting": "hi", "k": 3})
        assert spec.options() == {"greeting": "hi", "k": 3}
        assert spec.options({"greeting": "yo"}) == {"greeting": "yo", "k": 3}
        assert spec.options({"greeting": None}) == {"greeting": "hi", "k": 3}
        assert spec.options({"new": None}) == {"greeting": "hi", "k": 3, "new": None}

    def test_default_registry_holds_all_paper_experiments(self):
        names = set(default_registry().names())
        expected = {
            "figure3", "figure4", "figure6", "figure7", "figure8", "figure9",
            "figure10", "figure11", "figure12a", "figure12b", "figure13",
            "figure14", "table1", "table2",
        }
        assert expected <= names


class TestEngineBasics:
    def test_run_experiment_with_custom_registry(self):
        registry = ExperimentRegistry()
        registry.register(_demo_spec(default_options={"greeting": "hi"}))
        result = run_experiment(
            "demo", sizes=TINY, options={"greeting": "yo"}, registry=registry
        )
        assert result.experiment == "demo"
        assert result.table.rows == [{"greeting": "yo"}]
        assert result.options == {"greeting": "yo"}
        assert result.seconds >= 0.0
        assert len(result.fingerprint) == 16

    def test_context_and_sizes_are_mutually_exclusive(self):
        registry = ExperimentRegistry()
        registry.register(_demo_spec())
        with pytest.raises(ExperimentError):
            run_experiment(
                "demo", sizes=TINY, context=RunContext(TINY), registry=registry
            )

    def test_run_experiments_validates_names_up_front(self):
        registry = ExperimentRegistry()
        calls = []

        def runner(ctx):
            calls.append(1)
            return ResultTable("demo", ["a"])

        registry.register(
            ExperimentSpec(name="demo", title="t", reference="r", runner=runner)
        )
        with pytest.raises(ExperimentError):
            run_experiments(["demo", "typo"], sizes=TINY, registry=registry)
        assert calls == []

    def test_fingerprint_tracks_sizes_and_options(self):
        payload = {"experiment": "x", "options": {"k": 1}}
        assert config_fingerprint(payload) == config_fingerprint(dict(payload))
        assert config_fingerprint(payload) != config_fingerprint(
            {"experiment": "x", "options": {"k": 2}}
        )

    def test_dataset_memoisation(self):
        ctx = RunContext(sizes=TINY)
        first = ctx.tmdb()
        assert ctx.tmdb() is first
        assert ctx.stats.dataset_builds == 1
        assert ctx.stats.dataset_hits == 1
        with pytest.raises(ExperimentError):
            ctx.dataset("bogus")


class TestSuiteCache:
    def test_suite_trained_once_across_figure8_and_table2(self):
        """The acceptance property: figure8 + table2 share one TMDB training."""
        ctx = RunContext(sizes=TINY)
        results = run_experiments(["figure8", "table2"], context=ctx)
        assert [r.experiment for r in results] == ["figure8", "table2"]
        # exactly one suite per dataset: TMDB (trained by figure8, reused by
        # table2) and GooglePlay (trained by table2)
        assert ctx.stats.suite_builds == 2
        assert ctx.stats.suite_memory_hits >= 1
        # table2 reports the runtimes recorded by the shared build
        table2 = results[1].table
        assert {row["method"] for row in table2.rows} == {"MF", "DW", "RO", "RN"}
        assert all(row["runtime_mean"] >= 0.0 for row in table2.rows)

    def test_disk_cache_reuses_suite_across_contexts(self, tmp_path):
        first = RunContext(sizes=TINY, cache_dir=tmp_path)
        table_a = run_experiment("figure8", context=first).table
        assert first.stats.suite_builds == 1
        assert first.stats.suite_disk_hits == 0

        second = RunContext(sizes=TINY, cache_dir=tmp_path)
        table_b = run_experiment("figure8", context=second).table
        assert second.stats.suite_builds == 0
        assert second.stats.suite_disk_hits == 1
        # identical artifacts + identical trial seeds => identical numbers
        assert table_a.rows == table_b.rows

    def test_disk_cache_distinguishes_configurations(self, tmp_path):
        ctx = RunContext(sizes=TINY, cache_dir=tmp_path)
        plain = ctx.suite("tmdb", methods=("PV",))
        excluded = ctx.suite(
            "tmdb", methods=("PV",), exclude_columns=("movies.original_language",)
        )
        assert ctx.stats.suite_builds == 2
        assert len(plain.extraction) != len(excluded.extraction)

    def test_fresh_build_bypasses_caches(self):
        ctx = RunContext(sizes=TINY)
        ctx.suite("tmdb", methods=("PV",))
        ctx.suite("tmdb", methods=("PV",), fresh=True)
        assert ctx.stats.suite_builds == 2
        assert ctx.stats.suite_memory_hits == 0

    def test_memory_cache_is_bounded(self, monkeypatch):
        import repro.experiments.engine as engine_module

        monkeypatch.setattr(engine_module, "SUITE_MEMORY_CAPACITY", 2)
        ctx = RunContext(sizes=TINY)
        excludes = ((), ("movies.original_language",), ("movies.title",))
        for exclude in excludes:
            ctx.suite("tmdb", methods=("PV",), exclude_columns=exclude)
        assert ctx.stats.suite_builds == 3
        assert len(ctx._suites) == 2  # oldest grid-point suite evicted

    def test_disk_cache_rejects_mismatched_config(self, tmp_path):
        ctx = RunContext(sizes=TINY, cache_dir=tmp_path)
        _, fingerprint = ctx.suite_with_fingerprint("tmdb", methods=("PV",))
        payload = ctx._suite_payload("tmdb", ("PV",), (), (), None, None)
        assert ctx._load_suite_artifact(fingerprint, ("PV",), payload) is not None
        # a fingerprint collision (different payload, same digest) must rebuild
        assert ctx._load_suite_artifact(fingerprint, ("PV",), {"other": 1}) is None

    def test_serving_session_memoised(self):
        ctx = RunContext(sizes=TINY)
        session = ctx.serving_session("PV", dataset="tmdb", methods=("PV",))
        again = ctx.serving_session("PV", dataset="tmdb", methods=("PV",))
        assert session is again
        assert ctx.stats.session_builds == 1
        assert ctx.stats.session_hits == 1


class TestRunResultSerialisation:
    def test_json_roundtrip(self):
        ctx = RunContext(sizes=TINY)
        result = run_experiment("table1", context=ctx)
        rebuilt = RunResult.from_json(result.to_json())
        assert rebuilt.experiment == result.experiment
        assert rebuilt.reference == result.reference
        assert rebuilt.fingerprint == result.fingerprint
        assert rebuilt.sizes == result.sizes
        assert rebuilt.table.columns == result.table.columns
        assert rebuilt.table.rows == [
            {k: v for k, v in row.items()} for row in result.table.to_dict()["rows"]
        ]
        assert rebuilt.stats == result.stats

    def test_save_writes_json_file(self, tmp_path):
        ctx = RunContext(sizes=TINY)
        result = run_experiment("table1", context=ctx)
        path = result.save(tmp_path / "out" / "table1.json")
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "table1"
        assert RunResult.from_dict(payload).table.rows

    def test_malformed_json_raises(self):
        with pytest.raises(ExperimentError):
            RunResult.from_json("not json")
        with pytest.raises(ExperimentError):
            RunResult.from_json("[1, 2]")
        with pytest.raises(ExperimentError):
            RunResult.from_dict({"experiment": "x"})


class TestCLI:
    def test_list_shows_all_specs(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("figure8", "table2", "figure12a"):
            assert name in out

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["run", "bogus", "--sizes", "tiny"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_all_cannot_be_combined(self, capsys):
        from repro.cli import main

        assert main(["run", "all", "figure8"]) == 2

    def test_run_writes_results_and_caches(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "run", "table1", "table1",
            "--sizes", "tiny",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "results"),
            "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ran 1 experiment(s)" in out  # deduplicated
        payload = json.loads((tmp_path / "results" / "table1.json").read_text())
        assert payload["experiment"] == "table1"
