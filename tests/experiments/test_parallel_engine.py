"""Tests for parallel experiment execution over a shared suite cache.

The acceptance property of ``repro run ... --jobs N``: every suite
configuration is trained exactly once across all workers (the
per-fingerprint file lock serialises build+commit), and the produced
results are identical to a serial run — modulo wall-clock ``seconds`` and
the per-context cache ``stats``, which measure *how* the run executed,
not *what* it computed.
"""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.engine import (
    RunContext,
    run_experiments,
    run_experiments_parallel,
)
from repro.experiments.runner import ExperimentSizes

TINY = ExperimentSizes.tiny()


def comparable(result) -> str:
    """Canonical JSON of everything deterministic in a RunResult."""
    payload = json.loads(result.to_json())
    payload.pop("seconds")
    payload.pop("stats")
    return json.dumps(payload, sort_keys=True)


class TestParallelValidation:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ExperimentError):
            run_experiments_parallel(["table1"], sizes=TINY, jobs=0)

    def test_validates_names_up_front(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiments_parallel(["table1", "typo"], sizes=TINY, jobs=2)


class TestParallelExecution:
    def test_jobs2_matches_serial_results(self, tmp_path):
        """--jobs 2 returns byte-identical result JSON to --jobs 1.

        figure8 and figure12b have fully deterministic tables (seeded
        training on both datasets); table2 is excluded here because its
        table *content* is measured wall-clock runtimes.
        """
        serial = run_experiments_parallel(
            ["figure8", "figure12b"],
            sizes=TINY,
            cache_dir=tmp_path / "serial-cache",
            jobs=1,
        )
        parallel = run_experiments_parallel(
            ["figure8", "figure12b"],
            sizes=TINY,
            cache_dir=tmp_path / "parallel-cache",
            jobs=2,
        )
        assert [comparable(r) for r in serial] == [comparable(r) for r in parallel]

    def test_each_suite_trained_exactly_once_across_workers(self, tmp_path):
        """figure8 + table2 need TMDB (shared) + GooglePlay: 2 builds total."""
        results = run_experiments_parallel(
            ["figure8", "table2"],
            sizes=TINY,
            cache_dir=tmp_path / "cache",
            jobs=2,
        )
        builds = sum(r.stats.get("suite_builds", 0) for r in results)
        assert builds == 2
        # the worker that lost the TMDB race loaded the winner's artifact
        disk_hits = sum(r.stats.get("suite_disk_hits", 0) for r in results)
        assert disk_hits >= 1

    def test_parallel_matches_shared_context_serial_run(self, tmp_path):
        """The per-worker-context path agrees with the legacy shared context."""
        shared = run_experiments(
            ["figure8"], sizes=TINY, cache_dir=tmp_path / "shared"
        )
        parallel = run_experiments_parallel(
            ["figure8"], sizes=TINY, cache_dir=tmp_path / "parallel", jobs=2
        )
        assert comparable(shared[0]) == comparable(parallel[0])

    def test_warm_cache_trains_nothing(self, tmp_path):
        cache = tmp_path / "cache"
        run_experiments_parallel(["figure8"], sizes=TINY, cache_dir=cache, jobs=1)
        again = run_experiments_parallel(
            ["figure8"], sizes=TINY, cache_dir=cache, jobs=2
        )
        assert sum(r.stats.get("suite_builds", 0) for r in again) == 0
        assert sum(r.stats.get("suite_disk_hits", 0) for r in again) >= 1


class TestSuiteLock:
    def test_build_leaves_lock_file_behind(self, tmp_path):
        """The per-fingerprint lock file lives under <cache>/suites/locks."""
        ctx = RunContext(sizes=TINY, cache_dir=tmp_path)
        _, fingerprint = ctx.suite_with_fingerprint("tmdb", methods=("PV",))
        lock_path = tmp_path / "suites" / "locks" / f"{fingerprint}.lock"
        assert lock_path.exists()

    def test_memory_hit_takes_no_lock(self, tmp_path, monkeypatch):
        ctx = RunContext(sizes=TINY, cache_dir=tmp_path)
        ctx.suite("tmdb", methods=("PV",))

        import repro.util.locks as locks_module

        def explode(*args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError("memory hit must not touch the lock")

        monkeypatch.setattr(locks_module.FileLock, "acquire", explode)
        ctx.suite("tmdb", methods=("PV",))
        assert ctx.stats.suite_memory_hits == 1
