"""End-to-end smoke tests for the experiment harnesses.

The figure experiments are expensive, so these tests run them at miniature
sizes: the point is to verify that every harness runs end-to-end and produces
a well-formed result table, not to reproduce the paper's numbers (that is the
job of the benchmark suite).
"""

import pytest

from repro.experiments import gridsearch, table1_datasets, table2_runtime
from repro.experiments import (
    figure3_toy_hyperparams,
    figure4_scaling,
    figure8_binary_classification,
    figure9_sample_size,
    figure12_imputation,
    figure13_regression,
    figure14_link_prediction,
)
from repro.experiments.runner import ExperimentSizes

TINY = ExperimentSizes(
    num_movies=40,
    num_apps=40,
    trials=1,
    train_samples=30,
    test_samples=30,
    epochs=10,
    hidden_units=(16,),
    imputation_hidden_units=(16,),
    embedding_dimension=16,
    deepwalk_dimension=8,
    seed=0,
)


class TestTables:
    def test_table1(self):
        table = table1_datasets.run(TINY)
        assert len(table.rows) == 2
        assert all(row["unique_text_values"] > 0 for row in table.rows)

    def test_table2(self):
        table = table2_runtime.run(TINY, repetitions=1)
        methods = {row["method"] for row in table.rows}
        assert methods == {"MF", "DW", "RO", "RN"}
        assert all(row["runtime_mean"] >= 0.0 for row in table.rows)


class TestFigures:
    def test_figure3(self):
        table = figure3_toy_hyperparams.run()
        panels = {row["panel"] for row in table.rows}
        assert panels == {"alpha", "beta", "gamma", "delta"}
        # 4 panels x 3 values x 5 text values
        assert len(table.rows) == 4 * 3 * 5

    def test_figure4(self):
        table = figure4_scaling.run(TINY, movie_counts=(20, 40))
        assert [row["num_movies"] for row in table.rows] == [20, 40]
        assert table.rows[1]["text_values"] > table.rows[0]["text_values"]

    def test_figure8(self):
        table = figure8_binary_classification.run(TINY)
        assert {"PV", "RN", "DW"} <= set(table.column("embedding"))
        assert all(0.0 <= row["accuracy_mean"] <= 1.0 for row in table.rows)

    def test_figure9(self):
        table = figure9_sample_size.run(
            TINY, sample_sizes=(10, 20), embeddings=("PV", "RN")
        )
        assert len(table.rows) == 4

    def test_gridsearch(self):
        spec = gridsearch.GridSearchSpec(task="binary", solver="RN")
        table = gridsearch.run(
            spec, TINY,
            grid={"alpha": (1.0,), "beta": (0.0,), "gamma": (1.0,), "delta": (0.0, 1.0)},
        )
        assert len(table.rows) == 2
        best = gridsearch.best_configuration(table)
        assert {"alpha", "beta", "gamma", "delta", "accuracy"} <= set(best)

    def test_gridsearch_spec_validation(self):
        with pytest.raises(Exception):
            gridsearch.GridSearchSpec(task="bogus")

    def test_figure12a(self):
        table = figure12_imputation.run_language_imputation(TINY)
        methods = set(table.column("method"))
        assert {"MODE", "DTWG", "PV", "RN"} <= methods

    def test_figure12b(self):
        table = figure12_imputation.run_app_category_imputation(TINY)
        assert {"MODE", "DTWG", "RN"} <= set(table.column("method"))

    def test_figure13(self):
        table = figure13_regression.run(TINY)
        assert all(row["mae_mean"] > 0 for row in table.rows)

    def test_figure14(self):
        table = figure14_link_prediction.run(TINY, n_pairs=40)
        assert all(0.0 <= row["accuracy_mean"] <= 1.0 for row in table.rows)
