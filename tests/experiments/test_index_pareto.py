"""Tests for the recall/latency/memory Pareto harness (``repro bench-index``)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments import index_pareto


@pytest.fixture(scope="module")
def micro_payload():
    """One real sweep at a micro size shared across assertions."""
    index_pareto.PRESETS["_micro"] = (600, 24, 12)
    try:
        return index_pareto.run_index_pareto(preset="_micro", seed=7)
    finally:
        del index_pareto.PRESETS["_micro"]


class TestSweepPayload:
    def test_schema_and_flat_baseline(self, micro_payload):
        assert micro_payload["schema"] == "index-pareto/v1"
        assert micro_payload["n_values"] == 600
        flat = micro_payload["flat"]
        assert flat["memory_bytes"] > 0
        assert flat["p50_ms"] > 0
        assert flat["p99_ms"] >= flat["p50_ms"]

    def test_every_family_contributes_points(self, micro_payload):
        families = {point["family"] for point in micro_payload["points"]}
        assert families == {"ivf", "pq", "ivfpq", "nsw"}

    def test_points_carry_the_pareto_axes(self, micro_payload):
        for point in micro_payload["points"]:
            assert 0.0 <= point["recall_at_k"] <= 1.0
            assert point["memory_fraction"] == pytest.approx(
                point["memory_bytes"] / micro_payload["flat"]["memory_bytes"]
            )
            assert point["speedup_vs_flat"] > 0
            assert point["p99_ms"] >= point["p50_ms"]
            assert point["build_seconds"] >= 0

    def test_exhaustive_knobs_reach_high_recall(self, micro_payload):
        by_label = {point["label"]: point for point in micro_payload["points"]}
        # generous query-time knobs should approach the exact ranking even
        # at micro scale
        assert by_label["nsw(ef=128)"]["recall_at_k"] >= 0.9
        assert by_label["ivf(nprobe=16)"]["recall_at_k"] >= 0.9

    def test_rerank_monotonically_helps_pq_recall(self, micro_payload):
        recalls = [
            point["recall_at_k"]
            for point in micro_payload["points"]
            if point["family"] == "pq"
        ]
        assert recalls == sorted(recalls)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ReproError, match="unknown preset"):
            index_pareto.run_index_pareto(preset="galactic")


class TestGateEvaluation:
    def _payload(self, points, preset="quick"):
        return {"schema": "index-pareto/v1", "preset": preset, "points": points}

    def _nsw_point(self, recall, speedup):
        return {
            "family": "nsw", "label": "nsw(ef=32)", "recall_at_k": recall,
            "speedup_vs_flat": speedup, "memory_fraction": 1.05,
        }

    def _ivfpq_point(self, recall, memory_fraction):
        return {
            "family": "ivfpq", "label": "ivfpq(nprobe=8,rerank=64)",
            "recall_at_k": recall, "speedup_vs_flat": 3.0,
            "memory_fraction": memory_fraction,
        }

    def test_both_gates_pass_with_witnesses(self):
        payload = self._payload([
            self._nsw_point(0.97, 6.5), self._ivfpq_point(0.93, 0.04),
        ])
        gates = index_pareto.evaluate_gates(payload)
        assert gates["nsw_fast_accurate"]["passed"]
        assert gates["nsw_fast_accurate"]["witness"] == "nsw(ef=32)"
        assert gates["ivfpq_small_memory"]["passed"]
        assert index_pareto.check_gates(payload) == []

    def test_fast_but_inaccurate_nsw_does_not_count(self):
        payload = self._payload([
            self._nsw_point(0.80, 40.0), self._ivfpq_point(0.93, 0.04),
        ])
        gates = index_pareto.evaluate_gates(payload)
        assert not gates["nsw_fast_accurate"]["passed"]
        failures = index_pareto.check_gates(payload)
        assert len(failures) == 1
        assert "nsw_fast_accurate" in failures[0]

    def test_accurate_but_large_ivfpq_does_not_count(self):
        payload = self._payload([
            self._nsw_point(0.97, 6.5), self._ivfpq_point(0.95, 0.30),
        ])
        gates = index_pareto.evaluate_gates(payload)
        assert not gates["ivfpq_small_memory"]["passed"]
        assert any(
            "ivfpq_small_memory" in failure
            for failure in index_pareto.check_gates(payload)
        )

    def test_stale_stored_verdict_is_ignored(self):
        payload = self._payload([self._nsw_point(0.5, 0.5)])
        payload["gates"] = {
            "nsw_fast_accurate": {"passed": True},
            "ivfpq_small_memory": {"passed": True},
        }
        assert len(index_pareto.check_gates(payload)) == 2

    def test_tiny_preset_is_not_admissible_for_certification(self):
        payload = self._payload(
            [self._nsw_point(0.97, 6.5), self._ivfpq_point(0.93, 0.04)],
            preset="tiny",
        )
        failures = index_pareto.check_gates(payload)
        assert len(failures) == 1
        assert "not admissible" in failures[0]


class TestPayloadIO:
    def test_round_trip(self, micro_payload, tmp_path):
        path = index_pareto.save_payload(micro_payload, tmp_path / "p.json")
        loaded = index_pareto.load_payload(path)
        assert loaded == micro_payload

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            index_pareto.load_payload(tmp_path / "absent.json")

    def test_format_table_lists_every_point_and_gate(self, micro_payload):
        table = index_pareto.format_table(micro_payload)
        for point in micro_payload["points"]:
            assert point["label"] in table
        assert "gate nsw_fast_accurate" in table
        assert "gate ivfpq_small_memory" in table
