"""Tests for Skip-Gram with negative sampling and the DeepWalk pipeline."""

import numpy as np
import pytest

from repro.deepwalk.deepwalk import DeepWalk, DeepWalkConfig
from repro.deepwalk.skipgram import SkipGramConfig, SkipGramModel
from repro.errors import TrainingError
from repro.graph.builder import build_graph
from repro.graph.property_graph import PropertyGraph
from repro.retrofit.extraction import extract_text_values


def two_cluster_corpus(n_sentences: int = 120) -> list[list[str]]:
    """Sentences drawn from two disjoint token communities."""
    rng = np.random.default_rng(0)
    cluster_a = [f"a{i}" for i in range(5)]
    cluster_b = [f"b{i}" for i in range(5)]
    corpus = []
    for s in range(n_sentences):
        cluster = cluster_a if s % 2 == 0 else cluster_b
        corpus.append([cluster[int(rng.integers(0, 5))] for _ in range(10)])
    return corpus


class TestSkipGramConfig:
    def test_validation(self):
        with pytest.raises(TrainingError):
            SkipGramConfig(dimension=0)
        with pytest.raises(TrainingError):
            SkipGramConfig(window=0)
        with pytest.raises(TrainingError):
            SkipGramConfig(negative_samples=0)
        with pytest.raises(TrainingError):
            SkipGramConfig(epochs=0)


class TestSkipGramModel:
    def test_empty_corpus_rejected(self):
        with pytest.raises(TrainingError):
            SkipGramModel([])

    def test_vocabulary_and_vectors(self):
        model = SkipGramModel([["a", "b"], ["b", "c"]],
                              SkipGramConfig(dimension=8, epochs=1))
        assert set(model.vocabulary) == {"a", "b", "c"}
        assert model.vector("a").shape == (8,)
        assert "a" in model and "z" not in model
        with pytest.raises(TrainingError):
            model.vector("z")

    def test_matrix_shape(self):
        model = SkipGramModel([["a", "b", "c"]], SkipGramConfig(dimension=4, epochs=1))
        assert model.matrix().shape == (3, 4)

    def test_training_separates_communities(self):
        corpus = two_cluster_corpus()
        model = SkipGramModel(
            corpus, SkipGramConfig(dimension=16, epochs=3, window=3, seed=1)
        ).train()

        def cos(x, y):
            return float(x @ y / (np.linalg.norm(x) * np.linalg.norm(y) + 1e-12))

        within = cos(model.vector("a0"), model.vector("a1"))
        between = cos(model.vector("a0"), model.vector("b0"))
        assert within > between


class TestDeepWalk:
    def test_empty_graph_rejected(self):
        with pytest.raises(TrainingError):
            DeepWalk().train_on_graph(PropertyGraph())

    def test_alignment_with_extraction(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        deepwalk = DeepWalk(DeepWalkConfig(dimension=8, walks_per_node=4,
                                           walk_length=6, epochs=1))
        result = deepwalk.train_for_extraction(extraction)
        assert result.matrix.shape == (len(extraction), 8)
        assert result.missing == []

    def test_related_nodes_more_similar_than_unrelated(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        graph = build_graph(extraction)
        deepwalk = DeepWalk(DeepWalkConfig(dimension=16, walks_per_node=20,
                                           walk_length=10, epochs=3, seed=2))
        result = deepwalk.train_for_extraction(extraction, graph)

        def vector(category, text):
            return result.matrix[extraction.index_of(category, text)]

        def cos(x, y):
            return float(x @ y / (np.linalg.norm(x) * np.linalg.norm(y) + 1e-12))

        amelie_france = cos(vector("movies.title", "amelie"),
                            vector("countries.name", "france"))
        amelie_usa = cos(vector("movies.title", "amelie"),
                         vector("countries.name", "usa"))
        assert amelie_france > amelie_usa
