"""Tests for building the database property graph (paper §3.4)."""

from repro.graph.builder import (
    CATEGORY_EDGE,
    CATEGORY_LABEL,
    TEXT_VALUE_LABEL,
    build_graph,
    category_node_id,
    text_value_node_id,
)
from repro.retrofit.extraction import extract_text_values


class TestBuildGraph:
    def test_node_counts(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        graph = build_graph(extraction)
        text_nodes = graph.node_ids(TEXT_VALUE_LABEL)
        category_nodes = graph.node_ids(CATEGORY_LABEL)
        assert len(text_nodes) == len(extraction)
        assert len(category_nodes) == len(extraction.categories)

    def test_category_edges_connect_members(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        graph = build_graph(extraction)
        for category, indices in extraction.categories.items():
            node = category_node_id(category)
            neighbors = set(graph.neighbors(node))
            for index in indices:
                assert text_value_node_id(index) in neighbors

    def test_relation_edges_present(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        graph = build_graph(extraction)
        group = extraction.relation_groups[0]
        for i, j in group.pairs:
            assert text_value_node_id(j) in graph.neighbors(text_value_node_id(i))

    def test_edge_types_include_relation_names(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        graph = build_graph(extraction)
        types = graph.edge_types()
        assert CATEGORY_EDGE in types
        assert {group.name for group in extraction.relation_groups} <= types

    def test_without_category_nodes(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        graph = build_graph(extraction, include_category_nodes=False)
        assert graph.node_ids(CATEGORY_LABEL) == []
        assert len(graph) == len(extraction)

    def test_text_node_properties(self, toy_dataset):
        extraction = extract_text_values(toy_dataset.database)
        graph = build_graph(extraction)
        record = extraction.records[0]
        node = graph.nodes[text_value_node_id(record.index)]
        assert node.property("text") == record.text
        assert node.property("category") == record.category

    def test_tmdb_graph_size(self, tmdb_extraction):
        graph = build_graph(tmdb_extraction)
        expected_nodes = len(tmdb_extraction) + len(tmdb_extraction.categories)
        assert len(graph) == expected_nodes
        assert graph.number_of_edges() >= tmdb_extraction.relation_count()
