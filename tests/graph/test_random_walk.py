"""Tests for random-walk corpus generation."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.graph.property_graph import PropertyGraph
from repro.graph.random_walk import RandomWalkGenerator


@pytest.fixture()
def line_graph():
    graph = PropertyGraph()
    for i in range(5):
        graph.add_node(f"n{i}", "text_value")
    for i in range(4):
        graph.add_edge(f"n{i}", f"n{i + 1}", "link")
    graph.add_node("isolated", "text_value")
    return graph


class TestRandomWalkGenerator:
    def test_parameter_validation(self, line_graph):
        with pytest.raises(ReproError):
            RandomWalkGenerator(line_graph, walk_length=0)
        with pytest.raises(ReproError):
            RandomWalkGenerator(line_graph, walks_per_node=0)

    def test_walk_from_unknown_node(self, line_graph):
        generator = RandomWalkGenerator(line_graph)
        with pytest.raises(ReproError):
            generator.walk_from("missing", np.random.default_rng(0))

    def test_walks_respect_length(self, line_graph):
        generator = RandomWalkGenerator(line_graph, walk_length=4, walks_per_node=2)
        for walk in generator.generate():
            assert 1 <= len(walk) <= 4

    def test_walk_steps_follow_edges(self, line_graph):
        generator = RandomWalkGenerator(line_graph, walk_length=6, walks_per_node=1)
        neighbors = {
            node_id: set(line_graph.neighbors(node_id)) for node_id in line_graph.nodes
        }
        for walk in generator.generate():
            for a, b in zip(walk, walk[1:]):
                assert b in neighbors[a]

    def test_isolated_node_walk_has_length_one(self, line_graph):
        generator = RandomWalkGenerator(line_graph, walk_length=5, walks_per_node=1)
        walk = generator.walk_from("isolated", np.random.default_rng(0))
        assert walk == ["isolated"]

    def test_corpus_size(self, line_graph):
        generator = RandomWalkGenerator(line_graph, walk_length=3, walks_per_node=4)
        corpus = generator.corpus()
        assert len(corpus) == 4 * len(line_graph.nodes)

    def test_every_node_is_a_start(self, line_graph):
        generator = RandomWalkGenerator(line_graph, walk_length=2, walks_per_node=1)
        starts = {walk[0] for walk in generator.generate()}
        assert starts == set(line_graph.nodes)

    def test_determinism_by_seed(self, line_graph):
        first = RandomWalkGenerator(line_graph, seed=9).corpus()
        second = RandomWalkGenerator(line_graph, seed=9).corpus()
        assert first == second

    def test_different_seed_differs(self, line_graph):
        first = RandomWalkGenerator(line_graph, seed=1, walk_length=10).corpus()
        second = RandomWalkGenerator(line_graph, seed=2, walk_length=10).corpus()
        assert first != second
