"""Tests for random-walk corpus generation."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.graph.property_graph import PropertyGraph
from repro.graph.random_walk import PAD, RandomWalkGenerator, WalkCorpus


@pytest.fixture()
def line_graph():
    graph = PropertyGraph()
    for i in range(5):
        graph.add_node(f"n{i}", "text_value")
    for i in range(4):
        graph.add_edge(f"n{i}", f"n{i + 1}", "link")
    graph.add_node("isolated", "text_value")
    return graph


class TestRandomWalkGenerator:
    def test_parameter_validation(self, line_graph):
        with pytest.raises(ReproError):
            RandomWalkGenerator(line_graph, walk_length=0)
        with pytest.raises(ReproError):
            RandomWalkGenerator(line_graph, walks_per_node=0)

    def test_walk_from_unknown_node(self, line_graph):
        generator = RandomWalkGenerator(line_graph)
        with pytest.raises(ReproError):
            generator.walk_from("missing", np.random.default_rng(0))

    def test_walks_respect_length(self, line_graph):
        generator = RandomWalkGenerator(line_graph, walk_length=4, walks_per_node=2)
        for walk in generator.generate():
            assert 1 <= len(walk) <= 4

    def test_walk_steps_follow_edges(self, line_graph):
        generator = RandomWalkGenerator(line_graph, walk_length=6, walks_per_node=1)
        neighbors = {
            node_id: set(line_graph.neighbors(node_id)) for node_id in line_graph.nodes
        }
        for walk in generator.generate():
            for a, b in zip(walk, walk[1:]):
                assert b in neighbors[a]

    def test_isolated_node_walk_has_length_one(self, line_graph):
        generator = RandomWalkGenerator(line_graph, walk_length=5, walks_per_node=1)
        walk = generator.walk_from("isolated", np.random.default_rng(0))
        assert walk == ["isolated"]

    def test_corpus_size(self, line_graph):
        generator = RandomWalkGenerator(line_graph, walk_length=3, walks_per_node=4)
        with pytest.deprecated_call():
            corpus = generator.corpus()
        assert len(corpus) == 4 * len(line_graph.nodes)

    def test_every_node_is_a_start(self, line_graph):
        generator = RandomWalkGenerator(line_graph, walk_length=2, walks_per_node=1)
        starts = {walk[0] for walk in generator.generate()}
        assert starts == set(line_graph.nodes)

    def test_determinism_by_seed(self, line_graph):
        first = list(RandomWalkGenerator(line_graph, seed=9).generate())
        second = list(RandomWalkGenerator(line_graph, seed=9).generate())
        assert first == second

    def test_different_seed_differs(self, line_graph):
        first = list(RandomWalkGenerator(line_graph, seed=1, walk_length=10).generate())
        second = list(RandomWalkGenerator(line_graph, seed=2, walk_length=10).generate())
        assert first != second

    def test_corpus_shim_matches_generate(self, line_graph):
        generator = RandomWalkGenerator(line_graph, seed=4, walks_per_node=2)
        streamed = list(generator.generate())
        with pytest.deprecated_call():
            materialised = RandomWalkGenerator(
                line_graph, seed=4, walks_per_node=2
            ).corpus()
        assert streamed == materialised


class TestWalkCorpus:
    def test_matrix_shape_and_padding(self, line_graph):
        generator = RandomWalkGenerator(line_graph, walk_length=5, walks_per_node=3)
        corpus = generator.walk_corpus()
        assert corpus.matrix.shape == (3 * len(line_graph.nodes), 5)
        assert corpus.n_walks == 3 * len(line_graph.nodes)
        assert corpus.walk_length == 5
        # the isolated node's walks are [start, PAD, PAD, PAD, PAD]
        isolated = corpus.node_ids.index("isolated")
        rows = np.flatnonzero(corpus.matrix[:, 0] == isolated)
        assert rows.size == 3
        assert np.all(corpus.matrix[rows, 1:] == PAD)

    def test_padding_only_after_walk_end(self, line_graph):
        corpus = RandomWalkGenerator(line_graph, walk_length=6).walk_corpus()
        valid = corpus.matrix != PAD
        # once a walk hits PAD it stays PAD: valid mask is a prefix per row
        assert np.array_equal(valid, np.cumsum(~valid, axis=1) == 0)
        np.testing.assert_array_equal(corpus.lengths(), valid.sum(axis=1))

    def test_matrix_matches_generate_stream(self, line_graph):
        generator = RandomWalkGenerator(line_graph, seed=3, walk_length=4)
        corpus = generator.walk_corpus()
        streamed = list(RandomWalkGenerator(line_graph, seed=3, walk_length=4).generate())
        assert list(corpus.sentences()) == streamed

    def test_matrix_reproducible_per_seed(self, line_graph):
        first = RandomWalkGenerator(line_graph, seed=6).walk_corpus()
        second = RandomWalkGenerator(line_graph, seed=6).walk_corpus()
        np.testing.assert_array_equal(first.matrix, second.matrix)
        assert first.node_ids == second.node_ids

    def test_steps_follow_csr_edges(self, line_graph):
        corpus = RandomWalkGenerator(line_graph, walk_length=6).walk_corpus()
        neighbors = {
            node_id: set(line_graph.neighbors(node_id))
            for node_id in line_graph.nodes
        }
        for sentence in corpus.sentences():
            for a, b in zip(sentence, sentence[1:]):
                assert b in neighbors[a]

    def test_token_counts_match_matrix(self, line_graph):
        corpus = RandomWalkGenerator(line_graph, walks_per_node=2).walk_corpus()
        counts = corpus.token_counts()
        assert counts.sum() == corpus.lengths().sum()
        assert counts.size == len(corpus.node_ids)

    def test_transitions_are_degree_uniform(self):
        """From a hub, every neighbour is chosen uniformly (chi-square)."""
        graph = PropertyGraph()
        graph.add_node("hub", "text_value")
        leaves = [f"leaf{i}" for i in range(5)]
        for leaf in leaves:
            graph.add_node(leaf, "text_value")
            graph.add_edge("hub", leaf, "link")
        generator = RandomWalkGenerator(
            graph, walk_length=20, walks_per_node=400, seed=0
        )
        corpus = generator.walk_corpus()
        hub = corpus.node_ids.index("hub")
        matrix = corpus.matrix
        # successors of every hub occurrence that has a successor
        from_hub = (matrix[:, :-1] == hub) & (matrix[:, 1:] != PAD)
        successors = matrix[:, 1:][from_hub]
        observed = np.bincount(successors, minlength=len(corpus.node_ids))
        observed = np.delete(observed, hub)
        expected = observed.sum() / len(leaves)
        chi_square = float(((observed - expected) ** 2 / expected).sum())
        # dof = 4: 5-sigma bound ≈ 4 + 5 * sqrt(8)
        assert chi_square < 4 + 5 * np.sqrt(8)

    def test_walk_corpus_dataclass_accessors(self):
        corpus = WalkCorpus(
            matrix=np.array([[0, 1, PAD]], dtype=np.int64), node_ids=("a", "b")
        )
        assert corpus.n_nodes == 2
        assert list(corpus.sentences()) == [["a", "b"]]
        np.testing.assert_array_equal(corpus.lengths(), [2])
