"""Tests for the property graph."""

import pytest

from repro.graph.property_graph import GraphError, PropertyGraph


@pytest.fixture()
def graph():
    g = PropertyGraph()
    g.add_node("m1", "text_value", text="amelie")
    g.add_node("m2", "text_value", text="inception")
    g.add_node("c1", "category", category="movies.title")
    g.add_edge("m1", "c1", "category")
    g.add_edge("m2", "c1", "category")
    g.add_edge("m1", "m2", "related")
    return g


class TestNodesAndEdges:
    def test_node_count_and_membership(self, graph):
        assert len(graph) == 3
        assert "m1" in graph and "missing" not in graph

    def test_add_node_is_idempotent(self, graph):
        graph.add_node("m1", "text_value")
        assert len(graph) == 3

    def test_node_properties(self, graph):
        assert graph.nodes["m1"].property("text") == "amelie"
        assert graph.nodes["m1"].property("missing", 42) == 42

    def test_node_ids_by_label(self, graph):
        assert set(graph.node_ids("text_value")) == {"m1", "m2"}
        assert graph.node_ids("category") == ["c1"]

    def test_edge_requires_existing_nodes(self, graph):
        with pytest.raises(GraphError):
            graph.add_edge("m1", "missing", "x")
        with pytest.raises(GraphError):
            graph.add_edge("missing", "m1", "x")

    def test_edge_count_and_types(self, graph):
        assert graph.number_of_edges() == 3
        assert graph.edge_types() == {"category", "related"}


class TestTraversal:
    def test_neighbors_are_undirected(self, graph):
        assert set(graph.neighbors("c1")) == {"m1", "m2"}
        assert set(graph.neighbors("m1")) == {"c1", "m2"}

    def test_degree(self, graph):
        assert graph.degree("m1") == 2
        assert graph.degree("c1") == 2

    def test_unknown_node_raises(self, graph):
        with pytest.raises(GraphError):
            graph.neighbors("missing")
        with pytest.raises(GraphError):
            graph.degree("missing")

    def test_iter_adjacency(self, graph):
        adjacency = dict(graph.iter_adjacency())
        assert set(adjacency) == {"m1", "m2", "c1"}
        assert set(adjacency["c1"]) == {"m1", "m2"}


class TestConversion:
    def test_to_networkx(self, graph):
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == 3
        assert nx_graph.nodes["m1"]["label"] == "text_value"

    def test_subgraph(self, graph):
        sub = graph.subgraph(["m1", "m2"])
        assert len(sub) == 2
        assert sub.number_of_edges() == 1

    def test_subgraph_unknown_node(self, graph):
        with pytest.raises(GraphError):
            graph.subgraph(["m1", "missing"])
