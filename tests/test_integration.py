"""Integration tests: full pipeline runs across subsystems."""

import numpy as np
import pytest

from repro import (
    Database,
    RetroHyperparameters,
    RetroPipeline,
    __version__,
)
from repro.datasets import generate_google_play, generate_tmdb
from repro.experiments.embedding_factory import build_embedding_suite
from repro.experiments.task_data import director_classification_data
from repro.tasks import BinaryClassificationTask


class TestPublicApi:
    def test_version_string(self):
        assert __version__.count(".") == 2

    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestTmdbEndToEnd:
    @pytest.fixture(scope="class")
    def pipeline_result(self, small_tmdb):
        pipeline = RetroPipeline(
            small_tmdb.database,
            small_tmdb.embedding,
            hyperparams=RetroHyperparameters.paper_rn_default(),
        )
        return pipeline.run()

    def test_every_text_value_has_a_vector(self, pipeline_result, small_tmdb):
        assert len(pipeline_result.extraction) == (
            small_tmdb.database.unique_text_values()
        )
        norms = np.linalg.norm(pipeline_result.embeddings.matrix, axis=1)
        assert np.mean(norms > 0) > 0.95

    def test_retrofitted_titles_closer_to_their_country(
        self, pipeline_result, small_tmdb
    ):
        """Relational retrofitting must move movie titles towards the vector
        of their production country more often than not."""
        embeddings = pipeline_result.embeddings
        plain = pipeline_result.plain
        db = small_tmdb.database
        movies = db.table("movies")
        countries = db.table("countries")
        closer = 0
        total = 0
        for link in db.table("movie_countries"):
            movie = movies.get_by_key(link["movie_id"])
            country = countries.get_by_key(link["country_id"])
            title, country_name = movie["title"], country["name"]

            def gap(embedding_set):
                title_vec = embedding_set.vector_for("movies.title", title)
                country_vec = embedding_set.vector_for("countries.name", country_name)
                denom = (np.linalg.norm(title_vec) * np.linalg.norm(country_vec))
                if denom < 1e-12:
                    return -1.0
                return float(title_vec @ country_vec / denom)

            total += 1
            if gap(embeddings) > gap(plain):
                closer += 1
        assert closer / total > 0.7

    def test_classification_beats_chance(self, small_tmdb):
        suite = build_embedding_suite(
            small_tmdb.database, small_tmdb.embedding, methods=("RN",)
        )
        data = director_classification_data(suite.extraction, small_tmdb)
        features = suite.get("RN").matrix[data.indices]
        labels = data.labels
        split = len(labels) // 2
        task = BinaryClassificationTask(hidden_units=(32,), epochs=40, seed=0)
        outcome = task.train_and_evaluate(
            features[:split], labels[:split], features[split:], labels[split:]
        )
        assert outcome.accuracy > 0.55


class TestGooglePlayEndToEnd:
    def test_pipeline_with_exclusions(self):
        dataset = generate_google_play(num_apps=30, seed=2, embedding_dimension=16)
        pipeline = RetroPipeline(
            dataset.database,
            dataset.embedding,
            exclude_columns=("categories.name", "genres.name"),
        )
        result = pipeline.run()
        assert "categories.name" not in result.extraction.categories
        assert result.embeddings.has_value("apps.name",
                                           next(iter(dataset.app_category)))


class TestScalingConsistency:
    def test_larger_database_yields_more_vectors(self):
        small = generate_tmdb(num_movies=20, seed=0, embedding_dimension=16)
        large = generate_tmdb(num_movies=50, seed=0, embedding_dimension=16)
        small_result = RetroPipeline(small.database, small.embedding).run()
        large_result = RetroPipeline(large.database, large.embedding).run()
        assert len(large_result.extraction) > len(small_result.extraction)

    def test_isolated_databases_do_not_interfere(self):
        first = generate_tmdb(num_movies=20, seed=3, embedding_dimension=16)
        before = first.database.summary()
        _ = generate_tmdb(num_movies=20, seed=4, embedding_dimension=16)
        assert first.database.summary() == before


class TestErrorPaths:
    def test_pipeline_requires_text_values(self):
        from repro.db.database import build_table_schema
        from repro.db.types import ColumnType
        from repro.text.embedding import WordEmbedding

        db = Database("numbers_only")
        db.create_table(build_table_schema(
            "points", [("id", ColumnType.INTEGER), ("x", ColumnType.FLOAT)],
            primary_key="id"))
        db.insert("points", {"id": 1, "x": 0.5})
        embedding = WordEmbedding.from_dict({"word": np.ones(4)})
        pipeline = RetroPipeline(db, embedding)
        from repro.errors import RetrofitError

        with pytest.raises(RetrofitError):
            pipeline.run()
