"""Tests for the vectorised SGNS fast path and the naive-trainer fixes."""

import numpy as np
import pytest

from repro.deepwalk.skipgram import SkipGramConfig, SkipGramModel
from repro.errors import TrainingError
from repro.graph.random_walk import PAD, WalkCorpus


def two_cluster_corpus(n_sentences: int = 120) -> list[list[str]]:
    """Sentences drawn from two disjoint token communities."""
    rng = np.random.default_rng(0)
    cluster_a = [f"a{i}" for i in range(5)]
    cluster_b = [f"b{i}" for i in range(5)]
    corpus = []
    for s in range(n_sentences):
        cluster = cluster_a if s % 2 == 0 else cluster_b
        corpus.append([cluster[int(rng.integers(0, 5))] for _ in range(10)])
    return corpus


class TestDuplicateTargetGradient:
    """Satellite regression: repeated tokens in one update must accumulate."""

    def test_repeated_context_token_accumulates_both_updates(self):
        model = SkipGramModel(
            [["a", "b", "c"]], SkipGramConfig(dimension=4, epochs=1, seed=0)
        )
        b = model.vocabulary.index("b")
        c = model.vocabulary.index("c")
        # give the output vectors mass so the gradient is non-trivial
        model._output_vectors[:] = np.arange(12, dtype=np.float64).reshape(3, 4)
        before_output = model._output_vectors.copy()
        center = model.vocabulary.index("a")
        center_vector = model._input_vectors[center].copy()
        context = np.array([b, b], dtype=np.int64)  # token b appears twice
        negatives = np.array([[c], [c]], dtype=np.int64)  # and c twice as noise
        learning_rate = 0.1

        model._train_pairs(center, context, learning_rate, negatives=negatives)

        def sigmoid(x):
            return 1.0 / (1.0 + np.exp(-x))

        # expected: each of b's two positive rows contributes its own
        # gradient; same for c's two negative rows
        g_pos = (sigmoid(before_output[b] @ center_vector) - 1.0) * learning_rate
        g_neg = sigmoid(before_output[c] @ center_vector) * learning_rate
        np.testing.assert_allclose(
            model._output_vectors[b], before_output[b] - 2 * g_pos * center_vector
        )
        np.testing.assert_allclose(
            model._output_vectors[c], before_output[c] - 2 * g_neg * center_vector
        )

    def test_duplicate_update_is_twice_the_single_update(self):
        """[b, b] in one call moves b exactly twice as far as [b] alone.

        Both duplicate rows read the same pre-update vectors, so their
        gradients are identical; with accumulation the total displacement
        is exactly double — under the old fancy-index assignment it was
        the single displacement.
        """

        def fresh():
            model = SkipGramModel(
                [["a", "b", "c"]], SkipGramConfig(dimension=4, epochs=1, seed=3)
            )
            model._output_vectors[:] = 0.25
            return model

        one_call = fresh()
        b = one_call.vocabulary.index("b")
        c = one_call.vocabulary.index("c")
        center = one_call.vocabulary.index("a")
        one_call._train_pairs(
            center, np.array([b, b]), 0.05, negatives=np.array([[c], [c]])
        )
        single = fresh()
        single._train_pairs(center, np.array([b]), 0.05, negatives=np.array([[c]]))
        moved_once = np.abs(single._output_vectors[b] - 0.25).sum()
        moved_twice = np.abs(one_call._output_vectors[b] - 0.25).sum()
        assert moved_once > 0
        assert moved_twice == pytest.approx(2 * moved_once, rel=1e-9)


class TestFastTrainerQuality:
    def test_loss_trend_matches_naive_trainer(self):
        """Both trainers minimise the same objective on the same corpus."""
        corpus = two_cluster_corpus()
        config = SkipGramConfig(dimension=16, epochs=4, window=3, seed=1)
        fast = SkipGramModel(corpus, config).train()
        naive = SkipGramModel(corpus, config).train_naive()
        assert len(fast.loss_history) == len(naive.loss_history) == 4
        # both descend
        assert fast.loss_history[-1] < fast.loss_history[0]
        assert naive.loss_history[-1] < naive.loss_history[0]
        # and land in the same regime
        assert fast.loss_history[-1] == pytest.approx(
            naive.loss_history[-1], rel=0.35
        )

    def test_fast_trainer_separates_communities(self):
        corpus = two_cluster_corpus()
        model = SkipGramModel(
            corpus, SkipGramConfig(dimension=16, epochs=3, window=3, seed=1)
        ).train()

        def cos(x, y):
            return float(x @ y / (np.linalg.norm(x) * np.linalg.norm(y) + 1e-12))

        within = cos(model.vector("a0"), model.vector("a1"))
        between = cos(model.vector("a0"), model.vector("b0"))
        assert within > between

    def test_training_is_deterministic_per_seed(self):
        corpus = two_cluster_corpus(40)
        config = SkipGramConfig(dimension=8, epochs=2, seed=5)
        first = SkipGramModel(corpus, config).train().matrix()
        second = SkipGramModel(corpus, config).train().matrix()
        np.testing.assert_array_equal(first, second)

    def test_batch_size_capped_by_vocabulary(self):
        model = SkipGramModel(
            [["a", "b", "c"]], SkipGramConfig(dimension=4, batch_size=4096)
        )
        assert model._effective_batch_size() == 8  # floor, 2*3 < 8
        big = SkipGramModel(
            [[f"t{i}" for i in range(600)]],
            SkipGramConfig(dimension=4, batch_size=1024),
        )
        assert big._effective_batch_size() == 1024

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(TrainingError):
            SkipGramConfig(batch_size=0)


class TestIntegerCorpusPath:
    def _corpus(self) -> WalkCorpus:
        matrix = np.array(
            [
                [0, 1, 2, PAD],
                [2, 1, 0, 1],
                [3, PAD, PAD, PAD],
            ],
            dtype=np.int64,
        )
        return WalkCorpus(matrix=matrix, node_ids=("n0", "n1", "n2", "n3"))

    def test_from_corpus_builds_vocabulary_in_node_order(self):
        model = SkipGramModel.from_corpus(self._corpus(), SkipGramConfig(dimension=4))
        assert model.vocabulary == ["n0", "n1", "n2", "n3"]
        assert "n3" in model
        assert model.matrix().shape == (4, 4)

    def test_from_corpus_counts_ignore_padding(self):
        model = SkipGramModel.from_corpus(self._corpus(), SkipGramConfig(dimension=4))
        np.testing.assert_array_equal(model._counts, [2.0, 3.0, 2.0, 1.0])

    def test_from_corpus_matches_string_path_quality(self):
        """Integer and string construction train on identical pair sets."""
        corpus = two_cluster_corpus(60)
        config = SkipGramConfig(dimension=8, epochs=2, seed=2)
        string_model = SkipGramModel(corpus, config).train()
        vocab = string_model.vocabulary
        index = {token: i for i, token in enumerate(vocab)}
        length = max(len(s) for s in corpus)
        matrix = np.full((len(corpus), length), PAD, dtype=np.int64)
        for row, sentence in enumerate(corpus):
            matrix[row, : len(sentence)] = [index[t] for t in sentence]
        int_model = SkipGramModel.from_corpus(
            WalkCorpus(matrix=matrix, node_ids=tuple(vocab)), config
        ).train()
        np.testing.assert_allclose(string_model.matrix(), int_model.matrix())

    def test_empty_corpus_rejected(self):
        with pytest.raises(TrainingError):
            SkipGramModel.from_corpus(
                WalkCorpus(matrix=np.empty((0, 4), dtype=np.int64), node_ids=())
            )
