"""Tests for shared alias-table reuse (ROADMAP PR-3 leftover satellite)."""

import numpy as np
import pytest

from repro.deepwalk.alias import (
    ALIAS_CACHE_STATS,
    reset_alias_cache,
    shared_alias_table,
)
from repro.deepwalk.skipgram import SkipGramConfig, SkipGramModel
from repro.graph.builder import build_graph
from repro.graph.random_walk import RandomWalkGenerator
from repro.retrofit.extraction import extract_text_values


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_alias_cache()
    yield
    reset_alias_cache()


class TestSharedAliasTable:
    def test_identical_weights_reuse_one_table(self):
        weights = np.array([1.0, 2.0, 3.0])
        first = shared_alias_table(weights)
        second = shared_alias_table(weights.copy())
        assert second is first
        assert ALIAS_CACHE_STATS.builds == 1
        assert ALIAS_CACHE_STATS.reuses == 1

    def test_different_weights_build_fresh_tables(self):
        shared_alias_table(np.array([1.0, 2.0]))
        shared_alias_table(np.array([2.0, 1.0]))
        assert ALIAS_CACHE_STATS.builds == 2
        assert ALIAS_CACHE_STATS.reuses == 0

    def test_shared_table_samples_correctly(self):
        weights = np.array([0.0, 1.0, 3.0])
        table = shared_alias_table(weights)
        rng = np.random.default_rng(0)
        draws = table.sample(rng, 20_000)
        assert not (draws == 0).any()
        ratio = (draws == 2).sum() / (draws == 1).sum()
        assert 2.5 < ratio < 3.5


class TestTrainingReuse:
    def _corpus(self):
        from repro.datasets import build_toy_movie_database

        dataset = build_toy_movie_database()
        extraction = extract_text_values(dataset.database)
        graph = build_graph(extraction)
        return RandomWalkGenerator(
            graph, walk_length=8, walks_per_node=4, seed=0
        ).walk_corpus()

    def test_epochs_share_one_table(self):
        corpus = self._corpus()
        config = SkipGramConfig(dimension=8, window=2, epochs=3, seed=0)
        SkipGramModel.from_corpus(corpus, config).train()
        # three epochs of one model never rebuild the table
        assert ALIAS_CACHE_STATS.builds == 1

    def test_grid_search_points_share_one_table(self):
        """Models trained on the same corpus — as every grid-search point
        is — reuse the alias table; the counter proves it."""
        corpus = self._corpus()
        for seed in range(4):  # four grid points, identical noise weights
            config = SkipGramConfig(dimension=8, window=2, epochs=1, seed=seed)
            SkipGramModel.from_corpus(corpus, config).train()
        assert ALIAS_CACHE_STATS.builds == 1
        assert ALIAS_CACHE_STATS.reuses == 3
