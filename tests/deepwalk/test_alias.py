"""Tests for alias-method negative sampling."""

import numpy as np
import pytest

from repro.deepwalk.alias import AliasTable
from repro.errors import TrainingError


class TestAliasTableConstruction:
    def test_rejects_bad_weights(self):
        with pytest.raises(TrainingError):
            AliasTable(np.array([]))
        with pytest.raises(TrainingError):
            AliasTable(np.array([[1.0, 2.0]]))
        with pytest.raises(TrainingError):
            AliasTable(np.array([1.0, -0.5]))
        with pytest.raises(TrainingError):
            AliasTable(np.array([0.0, 0.0]))
        with pytest.raises(TrainingError):
            AliasTable(np.array([1.0, np.nan]))

    def test_normalises_weights(self):
        table = AliasTable(np.array([2.0, 6.0]))
        assert len(table) == 2
        np.testing.assert_allclose(table.probabilities, [0.25, 0.75])

    def test_single_outcome(self):
        table = AliasTable(np.array([3.0]))
        draws = table.sample(np.random.default_rng(0), 100)
        assert np.all(draws == 0)

    def test_zero_weight_outcome_never_drawn(self):
        table = AliasTable(np.array([1.0, 0.0, 1.0]))
        draws = table.sample(np.random.default_rng(1), 10_000)
        assert not np.any(draws == 1)


class TestAliasTableDistribution:
    def test_chi_square_on_unigram_power_distribution(self):
        """1e5 draws match the noise distribution (chi-square test)."""
        rng = np.random.default_rng(7)
        counts = rng.integers(1, 500, size=50).astype(np.float64)
        weights = counts**0.75
        table = AliasTable(weights)
        n_draws = 100_000
        draws = table.sample(np.random.default_rng(11), n_draws)
        observed = np.bincount(draws, minlength=50)
        expected = table.probabilities * n_draws
        chi_square = float(((observed - expected) ** 2 / expected).sum())
        # dof = 49: mean 49, std sqrt(98); 5 sigma ≈ 98.5 — a correct
        # sampler fails this with probability < 1e-6
        assert chi_square < 49 + 5 * np.sqrt(2 * 49)

    def test_shaped_sampling(self):
        table = AliasTable(np.array([1.0, 2.0, 3.0]))
        draws = table.sample(np.random.default_rng(0), (128, 5))
        assert draws.shape == (128, 5)
        assert draws.min() >= 0 and draws.max() <= 2

    def test_deterministic_per_rng_seed(self):
        table = AliasTable(np.array([1.0, 2.0, 3.0]))
        first = table.sample(np.random.default_rng(3), 1000)
        second = table.sample(np.random.default_rng(3), 1000)
        np.testing.assert_array_equal(first, second)
