"""Tests for Dense and Dropout layers (including gradient checks)."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.layers import Dense, Dropout


class TestDense:
    def test_validation(self):
        with pytest.raises(TrainingError):
            Dense(0)
        with pytest.raises(TrainingError):
            Dense(3, l2=-0.1)

    def test_forward_requires_build(self):
        layer = Dense(3)
        with pytest.raises(TrainingError):
            layer.forward(np.zeros((1, 2)))

    def test_build_and_forward_shapes(self):
        layer = Dense(3, activation="relu")
        out_dim = layer.build(4, np.random.default_rng(0))
        assert out_dim == 3
        output = layer.forward(np.zeros((5, 4)))
        assert output.shape == (5, 3)

    def test_backward_requires_forward(self):
        layer = Dense(2)
        layer.build(2, np.random.default_rng(0))
        with pytest.raises(TrainingError):
            layer.backward(np.zeros((1, 2)))

    def test_gradient_check(self):
        rng = np.random.default_rng(1)
        layer = Dense(3, activation="sigmoid")
        layer.build(4, rng)
        inputs = rng.normal(size=(6, 4))
        upstream = rng.normal(size=(6, 3))

        def loss(weights):
            saved = layer.weights.copy()
            layer.weights = weights
            value = float(np.sum(layer.forward(inputs) * upstream))
            layer.weights = saved
            return value

        layer.forward(inputs)
        layer.backward(upstream)
        analytic = layer.gradients()[0] * inputs.shape[0]  # undo the 1/batch scaling
        epsilon = 1e-6
        for i in range(2):
            for j in range(2):
                perturbed = layer.weights.copy()
                perturbed[i, j] += epsilon
                plus = loss(perturbed)
                perturbed[i, j] -= 2 * epsilon
                minus = loss(perturbed)
                numeric = (plus - minus) / (2 * epsilon)
                assert analytic[i, j] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_l2_regularisation_added_to_gradient(self):
        rng = np.random.default_rng(2)
        plain = Dense(2, activation="linear", l2=0.0)
        regularised = Dense(2, activation="linear", l2=1.0)
        plain.build(2, np.random.default_rng(7))
        regularised.build(2, np.random.default_rng(7))
        inputs = rng.normal(size=(3, 2))
        upstream = rng.normal(size=(3, 2))
        plain.forward(inputs)
        regularised.forward(inputs)
        plain.backward(upstream)
        regularised.backward(upstream)
        difference = regularised.gradients()[0] - plain.gradients()[0]
        assert np.allclose(difference, regularised.weights)

    def test_regularisation_loss(self):
        layer = Dense(2, l2=0.5)
        layer.build(2, np.random.default_rng(0))
        expected = 0.25 * float(np.sum(layer.weights**2))
        assert layer.regularisation_loss() == pytest.approx(expected)
        assert Dense(2).regularisation_loss() == 0.0


class TestDropout:
    def test_rate_validation(self):
        with pytest.raises(TrainingError):
            Dropout(1.0)
        with pytest.raises(TrainingError):
            Dropout(-0.1)

    def test_identity_at_inference(self):
        layer = Dropout(0.5)
        layer.build(4, np.random.default_rng(0))
        inputs = np.ones((3, 4))
        assert np.allclose(layer.forward(inputs, training=False), inputs)

    def test_training_zeroes_some_units(self):
        layer = Dropout(0.5, seed=1)
        layer.build(100, np.random.default_rng(0))
        output = layer.forward(np.ones((1, 100)), training=True)
        assert np.any(output == 0.0)
        assert np.any(output > 1.0)  # inverted dropout rescales survivors

    def test_expected_scale_preserved(self):
        layer = Dropout(0.3, seed=2)
        layer.build(10_000, np.random.default_rng(0))
        output = layer.forward(np.ones((1, 10_000)), training=True)
        assert output.mean() == pytest.approx(1.0, rel=0.05)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, seed=3)
        layer.build(50, np.random.default_rng(0))
        output = layer.forward(np.ones((1, 50)), training=True)
        gradient = layer.backward(np.ones((1, 50)))
        assert np.allclose((output == 0.0), (gradient == 0.0))

    def test_backward_identity_without_mask(self):
        layer = Dropout(0.5)
        gradient = np.ones((2, 3))
        assert np.allclose(layer.backward(gradient), gradient)
