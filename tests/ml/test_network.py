"""Tests for the sequential network: training, early stopping, prediction."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.layers import Dense, Dropout
from repro.ml.metrics import accuracy, binary_accuracy
from repro.ml.network import NeuralNetwork


def xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1.0, 1.0, (n, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(float)
    return x, y


def blob_data(n=240, seed=0):
    rng = np.random.default_rng(seed)
    centres = np.array([[2.0, 0.0], [-2.0, 0.0], [0.0, 2.5]])
    labels = rng.integers(0, 3, n)
    x = centres[labels] + rng.normal(0.0, 0.5, (n, 2))
    one_hot = np.zeros((n, 3))
    one_hot[np.arange(n), labels] = 1.0
    return x, one_hot


class TestValidation:
    def test_requires_layers(self):
        with pytest.raises(TrainingError):
            NeuralNetwork([])

    def test_requires_matching_lengths(self):
        network = NeuralNetwork([Dense(2, activation="sigmoid")])
        with pytest.raises(TrainingError):
            network.fit(np.zeros((4, 2)), np.zeros(3), epochs=1)

    def test_requires_two_samples(self):
        network = NeuralNetwork([Dense(1, activation="sigmoid")])
        with pytest.raises(TrainingError):
            network.fit(np.zeros((1, 2)), np.zeros(1), epochs=1)

    def test_input_width_fixed_after_build(self):
        network = NeuralNetwork([Dense(1, activation="sigmoid")])
        network.build(3)
        with pytest.raises(TrainingError):
            network.predict(np.zeros((2, 5)))


class TestTraining:
    def test_learns_xor(self):
        from repro.ml.optimizers import Nadam

        x, y = xor_data()
        network = NeuralNetwork(
            [Dense(16, activation="tanh"), Dense(1, activation="sigmoid")],
            loss="binary_crossentropy",
            optimizer=Nadam(learning_rate=0.01),
            seed=1,
        )
        network.fit(x, y, epochs=150, batch_size=16, validation_split=0.1,
                    patience=80)
        predictions = network.predict(x).ravel()
        assert binary_accuracy(predictions, y) > 0.9

    def test_learns_multiclass_blobs(self):
        x, y = blob_data()
        network = NeuralNetwork(
            [Dense(16, activation="relu"), Dense(3, activation="softmax")],
            loss="categorical_crossentropy",
            optimizer="nadam",
            seed=2,
        )
        network.fit(x, y, epochs=80, batch_size=16)
        assert accuracy(network.predict(x), y) > 0.9

    def test_learns_linear_regression(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(300, 3))
        y = x @ np.array([1.0, -2.0, 0.5]) + 0.3
        network = NeuralNetwork(
            [Dense(16, activation="relu"), Dense(1, activation="linear")],
            loss="mean_squared_error",
            optimizer="adam",
            seed=3,
        )
        network.fit(x, y, epochs=120, batch_size=32, validation_split=0.1,
                    patience=120)
        predictions = network.predict(x).ravel()
        residual = np.mean(np.abs(predictions - y))
        assert residual < 0.4

    def test_history_contents(self):
        x, y = xor_data(80)
        network = NeuralNetwork(
            [Dense(8, activation="tanh"), Dense(1, activation="sigmoid")], seed=0
        )
        history = network.fit(x, y, epochs=10, validation_split=0.2, patience=20)
        assert history.epochs <= 10
        assert len(history.train_loss) == history.epochs
        assert len(history.validation_loss) == history.epochs
        assert 0 <= history.best_epoch < history.epochs

    def test_early_stopping_triggers(self):
        x, y = xor_data(60)
        network = NeuralNetwork(
            [Dense(4, activation="sigmoid"), Dense(1, activation="sigmoid")], seed=0
        )
        history = network.fit(x, y, epochs=500, validation_split=0.3, patience=3)
        assert history.stopped_early
        assert history.epochs < 500

    def test_training_with_dropout_runs(self):
        x, y = xor_data(100)
        network = NeuralNetwork(
            [Dense(16, activation="relu"), Dropout(0.3), Dense(1, activation="sigmoid")],
            seed=4,
        )
        history = network.fit(x, y, epochs=20)
        assert history.epochs > 0

    def test_no_validation_split(self):
        x, y = xor_data(50)
        network = NeuralNetwork(
            [Dense(4, activation="tanh"), Dense(1, activation="sigmoid")], seed=5
        )
        history = network.fit(x, y, epochs=5, validation_split=0.0)
        assert history.validation_loss == []

    def test_predict_is_deterministic(self):
        x, y = xor_data(60)
        network = NeuralNetwork(
            [Dense(8, activation="tanh"), Dropout(0.5), Dense(1, activation="sigmoid")],
            seed=6,
        )
        network.fit(x, y, epochs=5)
        first = network.predict(x)
        second = network.predict(x)
        assert np.allclose(first, second)
