"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.metrics import (
    accuracy,
    binary_accuracy,
    confusion_matrix,
    mean_absolute_error,
    precision_recall_f1,
)


class TestBinaryAccuracy:
    def test_perfect_and_half(self):
        targets = np.array([1, 0, 1, 0])
        assert binary_accuracy(np.array([0.9, 0.1, 0.8, 0.2]), targets) == 1.0
        assert binary_accuracy(np.array([0.9, 0.9, 0.1, 0.1]), targets) == 0.5

    def test_threshold(self):
        assert binary_accuracy(np.array([0.4]), np.array([1]), threshold=0.3) == 1.0

    def test_validation(self):
        with pytest.raises(TrainingError):
            binary_accuracy(np.array([0.5]), np.array([1, 0]))
        with pytest.raises(TrainingError):
            binary_accuracy(np.array([]), np.array([]))


class TestAccuracy:
    def test_one_hot_accuracy(self):
        predictions = np.array([[0.8, 0.1, 0.1], [0.1, 0.2, 0.7]])
        targets = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        assert accuracy(predictions, targets) == 0.5

    def test_delegates_to_binary_for_single_column(self):
        assert accuracy(np.array([[0.9], [0.1]]), np.array([[1.0], [0.0]])) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(TrainingError):
            accuracy(np.zeros((2, 3)), np.zeros((2, 2)))


class TestMae:
    def test_value(self):
        assert mean_absolute_error(np.array([1.0, 3.0]), np.array([2.0, 1.0])) == 1.5

    def test_empty(self):
        with pytest.raises(TrainingError):
            mean_absolute_error(np.array([]), np.array([]))


class TestConfusionMatrix:
    def test_entries(self):
        matrix = confusion_matrix(
            predicted_labels=np.array([0, 1, 1, 2]),
            target_labels=np.array([0, 1, 2, 2]),
            n_classes=3,
        )
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_shape_mismatch(self):
        with pytest.raises(TrainingError):
            confusion_matrix(np.array([0]), np.array([0, 1]), 2)


class TestPrecisionRecall:
    def test_perfect(self):
        precision, recall, f1 = precision_recall_f1(
            np.array([0.9, 0.1]), np.array([1, 0])
        )
        assert precision == recall == f1 == 1.0

    def test_no_positive_predictions(self):
        precision, recall, f1 = precision_recall_f1(
            np.array([0.1, 0.1]), np.array([1, 0])
        )
        assert precision == 0.0 and recall == 0.0 and f1 == 0.0

    def test_known_values(self):
        # predictions: TP=1, FP=1, FN=1
        precision, recall, f1 = precision_recall_f1(
            np.array([0.9, 0.9, 0.1]), np.array([1, 0, 1])
        )
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(0.5)
        assert f1 == pytest.approx(0.5)
