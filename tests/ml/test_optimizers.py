"""Tests for SGD, Adam and Nadam optimisers."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.optimizers import SGD, Adam, Nadam, get_optimizer


def quadratic_descent(optimizer, steps=200, start=5.0):
    """Minimise f(x) = x^2 and return the final |x|."""
    x = np.array([start])
    for _ in range(steps):
        gradient = 2.0 * x
        optimizer.step([x], [gradient])
    return float(abs(x[0]))


class TestValidation:
    def test_learning_rate_positive(self):
        with pytest.raises(TrainingError):
            SGD(learning_rate=0.0)
        with pytest.raises(TrainingError):
            Adam(learning_rate=-1.0)

    def test_momentum_range(self):
        with pytest.raises(TrainingError):
            SGD(momentum=1.0)


class TestConvergenceOnQuadratic:
    @pytest.mark.parametrize("optimizer", [
        SGD(learning_rate=0.1),
        SGD(learning_rate=0.05, momentum=0.9),
        Adam(learning_rate=0.2),
        Nadam(learning_rate=0.2),
    ])
    def test_converges_to_minimum(self, optimizer):
        assert quadratic_descent(optimizer) < 0.05

    def test_nadam_faster_than_plain_sgd_small_lr(self):
        sgd_final = quadratic_descent(SGD(learning_rate=0.001), steps=100)
        nadam_final = quadratic_descent(Nadam(learning_rate=0.1), steps=100)
        assert nadam_final < sgd_final


class TestMechanics:
    def test_none_gradients_are_skipped(self):
        x = np.array([1.0])
        Nadam().step([x, x], [None, np.array([0.0])])
        assert x[0] == 1.0

    def test_sgd_update_rule(self):
        x = np.array([1.0])
        SGD(learning_rate=0.5).step([x], [np.array([1.0])])
        assert x[0] == pytest.approx(0.5)

    def test_reset_clears_state(self):
        optimizer = Adam(learning_rate=0.1)
        x = np.array([1.0])
        optimizer.step([x], [np.array([1.0])])
        optimizer.reset()
        assert optimizer._t == 0 and not optimizer._m

    def test_adam_state_is_per_parameter(self):
        optimizer = Adam(learning_rate=0.1)
        x = np.array([1.0])
        y = np.array([2.0, 3.0])
        optimizer.step([x, y], [np.array([1.0]), np.array([1.0, 1.0])])
        assert len(optimizer._m) == 2

    def test_registry(self):
        assert isinstance(get_optimizer("nadam"), Nadam)
        assert isinstance(get_optimizer("sgd", learning_rate=0.1), SGD)
        instance = Adam()
        assert get_optimizer(instance) is instance
        with pytest.raises(TrainingError):
            get_optimizer("rmsprop")
