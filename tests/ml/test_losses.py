"""Tests for loss functions and their gradients."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.losses import (
    BinaryCrossEntropy,
    CategoricalCrossEntropy,
    MeanAbsoluteError,
    MeanSquaredError,
    get_loss,
)


class TestBinaryCrossEntropy:
    def test_perfect_prediction_is_near_zero(self):
        loss = BinaryCrossEntropy()
        predictions = np.array([[0.999], [0.001]])
        targets = np.array([[1.0], [0.0]])
        assert loss.value(predictions, targets) < 0.01

    def test_worst_prediction_is_large(self):
        loss = BinaryCrossEntropy()
        predictions = np.array([[0.01]])
        targets = np.array([[1.0]])
        assert loss.value(predictions, targets) > 1.0

    def test_gradient_sign(self):
        loss = BinaryCrossEntropy()
        predictions = np.array([[0.3]])
        assert loss.gradient(predictions, np.array([[1.0]]))[0, 0] < 0
        assert loss.gradient(predictions, np.array([[0.0]]))[0, 0] > 0


class TestCategoricalCrossEntropy:
    def test_value_for_uniform_prediction(self):
        loss = CategoricalCrossEntropy()
        predictions = np.full((1, 4), 0.25)
        targets = np.array([[0.0, 1.0, 0.0, 0.0]])
        assert loss.value(predictions, targets) == pytest.approx(np.log(4))

    def test_gradient_is_probabilities_minus_targets(self):
        loss = CategoricalCrossEntropy()
        predictions = np.array([[0.7, 0.2, 0.1]])
        targets = np.array([[0.0, 1.0, 0.0]])
        assert np.allclose(loss.gradient(predictions, targets), [[0.7, -0.8, 0.1]])


class TestRegressionLosses:
    def test_mae_value_and_gradient(self):
        loss = MeanAbsoluteError()
        predictions = np.array([[2.0], [0.0]])
        targets = np.array([[1.0], [1.0]])
        assert loss.value(predictions, targets) == pytest.approx(1.0)
        gradient = loss.gradient(predictions, targets)
        assert gradient[0, 0] > 0 and gradient[1, 0] < 0

    def test_mse_value_and_gradient(self):
        loss = MeanSquaredError()
        predictions = np.array([[3.0]])
        targets = np.array([[1.0]])
        assert loss.value(predictions, targets) == pytest.approx(4.0)
        assert np.allclose(loss.gradient(predictions, targets), [[4.0]])

    def test_mae_zero_for_exact(self):
        loss = MeanAbsoluteError()
        values = np.array([[1.0], [2.0]])
        assert loss.value(values, values) == 0.0


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("binary_crossentropy", BinaryCrossEntropy),
        ("categorical_crossentropy", CategoricalCrossEntropy),
        ("mae", MeanAbsoluteError),
        ("mean_absolute_error", MeanAbsoluteError),
        ("mse", MeanSquaredError),
    ])
    def test_lookup(self, name, cls):
        assert isinstance(get_loss(name), cls)

    def test_instance_passthrough(self):
        loss = MeanAbsoluteError()
        assert get_loss(loss) is loss

    def test_unknown(self):
        with pytest.raises(TrainingError):
            get_loss("hinge")
