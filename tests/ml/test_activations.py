"""Tests for activation functions and their derivatives."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.activations import get_activation


def numerical_gradient(activation, x, epsilon=1e-6):
    plus = activation.forward(x + epsilon)
    minus = activation.forward(x - epsilon)
    return (plus - minus) / (2 * epsilon)


class TestForward:
    def test_sigmoid_range_and_midpoint(self):
        sigmoid = get_activation("sigmoid")
        values = sigmoid.forward(np.array([-100.0, 0.0, 100.0]))
        assert values[0] == pytest.approx(0.0, abs=1e-6)
        assert values[1] == pytest.approx(0.5)
        assert values[2] == pytest.approx(1.0, abs=1e-6)

    def test_relu(self):
        relu = get_activation("relu")
        assert np.allclose(relu.forward(np.array([-2.0, 0.0, 3.0])), [0.0, 0.0, 3.0])

    def test_linear_identity(self):
        linear = get_activation("linear")
        x = np.array([1.0, -2.0])
        assert np.allclose(linear.forward(x), x)

    def test_tanh(self):
        tanh = get_activation("tanh")
        assert np.allclose(tanh.forward(np.array([0.0])), [0.0])

    def test_softmax_rows_sum_to_one(self):
        softmax = get_activation("softmax")
        x = np.array([[1.0, 2.0, 3.0], [10.0, 10.0, 10.0]])
        probabilities = softmax.forward(x)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert probabilities[0].argmax() == 2

    def test_softmax_is_shift_invariant(self):
        softmax = get_activation("softmax")
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax.forward(x), softmax.forward(x + 100.0))


class TestBackward:
    @pytest.mark.parametrize("name", ["sigmoid", "relu", "tanh", "linear"])
    def test_gradient_matches_numerical(self, name):
        activation = get_activation(name)
        x = np.linspace(-2.0, 2.0, 21) + 0.01  # avoid the ReLU kink at 0
        output = activation.forward(x)
        analytic = activation.backward(x, output)
        numerical = numerical_gradient(activation, x)
        assert np.allclose(analytic, numerical, atol=1e-4)


class TestRegistry:
    def test_lookup_by_name_case_insensitive(self):
        assert get_activation("ReLU").name == "relu"

    def test_instance_passthrough(self):
        instance = get_activation("sigmoid")
        assert get_activation(instance) is instance

    def test_unknown_activation(self):
        with pytest.raises(TrainingError):
            get_activation("swish")
