"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments that lack the ``wheel`` package required by PEP 660 builds
(``pip install -e . --no-use-pep517`` falls back to this file).
"""

from setuptools import setup

setup()
