"""Example: impute the missing ``original_language`` of movies (paper §5.5.2).

The embeddings are trained while *ignoring* the original-language column;
afterwards a small softmax network predicts the language of every movie from
its title embedding.  Mode imputation and a DataWig-style n-gram imputer
serve as baselines, mirroring Figure 12a of the paper.

Run with::

    python examples/movie_language_imputation.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import ModeImputer, NGramImputer, denormalise_spreadsheet
from repro.datasets import generate_tmdb
from repro.experiments.embedding_factory import build_embedding_suite
from repro.experiments.task_data import language_imputation_data
from repro.tasks import CategoryImputationTask


def main() -> None:
    dataset = generate_tmdb(num_movies=200, seed=11, embedding_dimension=48)
    suite = build_embedding_suite(
        dataset.database,
        dataset.embedding,
        methods=("PV", "RN"),
        exclude_columns=("movies.original_language",),
    )
    data = language_imputation_data(suite.extraction, dataset)
    print(f"{len(data)} movies, {data.n_classes} languages: {data.label_names}")

    rng = np.random.default_rng(0)
    order = rng.permutation(len(data))
    split = len(order) // 2
    train_idx, test_idx = order[:split], order[split:]

    # baseline 1: mode imputation
    train_labels = [data.label_names[i] for i in data.labels[train_idx]]
    test_labels = [data.label_names[i] for i in data.labels[test_idx]]
    mode = ModeImputer().fit(train_labels)
    print(f"\nmode imputation      : {mode.accuracy(test_labels):.3f} "
          f"(always predicts {mode.mode!r})")

    # baseline 2: DataWig-style n-gram imputer on the denormalised movies table
    spreadsheet = denormalise_spreadsheet(dataset.database, "movies")
    rows = [spreadsheet[i] for i in order]
    imputer = NGramImputer(
        input_columns=["title", "overview"],
        output_column="original_language",
        epochs=40,
    )
    imputer.fit(rows[:split])
    print(f"DataWig-style imputer: {imputer.accuracy(rows[split:]):.3f}")

    # RETRO embeddings + softmax imputation network
    for name in ("PV", "RN"):
        embeddings = suite.get(name)
        task = CategoryImputationTask(hidden_units=(96, 48), epochs=60)
        outcome = task.train_and_evaluate(
            embeddings.matrix[data.indices[train_idx]], data.labels[train_idx],
            embeddings.matrix[data.indices[test_idx]], data.labels[test_idx],
            n_classes=data.n_classes,
        )
        print(f"{name:20s} : {outcome.accuracy:.3f}")


if __name__ == "__main__":
    main()
