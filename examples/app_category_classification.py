"""Example: classify Google Play apps into their store category (Figure 12b).

The category column and the (nearly synonymous) genre relation are hidden
while training the embeddings; the classifier then has to recover the
category of an app from its name embedding — which, thanks to relational
retrofitting, has absorbed the content of the app's reviews.

Run with::

    python examples/app_category_classification.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import ModeImputer
from repro.datasets import generate_google_play
from repro.experiments.embedding_factory import build_embedding_suite
from repro.experiments.task_data import app_category_data
from repro.tasks import CategoryImputationTask


def main() -> None:
    dataset = generate_google_play(num_apps=250, seed=5, embedding_dimension=48)
    print("database summary:", dataset.summary())

    suite = build_embedding_suite(
        dataset.database,
        dataset.embedding,
        methods=("PV", "RN"),
        exclude_columns=("categories.name", "genres.name"),
    )
    data = app_category_data(suite.extraction, dataset)
    print(f"{len(data)} apps across {data.n_classes} categories")

    rng = np.random.default_rng(0)
    order = rng.permutation(len(data))
    split = len(order) // 2
    train_idx, test_idx = order[:split], order[split:]

    train_labels = [data.label_names[i] for i in data.labels[train_idx]]
    test_labels = [data.label_names[i] for i in data.labels[test_idx]]
    mode = ModeImputer().fit(train_labels)
    print(f"\nmode imputation: {mode.accuracy(test_labels):.3f}")

    for name in ("PV", "RN"):
        embeddings = suite.get(name)
        task = CategoryImputationTask(hidden_units=(128, 64), epochs=60)
        outcome = task.train_and_evaluate(
            embeddings.matrix[data.indices[train_idx]], data.labels[train_idx],
            embeddings.matrix[data.indices[test_idx]], data.labels[test_idx],
            n_classes=data.n_classes,
        )
        label = "plain word vectors" if name == "PV" else "RETRO (series solver)"
        print(f"{label:22s}: {outcome.accuracy:.3f}")

    # show a few example predictions with the RETRO embeddings
    embeddings = suite.get("RN")
    task = CategoryImputationTask(hidden_units=(128, 64), epochs=60)
    task_outcome_net = task.build_network(data.n_classes)
    from repro.tasks.imputation import one_hot
    from repro.tasks.sampling import normalise_features
    task_outcome_net.fit(
        normalise_features(embeddings.matrix[data.indices[train_idx]]),
        one_hot(data.labels[train_idx], data.n_classes),
        epochs=60,
    )
    predictions = task_outcome_net.predict(
        normalise_features(embeddings.matrix[data.indices[test_idx]])
    ).argmax(axis=1)
    print("\nsample predictions (app name -> predicted / true category):")
    apps = dataset.database.table("apps")
    names = {row["id"]: row["name"] for row in apps}
    shown = 0
    for position, test_position in enumerate(test_idx):
        record = suite.extraction.records[data.indices[test_position]]
        predicted = data.label_names[int(predictions[position])]
        true = data.label_names[int(data.labels[test_position])]
        marker = "ok " if predicted == true else "MISS"
        print(f"  [{marker}] {record.text:28s} -> {predicted:22s} (true: {true})")
        shown += 1
        if shown >= 8:
            break
    del names


if __name__ == "__main__":
    main()
