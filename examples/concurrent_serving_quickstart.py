"""Concurrent serving quickstart: queries while the database churns.

Builds a small retrofitted model, wraps it in a
:class:`~repro.serving.ServingRuntime` — a background applier thread
draining a write-ahead delta queue into double-buffered serving sessions —
and drives it from several reader threads through a
:class:`~repro.serving.BatchedQueryFront`, which coalesces concurrent
top-k requests into single batched index queries.

Run with:

    PYTHONPATH=src python examples/concurrent_serving_quickstart.py
"""

import threading

import numpy as np

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving import BatchedQueryFront, ServingRuntime


def main() -> None:
    # 1. train: a synthetic TMDB database, retrofitted with RN defaults
    dataset = generate_tmdb(num_movies=80, seed=7, embedding_dimension=24)
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    result = pipeline.run(iterations=200)
    print(f"trained {len(result.embeddings)} text-value embeddings")

    # 2. serve: the runtime owns the database and the retrofitter; writers
    # submit deltas, readers never block on them
    retrofitter = pipeline.incremental_retrofitter(result)
    with ServingRuntime(
        dataset.database, retrofitter, solve_iterations=200
    ) as runtime:
        with BatchedQueryFront(runtime, window_seconds=0.002) as front:
            # a few reader threads hammering the index through the front
            matrix = result.embeddings.matrix.copy()
            stop = threading.Event()

            def reader(seed: int) -> None:
                rng = np.random.default_rng(seed)
                while not stop.is_set():
                    probe = matrix[int(rng.integers(0, matrix.shape[0]))]
                    front.topk(probe, 5, timeout=30.0)

            threads = [
                threading.Thread(target=reader, args=(seed,))
                for seed in range(3)
            ]
            for thread in threads:
                thread.start()

            # 3. write: a live delta lands while the readers keep serving
            delta = DatabaseDelta()
            delta.insert("movies", {
                "id": 90_001, "title": "the glass comet",
                "original_language": "english",
                "overview": "a comet observatory and a missing letter",
                "budget": 2e7, "revenue": 5e7, "popularity": 2.0,
                "release_year": 2026, "collection_id": None,
            })
            delta.insert("movie_countries", {
                "id": 90_001, "movie_id": 90_001, "country_id": 1,
            })
            ticket = runtime.submit(delta)
            version = ticket.wait(timeout=120.0)
            print(
                f"delta published as version {version} "
                f"(lag {ticket.lag_seconds * 1000:.0f} ms)"
            )

            # the freshly inserted title is immediately servable
            vector = runtime.embeddings.vector_for(
                "movies.title", "the glass comet"
            )
            top = runtime.topk(vector, 3)
            print("top-3 for the new movie's vector:")
            for category, text, score in top:
                print(f"  {score:.3f}  {category}: {text}")

            stop.set()
            for thread in threads:
                thread.join()

        stats = runtime.stats
        front_stats = front.stats
        print(
            f"served {front_stats.requests} batched queries in "
            f"{front_stats.batches_dispatched} index calls "
            f"(mean batch {front_stats.mean_batch_size:.1f}); "
            f"updates published: {stats.updates_published}, "
            f"snapshots reclaimed: {stats.snapshots_reclaimed}"
        )


if __name__ == "__main__":
    main()
