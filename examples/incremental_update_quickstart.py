"""Quickstart: serve a trained model and keep it fresh under live writes.

The end-to-end delta pipeline in one script:

1. train once, persist to an :class:`~repro.serving.EmbeddingStore`,
2. reopen it as a :class:`~repro.serving.ServingSession` (the IVF index is
   restored from its saved k-means state — nothing retrains),
3. apply a :class:`~repro.db.DatabaseDelta` of live writes through
   :meth:`~repro.retrofit.IncrementalRetrofitter.apply` — only the blast
   radius of the change is re-solved, warm-started from the served state,
4. fold the update into the live session
   (:meth:`~repro.serving.ServingSession.apply_update`: in-place index
   update, version bump, selective cache invalidation) and query the new
   rows immediately,
5. append the update as a versioned delta record and compact the store.

Run with::

    python examples/incremental_update_quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import RetroHyperparameters, RetroPipeline
from repro.datasets import generate_tmdb
from repro.db import DatabaseDelta
from repro.serving import EmbeddingStore, ServingSession, default_index_factory


def main() -> None:
    dataset = generate_tmdb(num_movies=200, seed=1, embedding_dimension=48)
    database = dataset.database
    pipeline = RetroPipeline(
        database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
        method="series",
    )
    result = pipeline.run(iterations=200)
    print(f"trained {len(result.extraction)} text-value vectors")

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"

        # --- 1+2: persist, then serve from disk ------------------------- #
        session = ServingSession(
            result.embeddings,
            index_factory=default_index_factory(ivf_threshold=256),
        )
        session.index_for(None)  # build the IVF index once
        session.save(store_dir, "movies")
        session = ServingSession.from_store(
            store_dir, "movies",
            index_factory=default_index_factory(ivf_threshold=256),
        )
        print(f"serving version {session.version} from {store_dir.name}/")

        # --- 3: live writes arrive as one delta ------------------------- #
        delta = (
            DatabaseDelta()
            .insert("persons", {"id": 90_001, "name": "nova directorsson"})
            .insert("movies", {
                "id": 90_001, "title": "midnight quantum heist",
                "original_language": "english",
                "overview": "a daring heist across the galaxy",
                "budget": 9.5e7, "revenue": 3.0e8, "popularity": 9.5,
                "release_year": 2026, "collection_id": None,
            })
            .insert("movie_directors", {
                "id": 90_001, "movie_id": 90_001, "person_id": 90_001,
            })
            .insert("movie_countries", {
                "id": 90_001, "movie_id": 90_001, "country_id": 1,
            })
            .update("movies", 5, overview="a fresh look at a space adventure")
        )
        retrofitter = pipeline.incremental_retrofitter(result)
        started = time.perf_counter()
        update = retrofitter.apply(database, delta)
        elapsed = (time.perf_counter() - started) * 1000.0
        print(
            f"incremental retrofit: {update.report.n_active} of "
            f"{len(update.embeddings)} rows re-solved in {elapsed:.1f} ms "
            f"({update.report.mode})"
        )

        # --- 4: the live session follows, no index rebuild -------------- #
        stats = session.apply_update(update)
        print(
            f"serving update: +{stats.rows_added} rows, "
            f"-{stats.rows_removed}, {stats.rows_changed} changed, "
            f"index in place: {stats.index_updated_in_place}, "
            f"now version {session.version}"
        )
        vector = session.vector_for("movies.title", "midnight quantum heist")
        for category, text, score in session.topk(vector, 4):
            print(f"  {score:+.3f}  {category}: {text[:60]}")

        # --- 5: durable delta record + compaction ----------------------- #
        store = EmbeddingStore(store_dir)
        store.append_embedding_set_delta("movies", update)
        print(f"delta records: {store.list_embedding_set_deltas('movies')}")
        reopened = ServingSession.from_store(store_dir, "movies")
        assert reopened.version == store.latest_version("movies")
        assert reopened.topk(vector, 1)[0][1] == "midnight quantum heist"
        compacted_to = store.compact_embedding_set("movies")
        print(f"compacted store to version {compacted_to}")


if __name__ == "__main__":
    main()
