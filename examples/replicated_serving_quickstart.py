"""Replicated serving quickstart: log-shipping replicas behind /v1 HTTP.

Trains a small retrofitted model, persists it through the
:class:`~repro.serving.EmbeddingStore`, and serves it from a
:class:`~repro.serving.ReplicatedServingTier`: one primary process owns
the database and the retrofit solver and publishes every applied delta to
the store's versioned delta log; follower processes tail that log, replay
it into full-corpus read replicas, and answer top-k queries.

On top sits the network tier from this iteration:

* a :class:`~repro.serving.MultiFrontDeployment` — two
  :class:`~repro.serving.HTTPServingFront` *processes* sharing the one
  replica pool behind a single connection-balancing address, with
  bearer-token auth (per-token read/write scopes);
* a :class:`~repro.serving.ServingClient` — the stdlib client: retried
  calls, idempotent write resubmission (one submission id across
  retries), and automatic read-your-writes floors (a reader that just
  wrote always sees its write, whichever front answers).

Run with:

    PYTHONPATH=src python examples/replicated_serving_quickstart.py
"""

import tempfile

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.retrofit.incremental import IncrementalRetrofitter
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving import (
    EmbeddingStore,
    MultiFrontDeployment,
    ReplicatedServingTier,
    ServingAPIError,
    ServingClient,
)

TOKENS = {
    "reader-key": "read",  # queries and stats only
    "writer-key": ("read", "write"),  # may also POST /v1/submit
}


def main() -> None:
    # 1. train: a synthetic TMDB database, retrofitted with RN defaults
    dataset = generate_tmdb(num_movies=80, seed=7, embedding_dimension=24)
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    result = pipeline.run(iterations=200)
    print(f"trained {len(result.embeddings)} text-value embeddings")

    def follower_retrofitter(embeddings):
        # arms failover: a follower elected primary rebuilds its solver
        # from its replayed embeddings
        return IncrementalRetrofitter(
            embeddings,
            pipeline.tokenizer,
            hyperparams=pipeline.hyperparams,
            method=pipeline.method,
        )

    with tempfile.TemporaryDirectory() as store_dir:
        # 2. persist: the store's delta log is the replication channel —
        # the primary appends, every follower tails
        store = EmbeddingStore(store_dir)
        store.save_embedding_set("model", result.embeddings)

        # 3. serve: one primary + two follower processes, behind two
        # balanced HTTP front processes speaking the /v1 API
        retrofitter = pipeline.incremental_retrofitter(result)
        tier = ReplicatedServingTier(
            store_dir,
            "model",
            n_replicas=2,
            database=dataset.database,
            retrofitter=retrofitter,
            retrofitter_factory=follower_retrofitter,
            solve_iterations=200,
        )
        with tier, MultiFrontDeployment(
            tier, n_fronts=2, front_options={"auth_tokens": TOKENS}
        ) as deployment:
            print(f"serving reads on {tier.live_followers} followers")
            print(f"{deployment.live_fronts} fronts behind {deployment.address}")

            writer = ServingClient(deployment.address, token="writer-key")
            print("health:", writer.health())

            # 4. write over the network: POST /v1/submit carries the
            # delta's to_dict() wire form plus a submission id — the
            # idempotency key; a retried POST applies exactly once
            delta = DatabaseDelta()
            delta.insert("movies", {
                "id": 90_001, "title": "the meridian line",
                "original_language": "english",
                "overview": "a quiet voyage across the meridian",
                "budget": 1e7, "revenue": 2e7, "popularity": 1.0,
                "release_year": 2026, "collection_id": None,
            })
            version = writer.submit(delta, submission_id="quickstart-1")
            print(f"delta published as log version {version}")
            again = writer.submit(delta, submission_id="quickstart-1")
            assert again == version  # dedup hit: same version, applied once

            # 5. read-your-writes: the client remembers its acked version
            # and floors every later read with it, so the new title is
            # visible no matter which front or follower answers
            loaded, _, _ = store.load_embedding_set_versioned("model")
            query = loaded.vector_for("movies.title", "the meridian line")
            reply = writer.topk(query, k=3, category="movies.title")
            assert reply["version"] >= version
            print(f"top-3 at version {reply['version']}:")
            for category, text, score in reply["results"]:
                print(f"  {score:+.3f}  {category}  {text!r}")

            # 6. scopes: the reader token may query but not write
            reader = ServingClient(deployment.address, token="reader-key")
            reader.topk(query, k=1)
            try:
                reader.submit(delta)
            except ServingAPIError as error:
                print(f"reader write refused: {error}")  # HTTP 403

            # 7. the deployment aggregates per-front counters
            stats = deployment.stats()
            per_front = [
                entry["front"]["requests"] for entry in stats["fronts"]
            ]
            print(f"requests per front: {per_front}")
            print(f"totals: {stats['totals']}")


if __name__ == "__main__":
    main()
