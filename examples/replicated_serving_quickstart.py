"""Replicated serving quickstart: log-shipping replicas behind HTTP.

Trains a small retrofitted model, persists it through the
:class:`~repro.serving.EmbeddingStore`, and serves it from a
:class:`~repro.serving.ReplicatedServingTier`: one primary process owns
the database and the retrofit solver and publishes every applied delta to
the store's versioned delta log; follower processes tail that log, replay
it into full-corpus read replicas, and answer top-k queries.  An
:class:`~repro.serving.HTTPServingFront` — a stdlib-asyncio HTTP/JSON
endpoint with event-loop query batching and per-client rate limits — sits
on top, queried here with nothing but ``urllib``.

Read-your-writes: a resolved write ticket carries the log version the
update published at; pass it as ``min_version`` and the answering replica
is guaranteed at-or-past that position.

Run with:

    PYTHONPATH=src python examples/replicated_serving_quickstart.py
"""

import json
import tempfile
import urllib.request

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.retrofit.incremental import IncrementalRetrofitter
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving import (
    EmbeddingStore,
    HTTPServingFront,
    ReplicatedServingTier,
    ServingSession,
)


def get_json(url: str, payload: dict | None = None) -> dict:
    """One HTTP round trip with plain urllib — no client library needed."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    # 1. train: a synthetic TMDB database, retrofitted with RN defaults
    dataset = generate_tmdb(num_movies=80, seed=7, embedding_dimension=24)
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    result = pipeline.run(iterations=200)
    print(f"trained {len(result.embeddings)} text-value embeddings")

    def follower_retrofitter(embeddings):
        # arms failover: a follower elected primary rebuilds its solver
        # from its replayed embeddings
        return IncrementalRetrofitter(
            embeddings,
            pipeline.tokenizer,
            hyperparams=pipeline.hyperparams,
            method=pipeline.method,
        )

    with tempfile.TemporaryDirectory() as store_dir:
        # 2. persist: the store's delta log is the replication channel —
        # the primary appends, every follower tails
        store = EmbeddingStore(store_dir)
        store.save_embedding_set("model", result.embeddings)

        # 3. serve: one primary + two follower processes
        retrofitter = pipeline.incremental_retrofitter(result)
        with ReplicatedServingTier(
            store_dir,
            "model",
            n_replicas=2,
            database=dataset.database,
            retrofitter=retrofitter,
            retrofitter_factory=follower_retrofitter,
            solve_iterations=200,
        ) as tier:
            print(f"serving reads on {tier.live_followers} followers")

            # 4. write: submit a database delta; the resolved ticket
            # carries the log version the update published at
            delta = DatabaseDelta()
            delta.insert("movies", {
                "id": 90_001, "title": "the meridian line",
                "original_language": "english",
                "overview": "a quiet voyage across the meridian",
                "budget": 1e7, "revenue": 2e7, "popularity": 1.0,
                "release_year": 2026, "collection_id": None,
            })
            ticket = tier.submit(delta)
            ticket.wait(timeout=120.0)
            print(f"delta published as log version {ticket.version}")

            # 5. read-your-writes: the floored read routes to a replica
            # at-or-past the ticket's version — the new title is visible
            loaded, _, version = store.load_embedding_set_versioned("model")
            query = loaded.vector_for("movies.title", "the meridian line")
            hit = tier.topk(
                query, k=1, category="movies.title",
                min_version=ticket.version,
            )
            print(f"nearest to the new title: {hit[0][1]!r}")
            print("follower positions:", tier.replica_versions())

            # a follower's replayed state equals the single-index session;
            # sync the whole pool first — plain (un-floored) reads are
            # eventually consistent and may route to a lagging follower
            tier.sync_replicas()
            session = ServingSession(loaded)
            assert tier.topk_batch(query[None, :], 5) == session.topk_batch(
                query[None, :], 5
            )
            print(f"replicated == single-index at version {version}: exact")

            # 6. HTTP: the asyncio front batches concurrent queries and
            # load-balances them across the followers
            with HTTPServingFront(tier, rate_per_second=100.0) as front:
                print(f"listening on {front.address}")
                reply = get_json(front.address + "/topk", {
                    "vector": list(query),
                    "k": 3,
                    "category": "movies.title",
                    "min_version": ticket.version,
                })
                print(f"HTTP top-3 at version {reply['version']}:")
                for category, text, score in reply["results"]:
                    print(f"  {score:+.3f}  {category}  {text!r}")
                print("health:", get_json(front.address + "/health"))

            print(tier.stats)


if __name__ == "__main__":
    main()
