"""Example: incremental maintenance of retrofitted embeddings.

One of RETRO's selling points is that the learned vectors can be maintained
incrementally when new rows arrive, instead of re-training everything.  This
script retrofits a movie database, inserts new movies (with a new director
and new reviews) and updates only the affected vectors, then verifies that
the incrementally computed vectors are close to what a full re-run produces.

Run with::

    python examples/incremental_updates.py
"""

from __future__ import annotations

import numpy as np

from repro import RetroHyperparameters, RetroPipeline
from repro.datasets import generate_tmdb
from repro.retrofit.incremental import full_and_incremental_agree


def main() -> None:
    dataset = generate_tmdb(num_movies=120, seed=3, embedding_dimension=48)
    database = dataset.database
    pipeline = RetroPipeline(
        database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
        method="series",
    )
    result = pipeline.run()
    print(f"initial run: {len(result.extraction)} text values")

    # --- the database grows --------------------------------------------- #
    new_movie_id = dataset.num_movies + 1
    database.insert("persons", {"id": 90_001, "name": "nova directorsson"})
    database.insert("movies", {
        "id": new_movie_id,
        "title": "midnight quantum heist",
        "original_language": "english",
        "overview": "a daring heist across the galaxy with an american crew",
        "budget": 95_000_000.0,
        "revenue": 300_000_000.0,
        "popularity": 9.5,
        "release_year": 2026,
        "collection_id": None,
    })
    database.insert("movie_directors", {
        "id": 90_001, "movie_id": new_movie_id, "person_id": 90_001,
    })
    database.insert("movie_countries", {
        "id": 90_001, "movie_id": new_movie_id, "country_id": 1,
    })
    database.insert("reviews", {
        "id": 90_001, "movie_id": new_movie_id,
        "text": "amazing heist thriller with stunning pacing",
    })
    print("inserted 1 movie, 1 director, 1 review, 2 relations")

    # --- incremental update ---------------------------------------------- #
    retrofitter = pipeline.incremental_retrofitter(result)
    update = retrofitter.update(database)
    print(f"incremental update: {len(update.new_indices)} new vectors solved, "
          f"{len(update.reused_indices)} existing vectors reused")

    new_vector = update.embeddings.vector_for("movies.title", "midnight quantum heist")
    director_vector = update.embeddings.vector_for("persons.name", "nova directorsson")
    similarity = float(
        new_vector @ director_vector
        / (np.linalg.norm(new_vector) * np.linalg.norm(director_vector) + 1e-12)
    )
    print(f"cosine(new movie, its new director) = {similarity:.3f}")

    # --- compare against a full re-run ----------------------------------- #
    full = pipeline.run()
    agree = full_and_incremental_agree(full.embeddings, update.embeddings)
    print(f"incremental vectors agree with a full re-run: {agree}")


if __name__ == "__main__":
    main()
