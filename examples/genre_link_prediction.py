"""Example: predict missing movie→genre links (paper §5.7, Figure 14).

The embeddings are trained while hiding every relationship that touches the
genre column; a two-tower edge classifier then decides for (movie, genre)
pairs whether the link exists.  Retrofitted embeddings outperform both plain
word vectors and DeepWalk, which fails because the hidden relation leaves
genre nodes structurally indistinguishable.

Run with::

    python examples/genre_link_prediction.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import generate_tmdb
from repro.experiments.embedding_factory import build_embedding_suite
from repro.experiments.task_data import genre_link_pairs, genre_relation_names
from repro.tasks import LinkPredictionTask


def main() -> None:
    dataset = generate_tmdb(num_movies=200, seed=13, embedding_dimension=48)
    hidden = genre_relation_names(dataset.database)
    print(f"hiding {len(hidden)} genre relationships during embedding training")

    suite = build_embedding_suite(
        dataset.database,
        dataset.embedding,
        methods=("PV", "RN", "DW"),
        exclude_relations=hidden,
    )

    rng = np.random.default_rng(0)
    pairs = genre_link_pairs(suite.extraction, dataset, n_pairs=250, rng=rng)
    order = rng.permutation(len(pairs))
    split = len(order) // 2
    train_idx, test_idx = order[:split], order[split:]
    print(f"{len(pairs)} labelled (movie, genre) pairs "
          f"({int(pairs.labels.sum())} positive)")

    for name in ("PV", "RN", "DW", "RN+DW"):
        if name not in suite.sets:
            continue
        embeddings = suite.get(name)
        task = LinkPredictionTask(hidden_units=96, epochs=40)
        outcome = task.train_and_evaluate(
            embeddings.matrix[pairs.source_indices[train_idx]],
            embeddings.matrix[pairs.target_indices[train_idx]],
            pairs.labels[train_idx],
            embeddings.matrix[pairs.source_indices[test_idx]],
            embeddings.matrix[pairs.target_indices[test_idx]],
            pairs.labels[test_idx],
        )
        print(f"{name:6s} link-prediction accuracy: {outcome.accuracy:.3f}")


if __name__ == "__main__":
    main()
