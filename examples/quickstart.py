"""Quickstart: retrofit a small movie database and explore the vectors.

Run with::

    python examples/quickstart.py

The script generates a small synthetic TMDB-shaped database (standing in for
a real PostgreSQL instance), runs the RETRO pipeline end-to-end and shows

* how many text values received embeddings and how many were out of
  vocabulary before retrofitting,
* nearest-neighbour queries on the learned vectors,
* how the vectors are written back into the database (the in-database
  deployment the paper describes).
"""

from __future__ import annotations

from repro import RetroHyperparameters, RetroPipeline
from repro.datasets import generate_tmdb


def main() -> None:
    dataset = generate_tmdb(num_movies=150, seed=7, embedding_dimension=48)
    print("database summary:", dataset.summary())

    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
        method="series",
    )
    result = pipeline.run()
    print(f"text values embedded : {len(result.extraction)}")
    print(f"out of vocabulary    : {result.base.oov_count} "
          f"(coverage {result.base.coverage:.1%})")
    print(f"solver               : {result.report.method}, "
          f"{result.report.iterations} iterations, "
          f"{result.report.runtime_seconds:.2f}s")

    # nearest neighbours of a movie title among other movie titles
    some_title = next(iter(dataset.movie_language))
    print(f"\nnearest movie titles to {some_title!r}:")
    query = result.vector_for("movies.title", some_title)
    for category, text, score in result.embeddings.nearest(
        query, k=6, category="movies.title"
    ):
        print(f"  {score:+.3f}  {text}")

    # nearest directors to the vector of the country 'usa'
    usa_vector = result.vector_for("countries.name", "usa")
    print("\ndirectors closest to the vector of 'usa':")
    for category, text, score in result.embeddings.nearest(
        usa_vector, k=5, category="persons.name"
    ):
        citizenship = dataset.director_citizenship.get(text, "unknown / actor")
        print(f"  {score:+.3f}  {text:30s} ({citizenship})")

    # in-database deployment: write the vectors back as a relation
    pipeline.augment_database(result)
    stored = dataset.database.table("text_value_embeddings")
    print(f"\nstored {len(stored)} vectors in table 'text_value_embeddings'")
    sample = stored.rows[0]
    print("sample row:", {k: sample[k] for k in ("source_table", "source_column", "value")},
          "vector dim:", len(sample["vector"]))


if __name__ == "__main__":
    main()
