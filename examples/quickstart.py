"""Quickstart: the RETRO pipeline and the unified experiment engine.

Run with::

    python examples/quickstart.py

The script walks through the two halves of the library:

1. the **core pipeline** — retrofit a small synthetic TMDB-shaped database
   and query the learned vectors through a serving session,
2. the **experiment engine** — every figure/table of the paper is a
   registered ``ExperimentSpec`` executed through a shared ``RunContext``
   that trains each embedding suite once and can persist it on disk.

The same engine backs the command line interface::

    python -m repro list
    python -m repro run figure8 table2 --sizes quick --cache-dir .repro-cache
    python -m repro run all --sizes quick

Running several experiments in one invocation (or against a warm
``--cache-dir``) reuses the trained PV/MF/RO/RN/DW suites instead of
retraining them per figure.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import RetroHyperparameters, RetroPipeline
from repro.datasets import generate_tmdb
from repro.experiments import (
    ExperimentSizes,
    RunContext,
    default_registry,
    run_experiment,
)


def pipeline_tour() -> None:
    """Train the RETRO pipeline once and query it through a serving session."""
    dataset = generate_tmdb(num_movies=150, seed=7, embedding_dimension=48)
    print("database summary:", dataset.summary())

    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
        method="series",
    )
    result = pipeline.run()
    print(f"text values embedded : {len(result.extraction)}")
    print(f"out of vocabulary    : {result.base.oov_count} "
          f"(coverage {result.base.coverage:.1%})")
    print(f"solver               : {result.report.method}, "
          f"{result.report.iterations} iterations, "
          f"{result.report.runtime_seconds:.2f}s")

    # similarity queries go through the serving layer (cached top-k indexes)
    session = result.serving_session()
    some_title = next(iter(dataset.movie_language))
    print(f"\nnearest movie titles to {some_title!r}:")
    query = result.vector_for("movies.title", some_title)
    for _, text, score in session.topk(query, k=6, category="movies.title"):
        print(f"  {score:+.3f}  {text}")


def engine_tour() -> None:
    """List the experiment catalogue and run one spec through the engine."""
    registry = default_registry()
    print("\nregistered experiments:")
    for spec in registry.specs():
        print(f"  {spec.name:<10} {spec.reference:<10} {spec.title}")

    # one shared context = one artifact cache; point cache_dir at a real
    # directory (e.g. ".repro-cache") to reuse trained suites across runs
    with tempfile.TemporaryDirectory() as cache_dir:
        context = RunContext(
            sizes=ExperimentSizes.tiny(), cache_dir=Path(cache_dir)
        )
        result = run_experiment("table1", context=context)
        print()
        print(result.table.to_text())
        print(f"\n[{result.experiment}] {result.seconds:.2f}s, "
              f"config fingerprint {result.fingerprint}")
        print(f"cache stats: {result.stats}")

        # every RunResult serialises to JSON (and back)
        out = Path(cache_dir) / "table1.json"
        result.save(out)
        print(f"wrote {out.name} ({out.stat().st_size} bytes)")


def main() -> None:
    pipeline_tour()
    engine_tour()


if __name__ == "__main__":
    main()
