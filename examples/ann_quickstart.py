"""ANN quickstart: the serving index families on one synthetic corpus.

Run with::

    PYTHONPATH=src python examples/ann_quickstart.py

Builds a clustered, Zipf-skewed :class:`repro.text.SyntheticCorpus`, then
walks the recall/latency/memory trade-off across the index families:

* :class:`FlatIndex` — exact brute force, the recall reference,
* :class:`IVFIndex` — coarse k-means cells, scans ``nprobe`` of them,
* :class:`PQIndex` — product-quantised codes (IVF-PQ when ``n_cells>1``)
  with exact re-ranking of a short ADC shortlist,
* :class:`NSWIndex` — a navigable-small-world graph that also supports
  genuinely in-place ``add``/``remove``/``update_rows``, shown at the end.

The full sweep with CI-gated operating points is ``repro bench-index``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.serving import FlatIndex, IVFIndex, NSWIndex, PQIndex
from repro.text import SyntheticCorpus

N_VALUES = 10_000
DIMENSION = 96
K = 10
N_QUERIES = 32


def recall_at_k(reference: list[np.ndarray], candidate: list[np.ndarray]) -> float:
    return float(np.mean([
        len(set(ref.tolist()) & set(cand.tolist())) / K
        for ref, cand in zip(reference, candidate)
    ]))


def measure(index, queries: np.ndarray) -> tuple[float, list[np.ndarray]]:
    """Mean per-query milliseconds and the returned ids."""
    hits = []
    started = time.perf_counter()
    for row in range(queries.shape[0]):
        ids, _ = index.query(queries[row], K)
        hits.append(ids)
    return (time.perf_counter() - started) / queries.shape[0] * 1e3, hits


def main() -> None:
    corpus = SyntheticCorpus(N_VALUES, dimension=DIMENSION, n_clusters=128, seed=0)
    matrix = corpus.matrix()
    queries = corpus.queries(N_QUERIES)
    print(f"corpus: {N_VALUES} values x {DIMENSION} dims, "
          f"{corpus.n_clusters} clusters, "
          f"category sizes {corpus.category_sizes()[:4]}... (Zipf head)")

    # ------------------------------------------------------------- flat
    flat = FlatIndex(matrix)
    flat_ms, flat_hits = measure(flat, queries)
    flat_bytes = flat.memory_bytes()
    print(f"\n{'index':<24}{'recall@10':>10}{'ms/query':>10}{'memory':>10}")
    print(f"{'flat (exact)':<24}{1.0:>10.3f}{flat_ms:>10.3f}"
          f"{flat_bytes / 1e6:>9.1f}M")

    # ---------------------------------------------- approximate families
    families = {
        "ivf(nprobe=8)": IVFIndex(matrix, nprobe=8, seed=0),
        "pq(rerank=64)": PQIndex(matrix, rerank=64, seed=0),
        "ivfpq(nprobe=8)": PQIndex(matrix, n_cells=100, nprobe=8, rerank=64,
                                   seed=0),
        "nsw(ef=64)": NSWIndex(matrix, max_degree=12, ef_construction=48,
                               ef_search=64),
    }
    for name, index in families.items():
        ms, hits = measure(index, queries)
        print(f"{name:<24}{recall_at_k(flat_hits, hits):>10.3f}{ms:>10.3f}"
              f"{index.memory_bytes() / 1e6:>9.1f}M")

    # ------------------------------------------- in-place graph mutation
    nsw = families["nsw(ef=64)"]
    fresh = corpus.queries(3, seed=99)
    new_ids = nsw.add(fresh)
    print(f"\nNSW in-place: added rows {new_ids.tolist()} "
          f"(no rebuild, {nsw.active_count} active)")
    ids, _ = nsw.query(fresh[0], 3)
    assert new_ids[0] in ids, "freshly added row should be its own neighbour"
    nsw.remove(new_ids[:1])
    ids, _ = nsw.query(fresh[0], 3)
    assert new_ids[0] not in ids, "removed row must stop appearing"
    print(f"NSW in-place: removed row {int(new_ids[0])} "
          f"(tombstoned, still routes; {nsw.active_count} active)")
    moved = corpus.queries(1, seed=7)[0]
    nsw.update_rows(new_ids[1:2], moved[None, :])
    print(f"NSW in-place: moved row {int(new_ids[1])} to a new vector "
          f"(detached and re-inserted)")


if __name__ == "__main__":
    main()
