"""Sharded serving quickstart: multi-process top-k over shared memory.

Trains a small retrofitted model, persists it through the
:class:`~repro.serving.EmbeddingStore`, and serves it from a
:class:`~repro.serving.ShardedServingTier`: text values hash-partitioned
across shard worker processes, each slicing its rows out of one read-only
memory-mapped matrix (pages shared across workers — no per-process full
copy).  The retrofit applier runs in its own process and publishes
through the store's versioned delta records; a
:class:`~repro.serving.RateLimiter` throttles write admission so bursts
degrade writes, never reads.

Run with:

    PYTHONPATH=src python examples/sharded_serving_quickstart.py
"""

import tempfile

import numpy as np

from repro.datasets import generate_tmdb
from repro.db.delta import DatabaseDelta
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.pipeline import RetroPipeline
from repro.serving import (
    EmbeddingStore,
    RateLimiter,
    ServingSession,
    ShardedServingTier,
)


def main() -> None:
    # 1. train: a synthetic TMDB database, retrofitted with RN defaults
    dataset = generate_tmdb(num_movies=80, seed=7, embedding_dimension=24)
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
    )
    result = pipeline.run(iterations=200)
    print(f"trained {len(result.embeddings)} text-value embeddings")

    with tempfile.TemporaryDirectory() as store_dir:
        # 2. persist: the sharded tier always serves a store artifact —
        # the store's delta records are how the applier process publishes
        store = EmbeddingStore(store_dir)
        store.save_embedding_set("model", result.embeddings)

        # 3. serve: two shard workers + one applier process; the tier
        # owns the database and the retrofitter once started
        retrofitter = pipeline.incremental_retrofitter(result)
        with ShardedServingTier(
            store_dir,
            "model",
            n_shards=2,
            database=dataset.database,
            retrofitter=retrofitter,
            solve_iterations=200,
            write_rate_limit=RateLimiter(rate_per_second=20.0, burst=5),
        ) as tier:
            print(f"serving on {tier.live_shards} shard processes")

            # reads: exact global top-k, merged across the shards —
            # identical (same rows, tie-stable) to a single-index session
            record = result.embeddings.extraction.records[0]
            query = result.embeddings.vector_for(record.category, record.text)
            for category, text, score in tier.topk(query, k=3):
                print(f"  {score:+.3f}  {category}  {text!r}")

            # writes: submit a database delta; the ticket resolves once
            # the applier published the new version to the store
            delta = DatabaseDelta()
            delta.insert("movies", {
                "id": 90_001, "title": "the meridian line",
                "original_language": "english",
                "overview": "a quiet voyage across the meridian",
                "budget": 1e7, "revenue": 2e7, "popularity": 1.0,
                "release_year": 2026, "collection_id": None,
            })
            ticket = tier.submit(delta)
            ticket.wait(timeout=120.0)
            print(f"delta published as store version {tier.published_version}")

            # read-your-writes: the new value is served immediately
            fresh = tier.topk(
                tier_vector(tier, store, "movies.title", "the meridian line"),
                k=1,
                category="movies.title",
            )
            print(f"nearest to the new title: {fresh[0][1]!r}")

            # the sharded answer equals the single-index answer exactly
            loaded, _, version = store.load_embedding_set_versioned("model")
            session = ServingSession(loaded)
            assert tier.topk_batch(query[None, :], 5) == session.topk_batch(
                query[None, :], 5
            )
            print(f"sharded == single-index at version {version}: exact")
            print(tier.stats)


def tier_vector(tier, store, category: str, text: str) -> np.ndarray:
    """Fetch a served vector through the store's current version."""
    loaded, _, _ = store.load_embedding_set_versioned("model")
    return loaded.vector_for(category, text)


if __name__ == "__main__":
    main()
