"""Serving quickstart: train → save → load → batched top-k queries.

Run with::

    python examples/serving_quickstart.py

The script trains RETRO embeddings once, persists the full result through
the versioned :class:`repro.serving.EmbeddingStore` format, reloads it in a
fresh :class:`repro.serving.ServingSession` (no solver rerun) and serves

* single nearest-neighbour lookups through the LRU query cache,
* one *batched* top-k query answering many lookups in one index pass,
* an exact-vs-IVF comparison on the served matrix.
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro import RetroHyperparameters, RetroPipeline, RetroResult
from repro.datasets import generate_tmdb
from repro.serving import FlatIndex, IVFIndex, ServingSession


def main() -> None:
    dataset = generate_tmdb(num_movies=150, seed=7, embedding_dimension=48)

    # ------------------------------------------------------------- train
    pipeline = RetroPipeline(
        dataset.database,
        dataset.embedding,
        hyperparams=RetroHyperparameters.paper_rn_default(),
        method="series",
    )
    started = time.perf_counter()
    result = pipeline.run()
    train_seconds = time.perf_counter() - started
    print(f"trained {len(result.extraction)} vectors in {train_seconds:.2f}s")

    with tempfile.TemporaryDirectory() as store_dir:
        # -------------------------------------------------------- save
        header = result.save(store_dir)
        print(f"persisted result to {header.parent} (artifact {header.stem!r})")

        # -------------------------------------------------------- load
        started = time.perf_counter()
        reloaded = RetroResult.load(store_dir)
        load_seconds = time.perf_counter() - started
        print(f"reloaded without solver rerun in {load_seconds*1000:.1f}ms "
              f"({train_seconds/max(load_seconds, 1e-9):.0f}x faster than "
              f"retraining)")
        assert np.array_equal(reloaded.embeddings.matrix, result.embeddings.matrix)

        # -------------------------------------------------------- serve
        session = ServingSession.from_store(store_dir)
        some_title = next(iter(dataset.movie_language))
        print(f"\nneighbours of {some_title!r} among movie titles:")
        for _, text, score in session.neighbours_of(
            "movies.title", some_title, k=5, within="movies.title"
        ):
            print(f"  {score:+.3f}  {text}")

        # batched: score ten movie titles against all genres in one pass
        titles = list(dataset.movie_language)[:10]
        queries = np.stack([session.vector_for("movies.title", t) for t in titles])
        batched = session.topk_batch(queries, k=2, category="genres.name")
        print("\ntop genres per movie (one batched top-k query):")
        for title, hits in zip(titles, batched):
            best = ", ".join(f"{text} ({score:+.2f})" for _, text, score in hits)
            print(f"  {title:32s} -> {best}")

        # repeated single lookups hit the LRU cache
        for _ in range(3):
            session.topk(queries[0], k=2, category="genres.name")
        stats = session.cache_stats
        print(f"\nquery cache: {stats.hits} hits / {stats.misses} misses "
              f"(hit rate {stats.hit_rate:.0%})")

    # ------------------------------------------------- exact vs IVF index
    matrix = result.embeddings.matrix
    flat = FlatIndex(matrix)
    ivf = IVFIndex(matrix, nprobe=4, seed=0)
    query_batch = matrix[:32]
    flat_ids, _ = flat.query_batch(query_batch, 10)
    ivf_ids, _ = ivf.query_batch(query_batch, 10)
    recall = np.mean([
        len(set(a.tolist()) & set(b.tolist())) / 10
        for a, b in zip(flat_ids, ivf_ids)
    ])
    print(f"IVF index: {ivf.n_cells} cells, nprobe=4, "
          f"recall@10 vs exact = {recall:.2f}")


if __name__ == "__main__":
    main()
