"""Weight initialisation schemes for dense layers."""

from __future__ import annotations

import numpy as np


def glorot_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (good default for sigmoid/tanh)."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, (fan_in, fan_out))


def he_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He uniform initialisation (good default for ReLU layers)."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, (fan_in, fan_out))
