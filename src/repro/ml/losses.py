"""Loss functions with gradients for the numpy network stack."""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError

_EPSILON = 1e-12


class Loss:
    """Base class for losses used by :class:`repro.ml.NeuralNetwork`."""

    name = "loss"

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """The scalar loss."""
        raise NotImplementedError

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the loss with respect to the network output."""
        raise NotImplementedError


class BinaryCrossEntropy(Loss):
    """Binary cross-entropy over sigmoid outputs."""

    name = "binary_crossentropy"

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        p = np.clip(predictions, _EPSILON, 1.0 - _EPSILON)
        losses = -(targets * np.log(p) + (1.0 - targets) * np.log(1.0 - p))
        return float(np.mean(losses))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        p = np.clip(predictions, _EPSILON, 1.0 - _EPSILON)
        return (p - targets) / (p * (1.0 - p)) / max(1, targets.shape[-1])


class CategoricalCrossEntropy(Loss):
    """Categorical cross-entropy over softmax outputs.

    The gradient returned is the *combined* softmax + cross-entropy gradient
    (``probabilities - one_hot_targets``); the softmax activation therefore
    reports an identity derivative (see :class:`repro.ml.activations.Softmax`).
    """

    name = "categorical_crossentropy"

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        p = np.clip(predictions, _EPSILON, 1.0)
        return float(-np.mean(np.sum(targets * np.log(p), axis=-1)))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return predictions - targets


class MeanAbsoluteError(Loss):
    """Mean absolute error (the regression loss used by the paper)."""

    name = "mean_absolute_error"

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return float(np.mean(np.abs(predictions - targets)))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return np.sign(predictions - targets) / max(1, targets.shape[-1])


class MeanSquaredError(Loss):
    """Mean squared error (kept for completeness and testing)."""

    name = "mean_squared_error"

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return float(np.mean((predictions - targets) ** 2))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return 2.0 * (predictions - targets) / max(1, targets.shape[-1])


_LOSSES: dict[str, type[Loss]] = {
    "binary_crossentropy": BinaryCrossEntropy,
    "categorical_crossentropy": CategoricalCrossEntropy,
    "mean_absolute_error": MeanAbsoluteError,
    "mae": MeanAbsoluteError,
    "mean_squared_error": MeanSquaredError,
    "mse": MeanSquaredError,
}


def get_loss(name: str | Loss) -> Loss:
    """Resolve a loss by name (or pass an instance through)."""
    if isinstance(name, Loss):
        return name
    key = str(name).lower()
    if key not in _LOSSES:
        raise TrainingError(f"unknown loss {name!r}")
    return _LOSSES[key]()
