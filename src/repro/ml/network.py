"""Sequential feed-forward network with mini-batch training and early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.ml.layers import Dense, Layer
from repro.ml.losses import Loss, get_loss
from repro.ml.optimizers import Optimizer, get_optimizer


@dataclass
class TrainingHistory:
    """Per-epoch loss curves of one training run."""

    train_loss: list[float] = field(default_factory=list)
    validation_loss: list[float] = field(default_factory=list)
    best_epoch: int = 0
    stopped_early: bool = False

    @property
    def epochs(self) -> int:
        """Number of epochs actually trained."""
        return len(self.train_loss)


class NeuralNetwork:
    """A sequential stack of layers trained by backpropagation.

    The behaviour mirrors what the paper describes for its Keras models:
    inputs are expected to be pre-normalised embedding vectors, 10 % of the
    training data is carved out as a validation split, and training stops
    when the validation loss has not improved for ``patience`` epochs, after
    which the parameters of the best epoch are restored.
    """

    def __init__(
        self,
        layers: list[Layer],
        loss: str | Loss = "binary_crossentropy",
        optimizer: str | Optimizer = "nadam",
        seed: int = 0,
    ) -> None:
        if not layers:
            raise TrainingError("a network needs at least one layer")
        self.layers = layers
        self.loss = get_loss(loss)
        self.optimizer = get_optimizer(optimizer)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._built = False
        self._input_dim: int | None = None

    # ------------------------------------------------------------------ #
    # model plumbing
    # ------------------------------------------------------------------ #
    def build(self, input_dim: int) -> None:
        """Initialise all layer parameters for inputs of width ``input_dim``."""
        width = input_dim
        for layer in self.layers:
            width = layer.build(width, self._rng)
        self._built = True
        self._input_dim = input_dim

    def _ensure_built(self, input_dim: int) -> None:
        if not self._built:
            self.build(input_dim)
        elif self._input_dim != input_dim:
            raise TrainingError(
                f"network was built for inputs of width {self._input_dim}, "
                f"got {input_dim}"
            )

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the forward pass."""
        output = inputs
        for layer in self.layers:
            output = layer.forward(output, training=training)
        return output

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predictions in inference mode (dropout disabled)."""
        inputs = np.asarray(inputs, dtype=np.float64)
        self._ensure_built(inputs.shape[1])
        return self.forward(inputs, training=False)

    def _backward(self, predictions: np.ndarray, targets: np.ndarray) -> None:
        gradient = self.loss.gradient(predictions, targets)
        for layer in reversed(self.layers):
            gradient = layer.backward(gradient)
        parameters: list[np.ndarray] = []
        gradients: list[np.ndarray] = []
        for layer in self.layers:
            parameters.extend(layer.parameters())
            gradients.extend(layer.gradients())
        self.optimizer.step(parameters, gradients)

    def _snapshot(self) -> list[np.ndarray]:
        return [param.copy() for layer in self.layers for param in layer.parameters()]

    def _restore(self, snapshot: list[np.ndarray]) -> None:
        position = 0
        for layer in self.layers:
            for param in layer.parameters():
                param[...] = snapshot[position]
                position += 1

    def _evaluate_loss(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        predictions = self.forward(inputs, training=False)
        value = self.loss.value(predictions, targets)
        for layer in self.layers:
            if isinstance(layer, Dense):
                value += layer.regularisation_loss()
        return value

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        epochs: int = 200,
        batch_size: int = 32,
        validation_split: float = 0.1,
        patience: int = 50,
        shuffle: bool = True,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train the network and return the loss history.

        ``patience`` follows the paper: training stops once the validation
        loss has not improved for that many epochs and the best parameters
        are restored.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if targets.ndim == 1:
            targets = targets[:, None]
        if inputs.shape[0] != targets.shape[0]:
            raise TrainingError("inputs and targets must have the same length")
        if inputs.shape[0] < 2:
            raise TrainingError("need at least two training samples")
        self._ensure_built(inputs.shape[1])

        n = inputs.shape[0]
        indices = np.arange(n)
        if shuffle:
            self._rng.shuffle(indices)
        n_validation = int(round(n * validation_split)) if validation_split > 0 else 0
        n_validation = min(n_validation, n - 1)
        validation_idx = indices[:n_validation]
        train_idx = indices[n_validation:]
        x_train, y_train = inputs[train_idx], targets[train_idx]
        x_val, y_val = inputs[validation_idx], targets[validation_idx]
        monitor_validation = n_validation > 0

        history = TrainingHistory()
        best_loss = np.inf
        best_snapshot = self._snapshot()
        epochs_without_improvement = 0
        for epoch in range(epochs):
            order = np.arange(len(x_train))
            if shuffle:
                self._rng.shuffle(order)
            epoch_losses: list[float] = []
            for start in range(0, len(order), batch_size):
                batch = order[start:start + batch_size]
                predictions = self.forward(x_train[batch], training=True)
                epoch_losses.append(self.loss.value(predictions, y_train[batch]))
                self._backward(predictions, y_train[batch])
            train_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
            history.train_loss.append(train_loss)
            monitored = train_loss
            if monitor_validation:
                monitored = self._evaluate_loss(x_val, y_val)
                history.validation_loss.append(monitored)
            if verbose:  # pragma: no cover - console output only
                print(f"epoch {epoch + 1}: train={train_loss:.4f} monitored={monitored:.4f}")
            if monitored < best_loss - 1e-9:
                best_loss = monitored
                best_snapshot = self._snapshot()
                history.best_epoch = epoch
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= patience:
                    history.stopped_early = True
                    break
        self._restore(best_snapshot)
        return history
