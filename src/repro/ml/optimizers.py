"""Gradient-descent optimisers: SGD, Adam and Nadam.

The paper trains its networks with Nadam (Adam with Nesterov momentum,
Dozat 2016), which is the default used by :mod:`repro.tasks`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


class Optimizer:
    """Base class: updates a flat list of parameter arrays in place."""

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        """Apply one update step."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all accumulated state (used when re-using an instance)."""


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise TrainingError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise TrainingError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        for index, (param, grad) in enumerate(zip(parameters, gradients)):
            if grad is None:
                continue
            if self.momentum > 0.0:
                velocity = self._velocity.get(index)
                if velocity is None:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity - self.learning_rate * grad
                self._velocity[index] = velocity
                param += velocity
            else:
                param -= self.learning_rate * grad

    def reset(self) -> None:
        self._velocity.clear()


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise TrainingError("learning rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        self._t += 1
        for index, (param, grad) in enumerate(zip(parameters, gradients)):
            if grad is None:
                continue
            m = self._m.get(index, np.zeros_like(param))
            v = self._v.get(index, np.zeros_like(param))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[index], self._v[index] = m, v
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        self._m.clear()
        self._v.clear()
        self._t = 0


class Nadam(Adam):
    """Nesterov-accelerated Adam (Dozat 2016), the optimiser used in the paper."""

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        self._t += 1
        for index, (param, grad) in enumerate(zip(parameters, gradients)):
            if grad is None:
                continue
            m = self._m.get(index, np.zeros_like(param))
            v = self._v.get(index, np.zeros_like(param))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[index], self._v[index] = m, v
            m_hat = m / (1.0 - self.beta1 ** (self._t + 1))
            v_hat = v / (1.0 - self.beta2**self._t)
            nesterov = (
                self.beta1 * m_hat
                + (1.0 - self.beta1) * grad / (1.0 - self.beta1**self._t)
            )
            param -= self.learning_rate * nesterov / (np.sqrt(v_hat) + self.epsilon)


_OPTIMIZERS: dict[str, type[Optimizer]] = {
    "sgd": SGD,
    "adam": Adam,
    "nadam": Nadam,
}


def get_optimizer(name: str | Optimizer, **kwargs) -> Optimizer:
    """Resolve an optimiser by name (or pass an instance through)."""
    if isinstance(name, Optimizer):
        return name
    key = str(name).lower()
    if key not in _OPTIMIZERS:
        raise TrainingError(f"unknown optimizer {name!r}")
    return _OPTIMIZERS[key](**kwargs)
