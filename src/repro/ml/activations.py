"""Activation functions and their derivatives."""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


class Activation:
    """Base class: an element-wise activation with forward and gradient."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the activation."""
        raise NotImplementedError

    def backward(self, x: np.ndarray, output: np.ndarray) -> np.ndarray:
        """Derivative with respect to the pre-activation ``x``.

        ``output`` is the already-computed forward value, which most
        activations can reuse to avoid recomputation.
        """
        raise NotImplementedError


class Linear(Activation):
    """Identity activation (used for regression outputs)."""

    name = "linear"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, x: np.ndarray, output: np.ndarray) -> np.ndarray:
        return np.ones_like(x)


class Sigmoid(Activation):
    """Logistic sigmoid."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    def backward(self, x: np.ndarray, output: np.ndarray) -> np.ndarray:
        return output * (1.0 - output)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, x: np.ndarray, output: np.ndarray) -> np.ndarray:
        return 1.0 - output**2


class ReLU(Activation):
    """Rectified linear unit."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def backward(self, x: np.ndarray, output: np.ndarray) -> np.ndarray:
        return (x > 0.0).astype(x.dtype)


class Softmax(Activation):
    """Row-wise softmax (for mutually exclusive classes).

    The derivative returned here is the identity because the softmax is only
    used together with the categorical cross-entropy loss, whose combined
    gradient (``probabilities - targets``) is produced by the loss class.
    """

    name = "softmax"

    def forward(self, x: np.ndarray) -> np.ndarray:
        shifted = x - np.max(x, axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / np.sum(exp, axis=-1, keepdims=True)

    def backward(self, x: np.ndarray, output: np.ndarray) -> np.ndarray:
        return np.ones_like(x)


_ACTIVATIONS: dict[str, type[Activation]] = {
    "linear": Linear,
    "identity": Linear,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "relu": ReLU,
    "softmax": Softmax,
}


def get_activation(name: str | Activation) -> Activation:
    """Resolve an activation by name (or pass an instance through)."""
    if isinstance(name, Activation):
        return name
    key = str(name).lower()
    if key not in _ACTIVATIONS:
        raise TrainingError(f"unknown activation {name!r}")
    return _ACTIVATIONS[key]()
