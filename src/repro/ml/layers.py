"""Network layers: dense (fully connected) and dropout."""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.ml.activations import Activation, get_activation
from repro.ml.initializers import glorot_uniform, he_uniform


class Layer:
    """Base class for layers with optional trainable parameters."""

    def build(self, input_dim: int, rng: np.random.Generator) -> int:
        """Initialise parameters given the input width; return the output width."""
        raise NotImplementedError

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass."""
        raise NotImplementedError

    def backward(self, gradient: np.ndarray) -> np.ndarray:
        """Backward pass: return the gradient with respect to the inputs."""
        raise NotImplementedError

    def parameters(self) -> list[np.ndarray]:
        """Trainable parameter arrays (empty for parameter-free layers)."""
        return []

    def gradients(self) -> list[np.ndarray]:
        """Gradients matching :meth:`parameters` from the last backward pass."""
        return []


class Dense(Layer):
    """A fully connected layer with activation and optional L2 regularisation."""

    def __init__(
        self,
        units: int,
        activation: str | Activation = "linear",
        l2: float = 0.0,
    ) -> None:
        if units <= 0:
            raise TrainingError("Dense layer needs a positive number of units")
        if l2 < 0:
            raise TrainingError("L2 penalty must be non-negative")
        self.units = int(units)
        self.activation = get_activation(activation)
        self.l2 = float(l2)
        self.weights: np.ndarray | None = None
        self.bias: np.ndarray | None = None
        self._inputs: np.ndarray | None = None
        self._pre_activation: np.ndarray | None = None
        self._output: np.ndarray | None = None
        self._grad_weights: np.ndarray | None = None
        self._grad_bias: np.ndarray | None = None

    def build(self, input_dim: int, rng: np.random.Generator) -> int:
        if self.activation.name == "relu":
            self.weights = he_uniform(input_dim, self.units, rng)
        else:
            self.weights = glorot_uniform(input_dim, self.units, rng)
        self.bias = np.zeros(self.units)
        return self.units

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if self.weights is None or self.bias is None:
            raise TrainingError("Dense layer used before build()")
        self._inputs = inputs
        self._pre_activation = inputs @ self.weights + self.bias
        self._output = self.activation.forward(self._pre_activation)
        return self._output

    def backward(self, gradient: np.ndarray) -> np.ndarray:
        if self._inputs is None or self._pre_activation is None:
            raise TrainingError("backward() called before forward()")
        local = gradient * self.activation.backward(
            self._pre_activation, self._output
        )
        batch = max(1, self._inputs.shape[0])
        self._grad_weights = self._inputs.T @ local / batch
        if self.l2 > 0.0:
            self._grad_weights = self._grad_weights + self.l2 * self.weights
        self._grad_bias = local.mean(axis=0)
        return local @ self.weights.T

    def parameters(self) -> list[np.ndarray]:
        return [self.weights, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self._grad_weights, self._grad_bias]

    def regularisation_loss(self) -> float:
        """The L2 penalty contribution of this layer's weights."""
        if self.l2 == 0.0 or self.weights is None:
            return 0.0
        return 0.5 * self.l2 * float(np.sum(self.weights**2))


class Dropout(Layer):
    """Inverted dropout: active during training, identity at inference."""

    def __init__(self, rate: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= rate < 1.0:
            raise TrainingError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def build(self, input_dim: int, rng: np.random.Generator) -> int:
        return input_dim

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, gradient: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return gradient
        return gradient * self._mask
