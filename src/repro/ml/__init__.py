"""A from-scratch numpy neural-network stack.

The paper evaluates its embeddings with small feed-forward networks
(Figure 5a–c) built in Keras.  This package re-implements exactly the
required building blocks: dense layers with L2 regularisation, dropout,
sigmoid/ReLU/softmax/linear activations, binary/categorical cross-entropy
and mean-absolute-error losses, the Nadam optimiser and a training loop with
validation split and early stopping.
"""

from repro.ml.activations import Activation, get_activation
from repro.ml.initializers import glorot_uniform, he_uniform
from repro.ml.layers import Dense, Dropout, Layer
from repro.ml.losses import (
    BinaryCrossEntropy,
    CategoricalCrossEntropy,
    Loss,
    MeanAbsoluteError,
    MeanSquaredError,
    get_loss,
)
from repro.ml.optimizers import SGD, Adam, Nadam, Optimizer, get_optimizer
from repro.ml.network import NeuralNetwork, TrainingHistory
from repro.ml.metrics import (
    accuracy,
    binary_accuracy,
    confusion_matrix,
    mean_absolute_error,
    precision_recall_f1,
)

__all__ = [
    "Activation",
    "get_activation",
    "glorot_uniform",
    "he_uniform",
    "Layer",
    "Dense",
    "Dropout",
    "Loss",
    "BinaryCrossEntropy",
    "CategoricalCrossEntropy",
    "MeanAbsoluteError",
    "MeanSquaredError",
    "get_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "Nadam",
    "get_optimizer",
    "NeuralNetwork",
    "TrainingHistory",
    "accuracy",
    "binary_accuracy",
    "confusion_matrix",
    "mean_absolute_error",
    "precision_recall_f1",
]
