"""Evaluation metrics for the extrinsic tasks."""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


def binary_accuracy(
    predictions: np.ndarray, targets: np.ndarray, threshold: float = 0.5
) -> float:
    """Accuracy for a single sigmoid output against 0/1 targets."""
    predictions = np.asarray(predictions).ravel()
    targets = np.asarray(targets).ravel()
    if predictions.shape != targets.shape:
        raise TrainingError("predictions and targets must have the same length")
    if predictions.size == 0:
        raise TrainingError("cannot compute accuracy of empty arrays")
    predicted_labels = (predictions >= threshold).astype(int)
    return float(np.mean(predicted_labels == targets.astype(int)))


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Accuracy for one-hot (or probability) matrices of mutually exclusive classes."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.ndim == 1 or predictions.shape[1] == 1:
        return binary_accuracy(predictions, targets)
    if predictions.shape != targets.shape:
        raise TrainingError("predictions and targets must have the same shape")
    predicted_labels = predictions.argmax(axis=1)
    target_labels = targets.argmax(axis=1)
    return float(np.mean(predicted_labels == target_labels))


def mean_absolute_error(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean absolute error between predictions and targets."""
    predictions = np.asarray(predictions, dtype=np.float64).ravel()
    targets = np.asarray(targets, dtype=np.float64).ravel()
    if predictions.shape != targets.shape:
        raise TrainingError("predictions and targets must have the same length")
    if predictions.size == 0:
        raise TrainingError("cannot compute MAE of empty arrays")
    return float(np.mean(np.abs(predictions - targets)))


def confusion_matrix(
    predicted_labels: np.ndarray, target_labels: np.ndarray, n_classes: int
) -> np.ndarray:
    """Confusion matrix with rows = true class, columns = predicted class."""
    predicted_labels = np.asarray(predicted_labels, dtype=int).ravel()
    target_labels = np.asarray(target_labels, dtype=int).ravel()
    if predicted_labels.shape != target_labels.shape:
        raise TrainingError("label arrays must have the same length")
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    for true, predicted in zip(target_labels, predicted_labels):
        matrix[true, predicted] += 1
    return matrix


def precision_recall_f1(
    predictions: np.ndarray, targets: np.ndarray, threshold: float = 0.5
) -> tuple[float, float, float]:
    """Precision, recall and F1 for a binary classifier."""
    predictions = np.asarray(predictions).ravel()
    targets = np.asarray(targets).ravel().astype(int)
    predicted = (predictions >= threshold).astype(int)
    true_positive = int(np.sum((predicted == 1) & (targets == 1)))
    false_positive = int(np.sum((predicted == 1) & (targets == 0)))
    false_negative = int(np.sum((predicted == 0) & (targets == 1)))
    precision = (
        true_positive / (true_positive + false_positive)
        if true_positive + false_positive
        else 0.0
    )
    recall = (
        true_positive / (true_positive + false_negative)
        if true_positive + false_negative
        else 0.0
    )
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return float(precision), float(recall), float(f1)
