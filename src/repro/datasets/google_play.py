"""Synthetic Google Play Store shaped database (apps, reviews, categories).

Mirrors the Kaggle "Google Play Store Apps" dataset used in the paper: an
``apps`` table with foreign keys to ``categories``, ``pricing_types`` and
``age_groups``, a ``genres`` table related n:m through a link table and a
``reviews`` table holding short review texts per app.  Ground truth app
categories are returned for the imputation experiment (Figure 12b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets import vocabulary as vocab
from repro.db.database import Database, build_table_schema
from repro.db.schema import ForeignKey
from repro.db.types import ColumnType
from repro.errors import DatasetError
from repro.text.embedding import WordEmbedding
from repro.text.synthetic import SyntheticEmbeddingSpace


@dataclass
class GooglePlayDataset:
    """The synthetic Play Store database plus ground truth and embedding space."""

    database: Database
    embedding: WordEmbedding
    app_category: dict[str, str]
    category_names: list[str] = field(default_factory=list)
    num_apps: int = 0
    seed: int = 0

    def summary(self) -> dict[str, float]:
        """Dataset statistics (Table 1)."""
        return self.database.summary()

    def spreadsheet_rows(self) -> list[dict]:
        """The single-table view a DataWig-style imputer can operate on.

        Contains the app name, pricing type, age group and the true category
        — reviews live in another table and are therefore not available to
        the spreadsheet imputer, exactly as in the paper's comparison.
        """
        apps = self.database.table("apps")
        pricing = self.database.table("pricing_types")
        ages = self.database.table("age_groups")
        rows = []
        for row in apps:
            pricing_row = pricing.get_by_key(row["pricing_id"])
            age_row = ages.get_by_key(row["age_id"])
            rows.append({
                "name": row["name"],
                "pricing": None if pricing_row is None else pricing_row["name"],
                "age_group": None if age_row is None else age_row["name"],
                "category": self.app_category[row["name"]],
            })
        return rows


def build_app_embedding_space(dimension: int = 64, seed: int = 0) -> SyntheticEmbeddingSpace:
    """The synthetic word-embedding space for the Play Store database."""
    space = SyntheticEmbeddingSpace(dimension=dimension, seed=seed)
    for category, words in vocab.APP_CATEGORIES.items():
        space.add_concept(f"app/{category}", [category, *words], spread=0.3)
    space.add_concept("sentiment/positive", list(vocab.POSITIVE_WORDS), spread=0.3)
    space.add_concept("sentiment/negative", list(vocab.NEGATIVE_WORDS), spread=0.3)
    space.add_concept("pricing", list(vocab.PRICING_TYPES), spread=0.2)
    space.add_concept("age", list(vocab.AGE_GROUPS), spread=0.2)
    space.add_background_words(list(vocab.APP_BRAND_WORDS))
    space.add_background_words(list(vocab.GENERIC_REVIEW_WORDS))
    space.add_background_words(list(vocab.TITLE_FILLER_WORDS))
    return space


def _app_schema(database: Database) -> None:
    database.create_table(build_table_schema(
        "categories",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
        primary_key="id", unique=["name"],
    ))
    database.create_table(build_table_schema(
        "pricing_types",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
        primary_key="id", unique=["name"],
    ))
    database.create_table(build_table_schema(
        "age_groups",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
        primary_key="id", unique=["name"],
    ))
    database.create_table(build_table_schema(
        "genres",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
        primary_key="id", unique=["name"],
    ))
    database.create_table(build_table_schema(
        "apps",
        [
            ("id", ColumnType.INTEGER),
            ("name", ColumnType.TEXT),
            ("rating", ColumnType.FLOAT),
            ("installs", ColumnType.INTEGER),
            ("category_id", ColumnType.INTEGER),
            ("pricing_id", ColumnType.INTEGER),
            ("age_id", ColumnType.INTEGER),
        ],
        primary_key="id",
        foreign_keys=[
            ForeignKey("category_id", "categories", "id"),
            ForeignKey("pricing_id", "pricing_types", "id"),
            ForeignKey("age_id", "age_groups", "id"),
        ],
    ))
    database.create_table(build_table_schema(
        "reviews",
        [
            ("id", ColumnType.INTEGER),
            ("app_id", ColumnType.INTEGER),
            ("text", ColumnType.TEXT),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("app_id", "apps", "id")],
    ))
    database.create_table(build_table_schema(
        "app_genres",
        [
            ("id", ColumnType.INTEGER),
            ("app_id", ColumnType.INTEGER),
            ("genre_id", ColumnType.INTEGER),
        ],
        primary_key="id",
        foreign_keys=[
            ForeignKey("app_id", "apps", "id"),
            ForeignKey("genre_id", "genres", "id"),
        ],
    ))


def generate_google_play(
    num_apps: int = 200,
    seed: int = 0,
    embedding_dimension: int = 64,
    embedding: WordEmbedding | None = None,
) -> GooglePlayDataset:
    """Generate a synthetic Google Play Store shaped dataset."""
    if num_apps < 5:
        raise DatasetError("num_apps must be at least 5")
    rng = np.random.default_rng(seed)
    if embedding is None:
        embedding = build_app_embedding_space(
            dimension=embedding_dimension, seed=seed
        ).build()

    database = Database(f"google_play_{num_apps}")
    _app_schema(database)

    category_names = list(vocab.APP_CATEGORIES)
    category_ids = {}
    for index, category in enumerate(category_names, start=1):
        database.insert("categories", {"id": index, "name": category})
        category_ids[category] = index
    pricing_ids = {}
    for index, pricing in enumerate(vocab.PRICING_TYPES, start=1):
        database.insert("pricing_types", {"id": index, "name": pricing})
        pricing_ids[pricing] = index
    age_ids = {}
    for index, age in enumerate(vocab.AGE_GROUPS, start=1):
        database.insert("age_groups", {"id": index, "name": age})
        age_ids[age] = index
    # the Play Store "genre" is nearly synonymous with the category; the
    # paper omits the genre relation when training for category imputation.
    genre_ids = {}
    for index, category in enumerate(category_names, start=1):
        genre = f"{category} genre"
        database.insert("genres", {"id": index, "name": genre})
        genre_ids[category] = index

    app_category: dict[str, str] = {}
    used_names: set[str] = set()
    review_id = 0
    link_id = 0
    for app_id in range(1, num_apps + 1):
        category = category_names[int(rng.integers(0, len(category_names)))]
        words = vocab.APP_CATEGORIES[category]
        brand = vocab.APP_BRAND_WORDS[int(rng.integers(0, len(vocab.APP_BRAND_WORDS)))]
        keyword = words[int(rng.integers(0, len(words)))]
        base = f"{brand} {keyword}"
        if rng.random() < 0.4:
            base = f"{base} {vocab.APP_BRAND_WORDS[int(rng.integers(0, len(vocab.APP_BRAND_WORDS)))]}"
        name = base
        suffix_pool = list(vocab.APP_BRAND_WORDS)
        attempt = 0
        while name in used_names:
            attempt += 1
            name = f"{base} {suffix_pool[attempt % len(suffix_pool)]}"
            if attempt > len(suffix_pool):
                name = f"{base} {attempt}"
        used_names.add(name)

        pricing = "free" if rng.random() < 0.8 else "paid"
        age = vocab.AGE_GROUPS[int(rng.choice(len(vocab.AGE_GROUPS), p=[0.6, 0.25, 0.1, 0.05]))]
        database.insert("apps", {
            "id": app_id,
            "name": name,
            "rating": float(np.clip(rng.normal(4.1, 0.5), 1.0, 5.0)),
            "installs": int(rng.lognormal(10, 2)),
            "category_id": category_ids[category],
            "pricing_id": pricing_ids[pricing],
            "age_id": age_ids[age],
        })
        app_category[name] = category

        link_id += 1
        database.insert("app_genres", {
            "id": link_id, "app_id": app_id, "genre_id": genre_ids[category],
        })

        for _ in range(int(rng.integers(2, 5))):
            review_id += 1
            positive = rng.random() < 0.7
            sentiment = vocab.POSITIVE_WORDS if positive else vocab.NEGATIVE_WORDS
            review_words = []
            for _ in range(int(rng.integers(8, 14))):
                pool = rng.random()
                if pool < 0.5:
                    review_words.append(words[int(rng.integers(0, len(words)))])
                elif pool < 0.75:
                    review_words.append(sentiment[int(rng.integers(0, len(sentiment)))])
                else:
                    review_words.append(
                        vocab.GENERIC_REVIEW_WORDS[
                            int(rng.integers(0, len(vocab.GENERIC_REVIEW_WORDS)))
                        ]
                    )
            database.insert("reviews", {
                "id": review_id,
                "app_id": app_id,
                "text": " ".join(review_words),
            })

    return GooglePlayDataset(
        database=database,
        embedding=embedding,
        app_category=app_category,
        category_names=category_names,
        num_apps=num_apps,
        seed=seed,
    )
