"""Word pools used by the synthetic dataset generators.

The pools define the latent concepts of the synthetic embedding space:
countries with their languages and demonyms, movie genres with typical title
and review vocabulary, production-company tiers, sentiment words and the 33
Google Play app categories with their typical review vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CountrySpec:
    """One country with its main language, demonym and name pools."""

    name: str
    language: str
    demonym: str
    first_names: tuple[str, ...]
    last_names: tuple[str, ...]


COUNTRIES: tuple[CountrySpec, ...] = (
    CountrySpec(
        "usa", "english", "american",
        ("james", "mary", "robert", "patricia", "michael", "jennifer", "william",
         "linda", "david", "elizabeth", "richard", "susan"),
        ("smith", "johnson", "williams", "brown", "jones", "miller", "davis",
         "wilson", "anderson", "taylor", "moore", "jackson"),
    ),
    CountrySpec(
        "france", "french", "french",
        ("jean", "marie", "pierre", "sophie", "luc", "camille", "antoine",
         "claire", "julien", "amelie", "nicolas", "margot"),
        ("martin", "bernard", "dubois", "thomas", "robert", "richard", "petit",
         "durand", "leroy", "moreau", "fournier", "girard"),
    ),
    CountrySpec(
        "germany", "german", "german",
        ("hans", "anna", "karl", "ingrid", "stefan", "ursula", "werner",
         "monika", "juergen", "helga", "wolfgang", "sabine"),
        ("mueller", "schmidt", "schneider", "fischer", "weber", "meyer",
         "wagner", "becker", "schulz", "hoffmann", "koch", "bauer"),
    ),
    CountrySpec(
        "india", "hindi", "indian",
        ("raj", "priya", "amit", "sunita", "vikram", "anjali", "arjun",
         "kavita", "sanjay", "deepa", "rahul", "meera"),
        ("sharma", "patel", "singh", "kumar", "gupta", "mehta", "verma",
         "reddy", "nair", "iyer", "chopra", "malhotra"),
    ),
    CountrySpec(
        "japan", "japanese", "japanese",
        ("hiroshi", "yuki", "takashi", "sakura", "kenji", "aiko", "satoshi",
         "haruka", "kazuo", "naomi", "akira", "emi"),
        ("sato", "suzuki", "takahashi", "tanaka", "watanabe", "ito",
         "yamamoto", "nakamura", "kobayashi", "kato", "yoshida", "yamada"),
    ),
    CountrySpec(
        "united kingdom", "english", "british",
        ("oliver", "emily", "harry", "charlotte", "george", "amelia",
         "jack", "isla", "arthur", "poppy", "edward", "florence"),
        ("clarke", "hughes", "edwards", "green", "wood", "harris", "lewis",
         "walker", "robinson", "thompson", "white", "hall"),
    ),
    CountrySpec(
        "italy", "italian", "italian",
        ("giovanni", "giulia", "marco", "francesca", "luca", "chiara",
         "alessandro", "valentina", "matteo", "elena", "davide", "sara"),
        ("rossi", "russo", "ferrari", "esposito", "bianchi", "romano",
         "colombo", "ricci", "marino", "greco", "bruno", "gallo"),
    ),
    CountrySpec(
        "spain", "spanish", "spanish",
        ("carlos", "lucia", "javier", "carmen", "miguel", "isabel", "antonio",
         "paula", "manuel", "marta", "sergio", "laura"),
        ("garcia", "fernandez", "gonzalez", "rodriguez", "lopez", "martinez",
         "sanchez", "perez", "gomez", "martin", "jimenez", "ruiz"),
    ),
    CountrySpec(
        "canada", "english", "canadian",
        ("liam", "olivia", "noah", "emma", "ethan", "sophia", "lucas", "ava",
         "benjamin", "mia", "logan", "chloe"),
        ("tremblay", "gagnon", "roy", "cote", "bouchard", "gauthier",
         "morin", "lavoie", "fortin", "gagne", "ouellet", "pelletier"),
    ),
    CountrySpec(
        "brazil", "portuguese", "brazilian",
        ("joao", "ana", "pedro", "beatriz", "gabriel", "mariana", "rafael",
         "juliana", "felipe", "camila", "gustavo", "larissa"),
        ("silva", "santos", "oliveira", "souza", "lima", "pereira", "costa",
         "ferreira", "almeida", "nascimento", "carvalho", "araujo"),
    ),
    CountrySpec(
        "china", "mandarin", "chinese",
        ("wei", "fang", "lei", "xiu", "jun", "li", "ming", "hui", "qiang",
         "yan", "tao", "jing"),
        ("wang", "zhang", "chen", "yang", "huang", "zhao", "wu", "zhou",
         "xu", "sun", "ma", "zhu"),
    ),
    CountrySpec(
        "mexico", "spanish", "mexican",
        ("alejandro", "maria", "jose", "guadalupe", "juan", "fernanda",
         "luis", "valeria", "diego", "ximena", "ricardo", "regina"),
        ("hernandez", "torres", "flores", "ramirez", "cruz", "morales",
         "reyes", "gutierrez", "ortiz", "chavez", "mendoza", "vargas"),
    ),
)

COUNTRY_WEIGHTS: tuple[float, ...] = (
    0.42, 0.08, 0.06, 0.07, 0.06, 0.08, 0.05, 0.04, 0.05, 0.03, 0.04, 0.02
)

LANGUAGES: tuple[str, ...] = tuple(
    sorted({country.language for country in COUNTRIES})
)


MOVIE_GENRES: dict[str, tuple[str, ...]] = {
    "action": ("explosion", "chase", "mission", "agent", "strike", "combat", "fury"),
    "adventure": ("quest", "journey", "treasure", "expedition", "island", "voyage"),
    "animation": ("cartoon", "pixel", "sketch", "puppet", "colorful", "whimsical"),
    "comedy": ("funny", "hilarious", "awkward", "prank", "laughter", "goofy"),
    "crime": ("heist", "detective", "gangster", "undercover", "syndicate", "alibi"),
    "documentary": ("archive", "interview", "footage", "factual", "chronicle"),
    "drama": ("family", "grief", "betrayal", "redemption", "struggle", "intimate"),
    "family": ("children", "holiday", "playful", "wholesome", "gentle", "together"),
    "fantasy": ("dragon", "wizard", "kingdom", "spell", "prophecy", "enchanted"),
    "history": ("empire", "revolution", "dynasty", "battlefield", "heritage"),
    "horror": ("haunted", "scream", "nightmare", "possession", "creepy", "dread"),
    "music": ("concert", "melody", "band", "rhythm", "stage", "anthem"),
    "mystery": ("clue", "riddle", "vanished", "secret", "puzzle", "suspect"),
    "romance": ("love", "wedding", "heartbreak", "kiss", "longing", "devotion"),
    "science fiction": ("spaceship", "android", "galaxy", "cyborg", "quantum", "alien"),
    "thriller": ("hostage", "conspiracy", "pursuit", "deadline", "tension", "sniper"),
    "tv movie": ("network", "pilot", "broadcast", "episode", "primetime"),
    "war": ("soldier", "trench", "regiment", "siege", "homefront", "armistice"),
    "western": ("frontier", "outlaw", "saloon", "ranch", "sheriff", "dusty"),
    "foreign": ("subtitle", "arthouse", "festival", "province", "dialect"),
}

TITLE_FILLER_WORDS: tuple[str, ...] = (
    "the", "of", "last", "first", "dark", "bright", "lost", "hidden", "eternal",
    "broken", "silent", "golden", "midnight", "crimson", "forgotten", "rising",
    "falling", "beyond", "return", "legacy", "shadow", "storm", "river", "city",
)

POSITIVE_WORDS: tuple[str, ...] = (
    "amazing", "wonderful", "brilliant", "excellent", "great", "beautiful",
    "masterpiece", "perfect", "stunning", "superb", "enjoyable", "favorite",
)

NEGATIVE_WORDS: tuple[str, ...] = (
    "boring", "terrible", "awful", "disappointing", "weak", "mediocre",
    "predictable", "messy", "forgettable", "annoying", "slow", "waste",
)

COMPANY_TIERS: dict[str, tuple[str, ...]] = {
    "major": ("global", "universal", "paramount", "colossal", "titan", "summit"),
    "mid": ("silver", "harbor", "crescent", "beacon", "atlas", "meridian"),
    "indie": ("garage", "basement", "sprout", "lantern", "pebble", "acorn"),
}

COMPANY_SUFFIXES: tuple[str, ...] = (
    "pictures", "studios", "films", "entertainment", "productions", "media",
)

COMPANY_TIER_BUDGET: dict[str, float] = {
    "major": 120_000_000.0,
    "mid": 35_000_000.0,
    "indie": 6_000_000.0,
}

MOVIE_COLLECTIONS: tuple[str, ...] = (
    "galaxy saga", "midnight chronicles", "lost kingdom series", "iron agent saga",
    "haunted manor series", "love in paris collection", "frontier legends",
    "quantum paradox series", "dragon realm saga", "heist crew collection",
)

KEYWORD_POOL: tuple[str, ...] = (
    "based on novel", "sequel", "dystopia", "time travel", "superhero",
    "small town", "road trip", "coming of age", "revenge", "heist",
    "artificial intelligence", "haunted house", "martial arts", "space opera",
    "courtroom", "serial killer", "underdog", "musical", "biography", "zombie",
)


APP_CATEGORIES: dict[str, tuple[str, ...]] = {
    "art and design": ("drawing", "sketch", "palette", "canvas", "wallpaper"),
    "auto and vehicles": ("car", "engine", "garage", "mileage", "dealer"),
    "beauty": ("makeup", "skincare", "salon", "hairstyle", "cosmetic"),
    "books and reference": ("ebook", "dictionary", "novel", "library", "chapter"),
    "business": ("invoice", "meeting", "crm", "payroll", "startup"),
    "comics": ("manga", "superhero", "panel", "webcomic", "issue"),
    "communication": ("chat", "messenger", "call", "inbox", "contacts"),
    "dating": ("match", "swipe", "profile", "romance", "flirt"),
    "education": ("homework", "lesson", "quiz", "classroom", "flashcard"),
    "entertainment": ("streaming", "celebrity", "trailer", "meme", "show"),
    "events": ("ticket", "festival", "concert", "rsvp", "venue"),
    "finance": ("banking", "budget", "invest", "loan", "wallet"),
    "food and drink": ("recipe", "restaurant", "delivery", "menu", "cooking"),
    "health and fitness": ("workout", "calorie", "yoga", "steps", "heartrate"),
    "house and home": ("furniture", "decor", "mortgage", "renovation", "garden"),
    "libraries and demo": ("sdk", "sample", "framework", "widget", "demo"),
    "lifestyle": ("horoscope", "fashion", "habit", "journal", "mindful"),
    "maps and navigation": ("gps", "route", "traffic", "transit", "compass"),
    "medical": ("symptom", "prescription", "clinic", "dosage", "patient"),
    "music and audio": ("playlist", "podcast", "equalizer", "radio", "lyrics"),
    "news and magazines": ("headline", "breaking", "journalist", "digest", "press"),
    "parenting": ("baby", "toddler", "bedtime", "milestone", "nursery"),
    "personalization": ("theme", "launcher", "icon", "ringtone", "widget"),
    "photography": ("camera", "filter", "selfie", "editing", "gallery"),
    "productivity": ("calendar", "notes", "todo", "scanner", "reminder"),
    "shopping": ("cart", "discount", "coupon", "checkout", "marketplace"),
    "social": ("friends", "follower", "feed", "share", "community"),
    "sports": ("score", "league", "fantasy", "stadium", "highlights"),
    "tools": ("flashlight", "cleaner", "battery", "vpn", "calculator"),
    "travel and local": ("hotel", "flight", "itinerary", "sightseeing", "booking"),
    "video players": ("codec", "subtitle", "playback", "stream", "player"),
    "weather": ("forecast", "radar", "humidity", "temperature", "storm"),
    "games": ("puzzle", "arcade", "multiplayer", "level", "leaderboard"),
}

APP_BRAND_WORDS: tuple[str, ...] = (
    "super", "smart", "easy", "quick", "pro", "lite", "daily", "pocket",
    "magic", "ultra", "simple", "instant", "go", "hub", "deck", "nest",
)

PRICING_TYPES: tuple[str, ...] = ("free", "paid")

AGE_GROUPS: tuple[str, ...] = ("everyone", "teen", "mature", "adults only")

GENERIC_REVIEW_WORDS: tuple[str, ...] = (
    "app", "update", "version", "crash", "interface", "feature", "design",
    "support", "download", "account", "screen", "button", "option", "setting",
)
