"""Synthetic TMDB-shaped movie database with matching word-embedding space.

The generator mirrors the structure of the Kaggle "The Movies Dataset" used
in the paper: a ``movies`` table with textual and numeric attributes,
``persons`` (directors and actors), ``genres``, ``companies``, ``countries``,
``keywords``, ``collections`` and ``reviews`` plus n:m link tables.  Ground
truth needed by the evaluation (director citizenship, original language,
budget, movie→genre pairs) is returned alongside the database.

The accompanying word-embedding space places words of one latent concept
(a language, a country, a genre, a sentiment) close together and leaves a
configurable share of person names out of the vocabulary, reproducing the
OOV situation the paper's tokenizer has to cope with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets import vocabulary as vocab
from repro.db.database import Database, build_table_schema
from repro.db.schema import ForeignKey
from repro.db.types import ColumnType
from repro.errors import DatasetError
from repro.text.embedding import WordEmbedding
from repro.text.synthetic import SyntheticEmbeddingSpace


@dataclass
class TmdbDataset:
    """The synthetic TMDB database plus ground truth and embedding space."""

    database: Database
    embedding: WordEmbedding
    director_citizenship: dict[str, str]
    movie_language: dict[str, str]
    movie_budget: dict[str, float]
    movie_genres: dict[str, list[str]] = field(default_factory=dict)
    genre_names: list[str] = field(default_factory=list)
    language_names: list[str] = field(default_factory=list)
    num_movies: int = 0
    seed: int = 0

    def director_is_us(self) -> dict[str, bool]:
        """Binary citizenship labels (True = US-American) per director name."""
        return {
            name: country == "usa"
            for name, country in self.director_citizenship.items()
        }

    def summary(self) -> dict[str, float]:
        """Dataset statistics (Table 1)."""
        return self.database.summary()


def build_movie_embedding_space(
    dimension: int = 64,
    seed: int = 0,
    name_vocab_fraction: float = 0.45,
) -> SyntheticEmbeddingSpace:
    """The synthetic word-embedding space shared by all movie databases."""
    if not 0.0 <= name_vocab_fraction <= 1.0:
        raise DatasetError("name_vocab_fraction must be within [0, 1]")
    space = SyntheticEmbeddingSpace(dimension=dimension, seed=seed)
    rng = np.random.default_rng(seed + 1)
    for language in vocab.LANGUAGES:
        space.add_concept(f"language/{language}", [language], spread=0.15)
    for country in vocab.COUNTRIES:
        concept = f"country/{country.name}"
        space.add_concept(
            concept,
            [country.name, country.demonym],
            parent=f"language/{country.language}",
            spread=0.2,
        )
        first = [
            name
            for name in country.first_names
            if rng.random() < name_vocab_fraction
        ]
        last = [
            name
            for name in country.last_names
            if rng.random() < name_vocab_fraction
        ]
        space.add_concept(
            f"names/{country.name}", first + last, parent=concept, spread=0.7
        )
    for genre, words in vocab.MOVIE_GENRES.items():
        space.add_concept(f"genre/{genre}", [genre, *words], spread=0.3)
    space.add_concept("sentiment/positive", list(vocab.POSITIVE_WORDS), spread=0.3)
    space.add_concept("sentiment/negative", list(vocab.NEGATIVE_WORDS), spread=0.3)
    for tier, words in vocab.COMPANY_TIERS.items():
        space.add_concept(f"company/{tier}", list(words), spread=0.25)
    space.add_concept("keywords", list(vocab.KEYWORD_POOL), spread=0.5)
    space.add_concept("collections", list(vocab.MOVIE_COLLECTIONS), spread=0.5)
    space.add_background_words(list(vocab.TITLE_FILLER_WORDS))
    space.add_background_words(list(vocab.COMPANY_SUFFIXES))
    space.add_background_words(list(vocab.GENERIC_REVIEW_WORDS))
    return space


def _movie_schema(database: Database) -> None:
    database.create_table(build_table_schema(
        "countries",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
        primary_key="id", unique=["name"],
    ))
    database.create_table(build_table_schema(
        "genres",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
        primary_key="id", unique=["name"],
    ))
    database.create_table(build_table_schema(
        "companies",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
        primary_key="id", unique=["name"],
    ))
    database.create_table(build_table_schema(
        "collections",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
        primary_key="id", unique=["name"],
    ))
    database.create_table(build_table_schema(
        "keywords",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
        primary_key="id", unique=["name"],
    ))
    database.create_table(build_table_schema(
        "persons",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
        primary_key="id", unique=["name"],
    ))
    database.create_table(build_table_schema(
        "movies",
        [
            ("id", ColumnType.INTEGER),
            ("title", ColumnType.TEXT),
            ("original_language", ColumnType.TEXT),
            ("overview", ColumnType.TEXT),
            ("budget", ColumnType.FLOAT),
            ("revenue", ColumnType.FLOAT),
            ("popularity", ColumnType.FLOAT),
            ("release_year", ColumnType.INTEGER),
            ("collection_id", ColumnType.INTEGER),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("collection_id", "collections", "id")],
    ))
    database.create_table(build_table_schema(
        "reviews",
        [
            ("id", ColumnType.INTEGER),
            ("movie_id", ColumnType.INTEGER),
            ("text", ColumnType.TEXT),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("movie_id", "movies", "id")],
    ))
    for link, target, fk_column in (
        ("movie_directors", "persons", "person_id"),
        ("movie_actors", "persons", "person_id"),
        ("movie_genres", "genres", "genre_id"),
        ("movie_companies", "companies", "company_id"),
        ("movie_countries", "countries", "country_id"),
        ("movie_keywords", "keywords", "keyword_id"),
    ):
        database.create_table(build_table_schema(
            link,
            [
                ("id", ColumnType.INTEGER),
                ("movie_id", ColumnType.INTEGER),
                (fk_column, ColumnType.INTEGER),
            ],
            primary_key="id",
            foreign_keys=[
                ForeignKey("movie_id", "movies", "id"),
                ForeignKey(fk_column, target, "id"),
            ],
        ))


def _unique_name(base: str, used: set[str], rng: np.random.Generator,
                 extras: tuple[str, ...]) -> str:
    if base not in used:
        used.add(base)
        return base
    for _ in range(50):
        candidate = f"{base} {extras[int(rng.integers(0, len(extras)))]}"
        if candidate not in used:
            used.add(candidate)
            return candidate
    candidate = f"{base} {len(used)}"
    used.add(candidate)
    return candidate


def generate_tmdb(
    num_movies: int = 300,
    seed: int = 0,
    embedding_dimension: int = 64,
    name_vocab_fraction: float = 0.45,
    embedding: WordEmbedding | None = None,
) -> TmdbDataset:
    """Generate a synthetic TMDB-shaped dataset.

    Parameters
    ----------
    num_movies:
        Number of movies; all other table sizes scale with it.
    seed:
        Seed controlling both the data and the embedding space.
    embedding_dimension:
        Dimensionality of the synthetic word vectors.
    name_vocab_fraction:
        Fraction of person-name tokens present in the embedding vocabulary;
        the rest are out-of-vocabulary, as in the real datasets.
    embedding:
        Optionally a pre-built word embedding (used when generating several
        database sizes that should share one vocabulary, e.g. Figure 4).
    """
    if num_movies < 5:
        raise DatasetError("num_movies must be at least 5")
    rng = np.random.default_rng(seed)
    if embedding is None:
        embedding = build_movie_embedding_space(
            dimension=embedding_dimension,
            seed=seed,
            name_vocab_fraction=name_vocab_fraction,
        ).build()

    database = Database(f"tmdb_{num_movies}")
    _movie_schema(database)

    country_ids = {}
    for index, country in enumerate(vocab.COUNTRIES, start=1):
        database.insert("countries", {"id": index, "name": country.name})
        country_ids[country.name] = index
    genre_names = list(vocab.MOVIE_GENRES)
    genre_ids = {}
    for index, genre in enumerate(genre_names, start=1):
        database.insert("genres", {"id": index, "name": genre})
        genre_ids[genre] = index
    collection_ids = {}
    for index, collection in enumerate(vocab.MOVIE_COLLECTIONS, start=1):
        database.insert("collections", {"id": index, "name": collection})
        collection_ids[collection] = index
    keyword_ids = {}
    for index, keyword in enumerate(vocab.KEYWORD_POOL, start=1):
        database.insert("keywords", {"id": index, "name": keyword})
        keyword_ids[keyword] = index

    # --- companies ---------------------------------------------------- #
    tiers = list(vocab.COMPANY_TIERS)
    tier_weights = np.array([0.25, 0.45, 0.30])
    n_companies = max(6, num_movies // 10)
    company_rows: list[dict] = []
    used_company_names: set[str] = set()
    for index in range(1, n_companies + 1):
        tier = tiers[int(rng.choice(len(tiers), p=tier_weights))]
        words = vocab.COMPANY_TIERS[tier]
        base = (
            f"{words[int(rng.integers(0, len(words)))]} "
            f"{vocab.COMPANY_SUFFIXES[int(rng.integers(0, len(vocab.COMPANY_SUFFIXES)))]}"
        )
        name = _unique_name(base, used_company_names, rng, vocab.TITLE_FILLER_WORDS)
        company_rows.append({"id": index, "name": name, "tier": tier})
        database.insert("companies", {"id": index, "name": name})

    # --- persons ------------------------------------------------------ #
    country_names = [country.name for country in vocab.COUNTRIES]
    country_weights = np.array(vocab.COUNTRY_WEIGHTS)
    country_weights = country_weights / country_weights.sum()
    by_name = {country.name: country for country in vocab.COUNTRIES}

    def sample_country() -> str:
        return country_names[int(rng.choice(len(country_names), p=country_weights))]

    n_directors = max(10, int(num_movies * 0.5))
    n_actors = max(12, int(num_movies * 0.9))
    used_person_names: set[str] = set()
    person_rows: list[dict] = []
    director_citizenship: dict[str, str] = {}

    def make_person(person_id: int, role: str) -> dict:
        country = sample_country()
        spec = by_name[country]
        # a share of first names is borrowed from another country's pool —
        # person names are only a weak citizenship signal, as in reality.
        first_spec = spec
        if rng.random() < 0.25:
            first_spec = by_name[country_names[int(rng.integers(0, len(country_names)))]]
        first = first_spec.first_names[int(rng.integers(0, len(first_spec.first_names)))]
        last = spec.last_names[int(rng.integers(0, len(spec.last_names)))]
        name = _unique_name(f"{first} {last}", used_person_names, rng, spec.last_names)
        row = {"id": person_id, "name": name, "country": country, "role": role}
        person_rows.append(row)
        database.insert("persons", {"id": person_id, "name": name})
        return row

    directors = [make_person(i + 1, "director") for i in range(n_directors)]
    actors = [
        make_person(n_directors + i + 1, "actor") for i in range(n_actors)
    ]
    for person in directors:
        director_citizenship[person["name"]] = person["country"]

    directors_by_country: dict[str, list[dict]] = {}
    for person in directors:
        directors_by_country.setdefault(person["country"], []).append(person)

    # --- movies, reviews and link rows ---------------------------------- #
    movie_language: dict[str, str] = {}
    movie_budget: dict[str, float] = {}
    movie_genres: dict[str, list[str]] = {}
    used_titles: set[str] = set()
    review_id = 0
    link_counters = {name: 0 for name in (
        "movie_directors", "movie_actors", "movie_genres",
        "movie_companies", "movie_countries", "movie_keywords",
    )}

    def add_link(table: str, movie_id: int, other_column: str, other_id: int) -> None:
        link_counters[table] += 1
        database.insert(table, {
            "id": link_counters[table],
            "movie_id": movie_id,
            other_column: other_id,
        })

    genre_word_lists = {genre: list(words) for genre, words in vocab.MOVIE_GENRES.items()}
    languages = sorted({c.language for c in vocab.COUNTRIES})

    for movie_id in range(1, num_movies + 1):
        country = sample_country()
        spec = by_name[country]
        language = spec.language if rng.random() < 0.85 else (
            languages[int(rng.integers(0, len(languages)))]
        )
        n_genres = int(rng.integers(1, 4))
        genres = list(rng.choice(genre_names, size=n_genres, replace=False))
        main_genre = genres[0]
        genre_words = genre_word_lists[main_genre]

        title_words = [genre_words[int(rng.integers(0, len(genre_words)))]]
        title_words.append(
            vocab.TITLE_FILLER_WORDS[int(rng.integers(0, len(vocab.TITLE_FILLER_WORDS)))]
        )
        if rng.random() < 0.4:
            title_words.append(
                genre_words[int(rng.integers(0, len(genre_words)))]
            )
        if rng.random() < 0.2:
            title_words.append(spec.demonym)
        rng.shuffle(title_words)
        title = _unique_name(" ".join(title_words), used_titles, rng,
                             vocab.TITLE_FILLER_WORDS)

        overview_words: list[str] = []
        for _ in range(int(rng.integers(8, 13))):
            pool = rng.random()
            if pool < 0.55:
                source = genre_word_lists[genres[int(rng.integers(0, len(genres)))]]
            elif pool < 0.75:
                source = list(vocab.TITLE_FILLER_WORDS)
            else:
                source = list(vocab.POSITIVE_WORDS + vocab.NEGATIVE_WORDS)
            overview_words.append(source[int(rng.integers(0, len(source)))])
        if rng.random() < 0.7:
            overview_words.append(spec.demonym)
        if rng.random() < 0.4:
            overview_words.append(language)
        overview = " ".join(overview_words)

        collection = None
        if rng.random() < 0.2:
            collection = vocab.MOVIE_COLLECTIONS[
                int(rng.integers(0, len(vocab.MOVIE_COLLECTIONS)))
            ]

        n_companies_for_movie = 1 + int(rng.random() < 0.3)
        company_choices = [
            company_rows[int(rng.integers(0, len(company_rows)))]
            for _ in range(n_companies_for_movie)
        ]
        top_tier = max(
            (vocab.COMPANY_TIER_BUDGET[c["tier"]] for c in company_choices)
        )
        n_movie_actors = int(rng.integers(2, 5))
        budget = top_tier * float(rng.uniform(0.6, 1.5))
        if collection is not None:
            budget *= 1.4
        budget *= 1.0 + 0.05 * n_movie_actors
        budget += float(rng.normal(0.0, 0.05 * top_tier))
        budget = max(250_000.0, budget)
        revenue = budget * float(rng.lognormal(0.3, 0.5))
        popularity = float(rng.lognormal(1.5, 0.8))

        database.insert("movies", {
            "id": movie_id,
            "title": title,
            "original_language": language,
            "overview": overview,
            "budget": budget,
            "revenue": revenue,
            "popularity": popularity,
            "release_year": int(rng.integers(1960, 2025)),
            "collection_id": None if collection is None else collection_ids[collection],
        })
        movie_language[title] = language
        movie_budget[title] = budget
        movie_genres[title] = genres

        same_country_directors = directors_by_country.get(country, [])
        if same_country_directors and rng.random() < 0.8:
            director = same_country_directors[
                int(rng.integers(0, len(same_country_directors)))
            ]
        else:
            director = directors[int(rng.integers(0, len(directors)))]
        add_link("movie_directors", movie_id, "person_id", director["id"])

        movie_actor_rows = [
            actors[int(rng.integers(0, len(actors)))] for _ in range(n_movie_actors)
        ]
        for actor in {a["id"]: a for a in movie_actor_rows}.values():
            add_link("movie_actors", movie_id, "person_id", actor["id"])
        for genre in genres:
            add_link("movie_genres", movie_id, "genre_id", genre_ids[genre])
        for company in {c["id"]: c for c in company_choices}.values():
            add_link("movie_companies", movie_id, "company_id", company["id"])
        add_link("movie_countries", movie_id, "country_id", country_ids[country])
        for keyword in rng.choice(vocab.KEYWORD_POOL, size=int(rng.integers(1, 4)),
                                  replace=False):
            add_link("movie_keywords", movie_id, "keyword_id", keyword_ids[str(keyword)])

        for _ in range(int(rng.integers(1, 3))):
            review_id += 1
            positive = rng.random() < 0.65
            sentiment = vocab.POSITIVE_WORDS if positive else vocab.NEGATIVE_WORDS
            review_words = []
            for _ in range(int(rng.integers(10, 16))):
                pool = rng.random()
                if pool < 0.45:
                    source = genre_word_lists[genres[int(rng.integers(0, len(genres)))]]
                elif pool < 0.7:
                    source = list(sentiment)
                else:
                    source = list(vocab.GENERIC_REVIEW_WORDS + vocab.TITLE_FILLER_WORDS)
                review_words.append(source[int(rng.integers(0, len(source)))])
            if rng.random() < 0.45:
                review_words.append(spec.demonym)
            if rng.random() < 0.25:
                review_words.append(language)
            database.insert("reviews", {
                "id": review_id,
                "movie_id": movie_id,
                "text": " ".join(review_words),
            })

    return TmdbDataset(
        database=database,
        embedding=embedding,
        director_citizenship=director_citizenship,
        movie_language=movie_language,
        movie_budget=movie_budget,
        movie_genres=movie_genres,
        genre_names=genre_names,
        language_names=languages,
        num_movies=num_movies,
        seed=seed,
    )
