"""Synthetic dataset generators standing in for the paper's Kaggle datasets.

* :func:`repro.datasets.tmdb.generate_tmdb` — a movie database shaped like
  The Movie Database (TMDB) export used in the paper, with ground truth for
  director citizenship, original language, budget and genres.
* :func:`repro.datasets.google_play.generate_google_play` — a Google Play
  Store shaped database with ground truth app categories.
* :func:`repro.datasets.toy.build_toy_movie_database` — the three-movie /
  two-country example of Figure 3.

Each generator also builds the matching synthetic word-embedding space, so a
single call yields everything a pipeline run needs.
"""

from repro.datasets.tmdb import TmdbDataset, generate_tmdb
from repro.datasets.google_play import GooglePlayDataset, generate_google_play
from repro.datasets.toy import ToyDataset, build_toy_movie_database

__all__ = [
    "TmdbDataset",
    "generate_tmdb",
    "GooglePlayDataset",
    "generate_google_play",
    "ToyDataset",
    "build_toy_movie_database",
]
