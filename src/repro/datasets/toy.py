"""The three-movie / two-country toy example of Figure 3.

The paper visualises the influence of the four hyperparameters by training
two-dimensional embeddings for a tiny database: the movies "Amélie",
"Inception" and "Godfather" and the countries "France" and "USA" where they
were produced.  This module builds exactly that database together with a
fixed two-dimensional word embedding so the hyperparameter sweep of the
figure can be re-run deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.database import Database, build_table_schema
from repro.db.schema import ForeignKey
from repro.db.types import ColumnType
from repro.text.embedding import WordEmbedding


@dataclass
class ToyDataset:
    """The Figure-3 database and its two-dimensional word embedding."""

    database: Database
    embedding: WordEmbedding
    movie_country: dict[str, str]


def build_toy_movie_database(dimension: int = 2) -> ToyDataset:
    """Build the Figure-3 example (3 movies, 2 countries, 1 relation group)."""
    database = Database("toy_movies")
    database.create_table(build_table_schema(
        "countries",
        [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)],
        primary_key="id", unique=["name"],
    ))
    database.create_table(build_table_schema(
        "movies",
        [
            ("id", ColumnType.INTEGER),
            ("title", ColumnType.TEXT),
            ("country_id", ColumnType.INTEGER),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("country_id", "countries", "id")],
    ))
    database.insert("countries", {"id": 1, "name": "france"})
    database.insert("countries", {"id": 2, "name": "usa"})
    movies = [
        (1, "amelie", 1),
        (2, "inception", 2),
        (3, "godfather", 2),
    ]
    for movie_id, title, country_id in movies:
        database.insert("movies", {
            "id": movie_id, "title": title, "country_id": country_id,
        })

    if dimension == 2:
        vectors = {
            "france": np.array([0.9, 0.35]),
            "usa": np.array([0.85, -0.4]),
            "amelie": np.array([-0.3, 0.8]),
            "inception": np.array([-0.55, -0.6]),
            "godfather": np.array([-0.75, -0.25]),
        }
    else:
        rng = np.random.default_rng(7)
        vectors = {
            word: rng.normal(0.0, 1.0, dimension)
            for word in ("france", "usa", "amelie", "inception", "godfather")
        }
    embedding = WordEmbedding.from_dict(vectors)
    movie_country = {"amelie": "france", "inception": "usa", "godfather": "usa"}
    return ToyDataset(
        database=database, embedding=embedding, movie_country=movie_country
    )
