"""Experiment harnesses reproducing every table and figure of the paper.

Each module exposes a ``run(...)`` function returning a
:class:`repro.experiments.runner.ResultTable` whose rows mirror the numbers
shown in the corresponding table/figure, plus a ``main()`` that prints it.
The experiment index lives in DESIGN.md; measured-vs-paper numbers are
recorded in EXPERIMENTS.md.
"""

from repro.experiments.runner import ResultTable, ExperimentSizes
from repro.experiments.embedding_factory import EmbeddingSuite, build_embedding_suite

__all__ = [
    "ResultTable",
    "ExperimentSizes",
    "EmbeddingSuite",
    "build_embedding_suite",
]
