"""Experiment harnesses reproducing every table and figure of the paper.

Each experiment is a declarative :class:`ExperimentSpec` (name, paper
reference, required datasets/methods, runner) registered in the central
:class:`ExperimentRegistry` and executed through a
:class:`~repro.experiments.engine.RunContext`, which memoises datasets,
trained embedding suites and serving sessions — running every figure trains
each suite once, and a ``cache_dir`` persists the suites across processes.

Run them uniformly from the command line::

    python -m repro list
    python -m repro run figure8 table2 --sizes quick --cache-dir .repro-cache
    python -m repro run all

or programmatically::

    from repro.experiments import run_experiment
    result = run_experiment("figure8")          # RunResult
    print(result.table.to_text())
    result.save("figure8.json")                 # JSON round-trippable

The per-module ``run(sizes)`` functions still exist as deprecated shims
delegating to the engine.  Measured-vs-paper numbers are recorded in
EXPERIMENTS.md.
"""

from repro.experiments.runner import ResultTable, ExperimentSizes
from repro.experiments.embedding_factory import EmbeddingSuite, build_embedding_suite
from repro.experiments.registry import (
    ExperimentRegistry,
    ExperimentSpec,
    REGISTRY,
    default_registry,
    experiment,
    register,
)
from repro.experiments.engine import (
    RunContext,
    RunResult,
    config_fingerprint,
    run_experiment,
    run_experiments,
)

__all__ = [
    "ResultTable",
    "ExperimentSizes",
    "EmbeddingSuite",
    "build_embedding_suite",
    "ExperimentRegistry",
    "ExperimentSpec",
    "REGISTRY",
    "default_registry",
    "experiment",
    "register",
    "RunContext",
    "RunResult",
    "config_fingerprint",
    "run_experiment",
    "run_experiments",
]
