"""Recall / latency / memory Pareto sweep over the serving indexes.

One harness answers the question every index PR must re-answer: *where do
Flat, IVF, PQ, IVF-PQ and NSW sit on the recall@k vs latency vs resident
memory surface, and do the two operating points we promise still hold?*

The corpus is the clustered, Zipf-skewed :class:`repro.text.SyntheticCorpus`
at 10⁵–10⁶ values.  Every configuration in the sweep records recall@k
against the exact flat ranking, per-query p50/p99 latency, throughput and
``memory_bytes()``, emitted as machine-diffable JSON.

Two operating points gate in CI (evaluated from the committed quick-preset
payload, recomputed from the raw sweep points — never trusted from a
stored verdict):

* ``nsw_fast_accurate`` — some NSW sweep point reaches recall@10 ≥ 0.95 at
  ≥ 5× the flat scan's throughput.
* ``ivfpq_small_memory`` — some IVF-PQ sweep point reaches recall@10 ≥ 0.9
  in ≤ 1/20 of the flat index's resident bytes (PQ serves re-ranks from
  the mmap page cache, so its ``memory_bytes`` excludes the matrix).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.errors import ReproError
from repro.serving import FlatIndex, IVFIndex, NSWIndex, PQIndex
from repro.text import SyntheticCorpus

#: Sizing presets: (n_values, dimension, n_queries).  ``tiny`` is the CI
#: smoke (seconds); ``quick`` is the committed 10⁵-value Pareto run the
#: gates are certified on; ``paper`` approaches the paper's 10⁶ regime.
PRESETS: dict[str, tuple[int, int, int]] = {
    "tiny": (5_000, 64, 48),
    "quick": (100_000, 300, 64),
    "paper": (1_000_000, 300, 64),
}

K = 10

GATES: dict[str, dict[str, float]] = {
    "nsw_fast_accurate": {"min_recall": 0.95, "min_speedup": 5.0},
    "ivfpq_small_memory": {"min_recall": 0.90, "max_memory_fraction": 0.05},
}


def _sweep_plan(
    n_values: int,
) -> list[tuple[str, dict[str, Any], list[dict[str, Any]]]]:
    """``(family, build kwargs, query-knob sweep)`` per index family.

    Each family builds (and pays for k-means / graph construction) exactly
    once; ``nprobe``/``rerank``/``ef_search`` are query-time attributes
    swept on the built index — exactly how an operator would tune a live
    deployment.
    """
    n_cells = max(8, int(np.sqrt(n_values)))
    # the clustered corpus packs ~n/n_clusters rows into each tight
    # cluster, so the rerank shortlist has to cover a whole cluster
    # before the exact re-score can recover the true within-cluster
    # ranking — hence the wide rerank range
    return [
        ("ivf", {}, [{"nprobe": nprobe} for nprobe in (4, 8, 16)]),
        (
            "pq",
            {"n_cells": 1, "rerank": 0},
            [{"rerank": rerank} for rerank in (0, 128, 1024)],
        ),
        (
            "ivfpq",
            {"n_cells": n_cells, "nprobe": 8, "rerank": 64},
            [
                {"nprobe": nprobe, "rerank": rerank}
                for nprobe, rerank in ((8, 64), (16, 512), (16, 1024))
            ],
        ),
        (
            "nsw",
            {"max_degree": 16, "ef_construction": 80},
            [{"ef_search": ef} for ef in (16, 32, 64, 128)],
        ),
    ]


def _build(family: str, matrix: np.ndarray, params: dict[str, Any]):
    if family == "ivf":
        return IVFIndex(matrix, seed=0, **params)
    if family in ("pq", "ivfpq"):
        return PQIndex(matrix, seed=0, **params)
    if family == "nsw":
        return NSWIndex(matrix, **params)
    raise ReproError(f"unknown index family {family!r}")


def _point_label(family: str, knobs: dict[str, Any]) -> str:
    inner = ",".join(
        f"{key.replace('_search', '')}={value}"
        for key, value in knobs.items()
    )
    return f"{family}({inner})"


def _measure(index, queries: np.ndarray, k: int) -> dict[str, Any]:
    """Per-query latencies (the serving shape: one query per request)."""
    latencies = np.empty(queries.shape[0])
    hits = []
    for row in range(queries.shape[0]):
        started = time.perf_counter()
        ids, _ = index.query(queries[row], k)
        latencies[row] = time.perf_counter() - started
        hits.append(ids)
    return {
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "qps": float(queries.shape[0] / latencies.sum()),
        "hits": hits,
    }


def _recall(reference: list[np.ndarray], candidate: list[np.ndarray], k: int) -> float:
    return float(np.mean([
        len(set(ref[:k].tolist()) & set(cand[:k].tolist())) / k
        for ref, cand in zip(reference, candidate)
    ]))


def run_index_pareto(
    preset: str = "tiny",
    k: int = K,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the full sweep; returns the machine-diffable payload."""
    if preset not in PRESETS:
        raise ReproError(
            f"unknown preset {preset!r}; pick one of {'/'.join(PRESETS)}"
        )
    say = progress or (lambda message: None)
    n_values, dimension, n_queries = PRESETS[preset]
    corpus = SyntheticCorpus(
        n_values, dimension=dimension, n_clusters=max(32, n_values // 1_000),
        seed=seed,
    )
    say(f"generating {n_values}x{dimension} corpus")
    matrix = corpus.matrix()
    queries = corpus.queries(n_queries)

    say("flat baseline")
    started = time.perf_counter()
    flat = FlatIndex(matrix)
    flat_build = time.perf_counter() - started
    flat_stats = _measure(flat, queries, k)
    flat_hits = flat_stats.pop("hits")
    flat_memory = flat.memory_bytes()

    payload: dict[str, Any] = {
        "schema": "index-pareto/v1",
        "preset": preset,
        "n_values": n_values,
        "dimension": dimension,
        "n_queries": n_queries,
        "k": k,
        "seed": seed,
        "flat": {
            "build_seconds": flat_build,
            "memory_bytes": int(flat_memory),
            **flat_stats,
        },
        "points": [],
    }

    for family, build_params, sweep in _sweep_plan(n_values):
        say(f"building {family}")
        started = time.perf_counter()
        index = _build(family, matrix, build_params)
        build_seconds = time.perf_counter() - started
        for knobs in sweep:
            label = _point_label(family, knobs)
            say(label)
            for key, value in knobs.items():
                setattr(index, key, value)
            stats = _measure(index, queries, k)
            hits = stats.pop("hits")
            payload["points"].append({
                "family": family,
                "label": label,
                "params": {**build_params, **knobs},
                "build_seconds": build_seconds,
                "memory_bytes": int(index.memory_bytes()),
                "memory_fraction": float(index.memory_bytes() / flat_memory),
                "recall_at_k": _recall(flat_hits, hits, k),
                "speedup_vs_flat": float(stats["qps"] / payload["flat"]["qps"]),
                **stats,
            })
        del index

    payload["gates"] = evaluate_gates(payload)
    return payload


def evaluate_gates(payload: dict[str, Any]) -> dict[str, Any]:
    """Re-derive both gate verdicts from the raw sweep points."""
    points = payload.get("points", [])

    def best(family: str, metric: str, admissible) -> dict[str, Any] | None:
        candidates = [
            point for point in points
            if point.get("family") == family and admissible(point)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda point: point.get(metric, 0.0))

    nsw_rule = GATES["nsw_fast_accurate"]
    nsw_best = best(
        "nsw", "speedup_vs_flat",
        lambda p: p.get("recall_at_k", 0.0) >= nsw_rule["min_recall"],
    )
    ivfpq_rule = GATES["ivfpq_small_memory"]
    ivfpq_best = best(
        "ivfpq", "recall_at_k",
        lambda p: (
            p.get("recall_at_k", 0.0) >= ivfpq_rule["min_recall"]
            and p.get("memory_fraction", 1.0) <= ivfpq_rule["max_memory_fraction"]
        ),
    )
    return {
        "nsw_fast_accurate": {
            **nsw_rule,
            "passed": bool(
                nsw_best is not None
                and nsw_best["speedup_vs_flat"] >= nsw_rule["min_speedup"]
            ),
            "witness": nsw_best["label"] if nsw_best else None,
        },
        "ivfpq_small_memory": {
            **ivfpq_rule,
            "passed": ivfpq_best is not None,
            "witness": ivfpq_best["label"] if ivfpq_best else None,
        },
    }


def check_gates(payload: dict[str, Any]) -> list[str]:
    """Validate the two operating points; returns failure messages.

    Recomputes the verdicts from the payload's sweep points, so a stale
    or hand-edited ``gates`` section cannot sneak a regression through.
    """
    if payload.get("preset") == "tiny":
        return [
            "gates are certified on the quick (1e5) preset; the tiny smoke "
            "payload is not admissible"
        ]
    failures = []
    gates = evaluate_gates(payload)
    for name, verdict in gates.items():
        if not verdict["passed"]:
            failures.append(
                f"gate {name} failed: no sweep point satisfies "
                + ", ".join(
                    f"{key}={value}" for key, value in GATES[name].items()
                )
            )
    return failures


def save_payload(payload: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_payload(path: str | Path) -> dict[str, Any]:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot read Pareto payload {path}: {error}") from error


def format_table(payload: dict[str, Any]) -> str:
    """A human-readable rendering of the sweep (the JSON stays canonical)."""
    lines = [
        f"index Pareto sweep — preset {payload['preset']} "
        f"({payload['n_values']}x{payload['dimension']}, k={payload['k']})",
        f"{'label':<28}{'recall':>8}{'p50 ms':>10}{'p99 ms':>10}"
        f"{'x flat':>8}{'mem %':>8}",
    ]
    flat = payload["flat"]
    lines.append(
        f"{'flat':<28}{1.0:>8.3f}{flat['p50_ms']:>10.3f}"
        f"{flat['p99_ms']:>10.3f}{1.0:>8.2f}{100.0:>8.1f}"
    )
    for point in payload["points"]:
        lines.append(
            f"{point['label']:<28}{point['recall_at_k']:>8.3f}"
            f"{point['p50_ms']:>10.3f}{point['p99_ms']:>10.3f}"
            f"{point['speedup_vs_flat']:>8.2f}"
            f"{point['memory_fraction'] * 100:>8.1f}"
        )
    for name, verdict in payload.get("gates", {}).items():
        status = "PASS" if verdict["passed"] else "FAIL"
        witness = verdict.get("witness") or "-"
        lines.append(f"gate {name}: {status} (witness: {witness})")
    return "\n".join(lines)
