"""Figures 6/7 and 10/11: hyperparameter grid searches.

The paper sweeps the four global hyperparameters α, β, γ, δ for both solvers
(RO — the Ψ-function approach, RN — the series approach), with and without
concatenated DeepWalk embeddings, on two tasks:

* binary classification of US-American directors (Figures 6 and 7),
* imputation of the movies' original language (Figures 10 and 11).

Each (task, solver) combination is a registered experiment (``figure6``,
``figure7``, ``figure10``, ``figure11``) sharing one runner; every grid
point's suite build goes through the run context's artifact cache, so
re-running a sweep against a warm ``--cache-dir`` trains nothing.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.experiments.common import (
    binary_classification_trials,
    imputation_trials,
)
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.experiments.task_data import (
    director_classification_data,
    language_imputation_data,
)
from repro.retrofit.hyperparams import RetroHyperparameters

DEFAULT_GRID: dict[str, tuple[float, ...]] = {
    "alpha": (1.0, 2.0),
    "beta": (0.0, 1.0),
    "gamma": (1.0, 3.0),
    "delta": (0.0, 1.0, 3.0),
}

_FIGURE_BY_CONFIG = {
    ("binary", "RO"): "Figure 6",
    ("binary", "RN"): "Figure 7",
    ("language", "RO"): "Figure 10",
    ("language", "RN"): "Figure 11",
}


@dataclass(frozen=True)
class GridSearchSpec:
    """One grid-search run: which task, which solver, DeepWalk concatenation."""

    task: str = "binary"        # "binary" (Fig. 6/7) or "language" (Fig. 10/11)
    solver: str = "RN"          # "RO" (Ψ function) or "RN" (series)
    combine_with_deepwalk: bool = False

    def __post_init__(self) -> None:
        if self.task not in ("binary", "language"):
            raise ExperimentError("task must be 'binary' or 'language'")
        if self.solver not in ("RO", "RN"):
            raise ExperimentError("solver must be 'RO' or 'RN'")

    @property
    def experiment_name(self) -> str:
        """The registry name of this configuration (e.g. ``figure7``)."""
        return _FIGURE_BY_CONFIG[(self.task, self.solver)].replace(" ", "").lower()


def run_gridsearch(
    ctx,
    task: str = "binary",
    solver: str = "RN",
    combine_with_deepwalk: bool = False,
    grid: dict[str, tuple[float, ...]] | None = None,
) -> ResultTable:
    """Run one hyperparameter grid search and report the accuracy per setting."""
    spec = GridSearchSpec(
        task=task, solver=solver, combine_with_deepwalk=combine_with_deepwalk
    )
    sizes = ctx.sizes
    grid = grid or DEFAULT_GRID
    dataset = ctx.tmdb()
    exclude_columns: tuple[str, ...] = ()
    if spec.task == "language":
        exclude_columns = ("movies.original_language",)

    methods = (spec.solver, "DW") if spec.combine_with_deepwalk else (spec.solver,)
    embedding_name = (
        f"{spec.solver}+DW" if spec.combine_with_deepwalk else spec.solver
    )

    figure = _FIGURE_BY_CONFIG[(spec.task, spec.solver)]
    suffix = " (+DeepWalk)" if spec.combine_with_deepwalk else ""
    table = ResultTable(
        name=f"{figure}: grid search, {spec.task} task, {spec.solver}{suffix}",
        columns=["alpha", "beta", "gamma", "delta", "accuracy_mean", "accuracy_std"],
    )

    for alpha in grid["alpha"]:
        for beta in grid["beta"]:
            for gamma in grid["gamma"]:
                for delta in grid["delta"]:
                    params = RetroHyperparameters(
                        alpha=alpha, beta=beta, gamma=gamma, delta=delta
                    )
                    suite = ctx.suite(
                        "tmdb",
                        methods=methods,
                        exclude_columns=exclude_columns,
                        ro_params=params,
                        rn_params=params,
                    )
                    if spec.task == "binary":
                        data = director_classification_data(suite.extraction, dataset)
                        stats = binary_classification_trials(
                            suite, embedding_name, data, sizes, trials=1
                        )
                    else:
                        data = language_imputation_data(suite.extraction, dataset)
                        stats = imputation_trials(
                            suite, embedding_name, data, sizes, trials=1
                        )
                    table.add_row(
                        alpha=alpha, beta=beta, gamma=gamma, delta=delta,
                        accuracy_mean=stats.mean, accuracy_std=stats.std,
                    )
    table.add_note(
        "expected: settings with gamma > 0 beat gamma-free ones; overly large "
        "delta with small alpha degrades accuracy (non-converging region)"
    )
    return table


for _task, _solver in _FIGURE_BY_CONFIG:
    _figure = _FIGURE_BY_CONFIG[(_task, _solver)]
    register(
        ExperimentSpec(
            name=_figure.replace(" ", "").lower(),
            title=f"Grid search, {_task} task, {_solver} solver",
            reference=_figure,
            runner=run_gridsearch,
            datasets=("tmdb",),
            methods=(_solver, "DW"),
            default_options={
                "task": _task,
                "solver": _solver,
                "combine_with_deepwalk": False,
                "grid": None,
            },
            description=(
                f"α/β/γ/δ sweep of the {_solver} solver on the {_task} task; "
                "pass combine_with_deepwalk=true for the +DW variant."
            ),
        )
    )


def run(
    spec: GridSearchSpec | None = None,
    sizes: ExperimentSizes | None = None,
    grid: dict[str, tuple[float, ...]] | None = None,
) -> ResultTable:
    """Deprecated shim: delegates to the experiment engine (``figure6``…``figure11``)."""
    warnings.warn(
        "gridsearch.run() is deprecated; use repro.experiments.engine."
        "run_experiment('figure6'|'figure7'|'figure10'|'figure11') or the "
        "`repro run` CLI",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments.engine import run_experiment

    spec = spec or GridSearchSpec()
    return run_experiment(
        spec.experiment_name,
        sizes=sizes,
        options={
            "combine_with_deepwalk": spec.combine_with_deepwalk,
            "grid": grid,
        },
    ).table


def best_configuration(table: ResultTable) -> dict[str, float]:
    """The grid point with the highest mean accuracy."""
    if not table.rows:
        raise ExperimentError("grid search produced no rows")
    best = max(table.rows, key=lambda row: row["accuracy_mean"])
    return {
        "alpha": best["alpha"],
        "beta": best["beta"],
        "gamma": best["gamma"],
        "delta": best["delta"],
        "accuracy": best["accuracy_mean"],
    }


def main() -> None:  # pragma: no cover - console entry point
    from repro.experiments.engine import run_experiments

    for result in run_experiments(["figure6", "figure7"]):
        print(result.table.to_text())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
