"""Concurrent serving benchmark (``repro serve-bench``).

Measures the serving stack under the workload the ROADMAP's north star
describes: many readers querying while a live delta stream updates the
model.  Three phases run over the same settled starting point:

* **baseline** — a single thread issuing every query one at a time
  against a plain :class:`~repro.serving.ServingSession` (the PR 4 state
  of the world),
* **concurrent** — a :class:`~repro.serving.ServingRuntime` (write-ahead
  delta queue + double-buffered snapshot sessions) fronted by a
  :class:`~repro.serving.BatchedQueryFront`; ``readers`` threads each
  keep ``pipeline_depth`` requests in flight (emulating
  ``readers × pipeline_depth`` independent clients) — the steady-state
  throughput the 2×-vs-baseline gate measures,
* **concurrent under churn** — the same read workload while the main
  thread submits ``n_deltas`` synthetic write batches into the queue
  (update lag and the reader-side cost of churn; on one core the
  applier's solver work and the readers share the interpreter, so this
  phase's throughput bounds the worst case, not the steady state).

With ``shards >= 1`` two more phases run the same workloads through a
:class:`~repro.serving.ShardedServingTier` — hash-partitioned worker
processes over a shared memory-mapped matrix, with the retrofit applier
in its own process — measuring what moving the solver and the index scans
off the readers' interpreter buys (on a multi-core box; on one core the
processes still time-share).

With ``replicas >= 1`` the same workloads also run through a
:class:`~repro.serving.ReplicatedServingTier` — a primary runtime
publishing every applied delta to the store's replication log, full-corpus
followers tailing it — followed by three replication-specific
measurements: per-delta replication lag (publish → visible on every
follower), read-your-writes latency and correctness (a floored read
straight after each write ack must answer at-or-past the ticket's
version), and failover (SIGKILL the primary mid-stream, time until a
promoted follower lands the next write).  The correctness half compares a
follower's fully-replayed matrix against both the store's own log replay
(exact) and a serial incremental retrofitter over the identical stream.

With ``fronts >= 1`` (requires ``replicas >= 1``) the replicated tier is
additionally served over the network: a
:class:`~repro.serving.MultiFrontDeployment` runs that many HTTP front
processes behind the connection balancer, and
:class:`~repro.serving.ServingClient` readers/writers drive steady and
churn phases entirely over ``/v1`` — writes POSTed as wire-form deltas
with submission ids, each ack followed by a floored read (the
read-your-writes check), a duplicated POST asserted to apply exactly
once, and the HTTP-acked deltas folded into the same serial-replay
agreement gate as the in-process stream.

Reported: queries/s and p50/p99 per-request latency for both phases,
update lag (submit→publish) for the delta stream, queue/coalescing and
batching counters, and — the correctness half — the max cosine distance
between the runtime's final vectors and a *serial*
:class:`~repro.retrofit.incremental.IncrementalRetrofitter` applying the
identical delta stream to an identical database (the concurrent path must
not trade accuracy for throughput).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.common import make_tmdb
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.experiments.update_bench import (
    _METHOD_NAMES,
    settled_tmdb_start,
    synthesize_tmdb_delta,
)
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.incremental import (
    IncrementalRetrofitter,
    max_cosine_distance,
)
from repro.serving.runtime import BatchedQueryFront, ServingRuntime
from repro.serving.session import ServingSession, default_index_factory

#: Iteration cap for incremental solves (the certification tolerance stops
#: them much earlier); matches the update benchmark.
SOLVE_ITERATIONS = 300


def _build_query_workload(
    embeddings, n_queries: int, rng: np.random.Generator
) -> np.ndarray:
    """Realistic query vectors: stored values plus a little noise.

    Perturbation keeps every query distinct (no trivial exact-match cache
    wins) while staying close to the data distribution, so IVF probing
    and top-k behave as in production.
    """
    rows = rng.integers(0, len(embeddings), size=n_queries)
    queries = embeddings.matrix[rows].copy()
    scale = np.maximum(np.linalg.norm(queries, axis=1, keepdims=True), 1e-9)
    queries += rng.normal(0.0, 0.02, queries.shape) * scale
    return queries


def _percentiles(latencies: list[float]) -> tuple[float, float]:
    if not latencies:
        return 0.0, 0.0
    values = np.asarray(latencies)
    return float(np.percentile(values, 50)), float(np.percentile(values, 99))


def run_serve_benchmark(
    sizes: ExperimentSizes | None = None,
    method: str = "RN",
    readers: int = 4,
    queries_per_reader: int = 256,
    pipeline_depth: int = 16,
    n_deltas: int = 4,
    delta_fraction: float = 0.01,
    window_seconds: float = 0.002,
    max_batch: int = 64,
    k: int = 10,
    delta_interval_seconds: float = 0.05,
    corpus_scale: int = 5,
    shards: int = 0,
    replicas: int = 0,
    fronts: int = 0,
    seed: int | None = None,
    cache_dir=None,
    churn: bool = False,
    measure_agreement: bool = True,
) -> tuple[ResultTable, dict[str, Any]]:
    """Run the concurrent-serving benchmark; returns (table, JSON payload).

    ``corpus_scale`` multiplies the preset's movie count: a serving
    benchmark needs a serving-sized corpus (at quick sizes the scaled
    corpus crosses the IVF threshold, which is the regime batched
    coalescing is built for; the training experiments' presets are sized
    for solver runs, not for index scans).

    The acceptance gate this measures: batched-coalesced concurrent
    throughput at least 2× the single-threaded query loop, at equal
    recall (both phases run the same index configuration over the same
    vectors, so recall is identical by construction), with the final
    vectors within 1e-3 cosine distance of the serial incremental path.
    """
    if method not in _METHOD_NAMES:
        raise ExperimentError(
            f"unknown serve-benchmark method {method!r}; expected RN or RO"
        )
    if readers < 1:
        raise ExperimentError("serve benchmark needs at least one reader")
    if corpus_scale < 1:
        raise ExperimentError("corpus_scale must be at least 1")
    if fronts >= 1 and replicas < 1:
        raise ExperimentError(
            "--fronts serves the replicated tier over HTTP; pass "
            "--replicas N (>= 1) as well"
        )
    from repro.experiments.engine import RunContext

    sizes = sizes or ExperimentSizes.quick()
    sizes = dataclasses.replace(
        sizes, num_movies=sizes.num_movies * corpus_scale
    )
    ctx = RunContext(sizes=sizes, cache_dir=cache_dir)
    solver_method = _METHOD_NAMES[method]
    hyperparams = (
        RetroHyperparameters.paper_rn_default()
        if method == "RN"
        else RetroHyperparameters.paper_ro_default()
    )
    stream_seed = sizes.seed if seed is None else seed

    # ---- settled starting point (shared with `repro update`) ----------- #
    started = time.perf_counter()
    dataset, tokenizer, embeddings, base_matrix, settle_report = (
        settled_tmdb_start(ctx, method, hyperparams, solver_method)
    )
    setup_seconds = time.perf_counter() - started
    database = dataset.database
    movies_per_delta = max(
        1, int(round(len(database.table("movies")) * delta_fraction))
    )
    total_queries = readers * queries_per_reader
    workload_rng = np.random.default_rng(stream_seed + 7)
    queries = _build_query_workload(embeddings, total_queries, workload_rng)

    # every phase serves the same index configuration: recall is equal by
    # construction and the throughput comparison is apples to apples
    factory = default_index_factory()

    # ---- phase 1: single-threaded baseline loop ------------------------ #
    baseline_session = ServingSession(embeddings, index_factory=factory)
    baseline_session.settle_indexes()
    baseline_latencies: list[float] = []
    started = time.perf_counter()
    for query in queries:
        t0 = time.perf_counter()
        baseline_session.topk(query, k)
        baseline_latencies.append(time.perf_counter() - t0)
    baseline_wall = time.perf_counter() - started
    baseline_qps = total_queries / baseline_wall if baseline_wall > 0 else 0.0

    # ---- the delta stream (recorded so the serial path can replay it) -- #
    # synthesized against a scratch copy of the database that each delta is
    # applied to in turn: every delta assumes its predecessors landed (fresh
    # ids, titles), which is exactly the order the runtime applies them in
    stream_rng = np.random.default_rng(stream_seed)
    scratch = make_tmdb(sizes).database
    deltas = []
    for _ in range(max(0, n_deltas)):
        delta = synthesize_tmdb_delta(
            scratch,
            stream_rng,
            movies_per_delta,
            include_update=churn,
            include_delete=churn,
        )
        delta.apply_to(scratch)
        deltas.append(delta)

    # ---- phase 2: concurrent runtime + batched front ------------------- #
    retrofitter = IncrementalRetrofitter(
        embeddings,
        tokenizer,
        hyperparams=hyperparams,
        method=solver_method,
        base_matrix=base_matrix,
    )
    runtime = ServingRuntime(
        database,
        retrofitter,
        index_factory=factory,
        solve_iterations=SOLVE_ITERATIONS,
    )
    reader_errors: list[BaseException] = []

    def reader_loop(
        front: BatchedQueryFront, chunk: np.ndarray, sink: list[float]
    ) -> None:
        try:
            local: list[float] = []
            for start in range(0, len(chunk), pipeline_depth):
                flight = chunk[start:start + pipeline_depth]
                submitted = [
                    (time.perf_counter(), front.submit(vector, k))
                    for vector in flight
                ]
                for t0, future in submitted:
                    future.result(timeout=60.0)
                    local.append(time.perf_counter() - t0)
            sink.extend(local)  # one list.extend per thread: GIL-atomic
        except BaseException as error:  # surfaced by the main thread
            reader_errors.append(error)

    def run_reader_phase(
        front: BatchedQueryFront, submit=None
    ) -> tuple[float, list[float], list]:
        latencies: list[float] = []
        chunks = np.array_split(queries, readers)
        threads = [
            threading.Thread(target=reader_loop, args=(front, chunk, latencies))
            for chunk in chunks
        ]
        tickets = []
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        if submit is not None:
            # drip the write stream into the queue while readers run; a
            # busy applier still coalesces bunched-up submissions
            for delta in deltas:
                tickets.append(submit(delta))
                time.sleep(delta_interval_seconds)
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        if reader_errors:
            raise reader_errors[0]
        return wall, latencies, tickets

    with runtime:
        with BatchedQueryFront(
            runtime, window_seconds=window_seconds, max_batch=max_batch
        ) as front:
            # phase 2: steady-state concurrent serving — the throughput
            # gate compares this against the single-threaded loop
            steady_wall, steady_latencies, _ = run_reader_phase(front)
            steady_front_stats = front.stats
            # phase 3: the same read workload under a live delta stream —
            # measures update lag and how much churn costs the readers
            churn_wall, churn_latencies, tickets = run_reader_phase(
                front, submit=runtime.submit
            )
        runtime.flush(timeout=300.0)
        runtime_stats = runtime.stats
        front_stats = front.stats
    for ticket in tickets:
        ticket.wait(timeout=1.0)  # re-raises a failed pipeline
    steady_qps = total_queries / steady_wall if steady_wall > 0 else 0.0
    churn_qps = total_queries / churn_wall if churn_wall > 0 else 0.0

    # ---- phases 4+5: sharded multi-process tier ------------------------ #
    sharded_metrics: dict[str, Any] | None = None
    sharded_final = None
    if shards >= 1:
        import tempfile

        from repro.serving.sharded import ShardedServingTier
        from repro.serving.store import EmbeddingStore

        shard_dir = tempfile.TemporaryDirectory(prefix="serve-bench-shards-")
        store = EmbeddingStore(shard_dir.name)
        store.save_embedding_set("serve", embeddings)
        # the tier's applier process gets its own pre-stream database copy
        # and retrofitter (the runtime above already consumed the shared
        # ones); it replays the identical delta stream
        tier = ShardedServingTier(
            shard_dir.name,
            "serve",
            n_shards=shards,
            database=make_tmdb(sizes).database,
            retrofitter=IncrementalRetrofitter(
                embeddings,
                tokenizer,
                hyperparams=hyperparams,
                method=solver_method,
                base_matrix=base_matrix,
            ),
            solve_iterations=SOLVE_ITERATIONS,
        )
        with tier:
            with BatchedQueryFront(
                tier, window_seconds=window_seconds, max_batch=max_batch
            ) as shard_front:
                shard_steady_wall, shard_steady_latencies, _ = (
                    run_reader_phase(shard_front)
                )
                shard_churn_wall, shard_churn_latencies, shard_tickets = (
                    run_reader_phase(shard_front, submit=tier.submit)
                )
            tier.flush(timeout=600.0)
            tier_stats = tier.stats
        for ticket in shard_tickets:
            ticket.wait(timeout=1.0)
        sharded_final, _, _ = store.load_embedding_set_versioned("serve")
        shard_dir.cleanup()
        shard_steady_qps = (
            total_queries / shard_steady_wall if shard_steady_wall > 0 else 0.0
        )
        shard_churn_qps = (
            total_queries / shard_churn_wall if shard_churn_wall > 0 else 0.0
        )
        shard_lags = [
            t.lag_seconds for t in shard_tickets if t.lag_seconds is not None
        ]
        shard_steady_p50, shard_steady_p99 = _percentiles(shard_steady_latencies)
        shard_churn_p50, shard_churn_p99 = _percentiles(shard_churn_latencies)
        sharded_metrics = {
            "n_shards": shards,
            "steady": {
                "wall_seconds": shard_steady_wall,
                "qps": shard_steady_qps,
                "p50_seconds": shard_steady_p50,
                "p99_seconds": shard_steady_p99,
                "queries_answered": len(shard_steady_latencies),
            },
            "churn": {
                "wall_seconds": shard_churn_wall,
                "qps": shard_churn_qps,
                "p50_seconds": shard_churn_p50,
                "p99_seconds": shard_churn_p99,
                "queries_answered": len(shard_churn_latencies),
            },
            "published_version": tier_stats.published_version,
            "writes_applied": tier_stats.writes_applied,
            "degraded_queries": tier_stats.degraded_queries,
            "shard_respawns": tier_stats.shard_respawns,
            "churn_vs_steady": (
                shard_churn_qps / shard_steady_qps if shard_steady_qps else 0.0
            ),
            "churn_vs_single_process_churn": (
                shard_churn_qps / churn_qps if churn_qps else 0.0
            ),
            "update_lag_seconds": shard_lags,
            "mean_lag_seconds": (
                float(np.mean(shard_lags)) if shard_lags else None
            ),
        }

    # ---- phases 6+7: replicated log-shipping tier ---------------------- #
    replicated_metrics: dict[str, Any] | None = None
    http_metrics: dict[str, Any] | None = None
    repl_deltas: list = []
    repl_follower_matrix = None
    repl_final_set = None
    if replicas >= 1:
        import os
        import signal
        import tempfile

        from repro.serving.replicated import ReplicatedServingTier
        from repro.serving.store import EmbeddingStore

        repl_dir = tempfile.TemporaryDirectory(prefix="serve-bench-replicas-")
        repl_store = EmbeddingStore(repl_dir.name)
        repl_store.save_embedding_set("serve", embeddings)

        def follower_retrofitter(follower_embeddings):
            # the promotion path: a follower elected primary rebuilds its
            # solver from its replayed state (no warm base matrix —
            # correctness over promotion speed)
            return IncrementalRetrofitter(
                follower_embeddings,
                tokenizer,
                hyperparams=hyperparams,
                method=solver_method,
            )

        tier = ReplicatedServingTier(
            repl_dir.name,
            "serve",
            n_replicas=replicas,
            database=make_tmdb(sizes).database,
            retrofitter=IncrementalRetrofitter(
                embeddings,
                tokenizer,
                hyperparams=hyperparams,
                method=solver_method,
                base_matrix=base_matrix,
            ),
            retrofitter_factory=follower_retrofitter,
            solve_iterations=SOLVE_ITERATIONS,
        )
        with tier:
            with BatchedQueryFront(
                tier, window_seconds=window_seconds, max_batch=max_batch
            ) as repl_front:
                repl_steady_wall, repl_steady_latencies, _ = (
                    run_reader_phase(repl_front)
                )
                repl_churn_wall, repl_churn_latencies, repl_tickets = (
                    run_reader_phase(repl_front, submit=tier.submit)
                )
            tier.flush(timeout=600.0)
            for ticket in repl_tickets:
                ticket.wait(timeout=1.0)

            # replication lag + read-your-writes probes: a fresh delta is
            # acked by the primary, then we time until every follower has
            # replayed it, and immediately issue a floored read that must
            # answer at-or-past the ticket's log position
            replication_lags: list[float] = []
            ryw_latencies: list[float] = []
            ryw_violations = 0
            probe_query = queries[0]
            for _ in range(max(1, min(4, n_deltas))):
                probe = synthesize_tmdb_delta(
                    scratch, stream_rng, movies_per_delta
                )
                probe.apply_to(scratch)
                repl_deltas.append(probe)
                ticket = tier.submit(probe)
                version = ticket.wait(timeout=600.0)
                published_at = time.perf_counter()
                deadline = published_at + 60.0
                while (
                    min(tier.replica_versions().values(), default=-1)
                    < version
                ):
                    if time.perf_counter() > deadline:
                        raise ExperimentError(
                            "followers never replayed the probe delta: "
                            f"waiting for version {version}, followers at "
                            f"{tier.replica_versions()}, {tier.stats}"
                        )
                    time.sleep(0.002)
                replication_lags.append(time.perf_counter() - published_at)
                t0 = time.perf_counter()
                answered, _ = tier.topk_batch_versioned(
                    probe_query[None, :], k, min_version=version
                )
                ryw_latencies.append(time.perf_counter() - t0)
                if answered < version:
                    ryw_violations += 1

            # failover: SIGKILL the primary, then submit straight away —
            # the writer must detect the death, promote the most caught-up
            # follower, and land the write there.  The outage window is
            # kill → post-failover ack (what a writer actually waits).
            killed_at = time.perf_counter()
            os.kill(tier.primary_pid, signal.SIGKILL)
            failover_delta = synthesize_tmdb_delta(
                scratch, stream_rng, movies_per_delta
            )
            failover_delta.apply_to(scratch)
            repl_deltas.append(failover_delta)
            failover_ticket = tier.submit(failover_delta)
            failover_version = failover_ticket.wait(timeout=600.0)
            write_outage = time.perf_counter() - killed_at
            answered, _ = tier.topk_batch_versioned(
                probe_query[None, :], k, min_version=failover_version
            )
            if answered < failover_version:
                ryw_violations += 1

            # ---- write-over-HTTP phases: N fronts over this one pool -- #
            if fronts >= 1:
                from repro.serving.client import ServingClient
                from repro.serving.multifront import MultiFrontDeployment

                bench_token = "serve-bench"
                deployment = MultiFrontDeployment(
                    tier,
                    n_fronts=fronts,
                    front_options={
                        "window_seconds": window_seconds,
                        "max_batch": max_batch,
                        "auth_tokens": {bench_token: ("read", "write")},
                        "write_timeout_seconds": 600.0,
                    },
                )
                http_errors: list[BaseException] = []

                def http_reader_loop(index, chunk, sink) -> None:
                    client = ServingClient(
                        deployment.address,
                        token=bench_token,
                        client_id=f"reader-{index}",
                        timeout=120.0,
                    )
                    try:
                        local: list[float] = []
                        for vector in chunk:
                            t0 = time.perf_counter()
                            client.topk(vector, k)
                            local.append(time.perf_counter() - t0)
                        sink.extend(local)
                    except BaseException as error:
                        http_errors.append(error)

                def run_http_phase(write_deltas=None):
                    latencies: list[float] = []
                    chunks = np.array_split(queries, readers)
                    threads = [
                        threading.Thread(
                            target=http_reader_loop,
                            args=(index, chunk, latencies),
                        )
                        for index, chunk in enumerate(chunks)
                    ]
                    acked: list[tuple[str, int]] = []
                    violations = 0
                    started = time.perf_counter()
                    for thread in threads:
                        thread.start()
                    if write_deltas:
                        writer = ServingClient(
                            deployment.address,
                            token=bench_token,
                            client_id="writer",
                            timeout=630.0,
                        )
                        for index, delta in enumerate(write_deltas):
                            sid = f"bench-http-{index}"
                            version = writer.submit(
                                delta, submission_id=sid
                            )
                            acked.append((sid, version))
                            # the client floors this read at the ack it
                            # just received: read-your-writes over HTTP,
                            # through whichever front the balancer picks
                            answered = writer.topk(probe_query, k)
                            if int(answered["version"]) < version:
                                violations += 1
                            time.sleep(delta_interval_seconds)
                    for thread in threads:
                        thread.join()
                    wall = time.perf_counter() - started
                    if http_errors:
                        raise http_errors[0]
                    return wall, latencies, acked, violations

                with deployment:
                    http_steady_wall, http_steady_latencies, _, _ = (
                        run_http_phase()
                    )
                    http_deltas = []
                    for _ in range(max(1, min(4, n_deltas))):
                        delta = synthesize_tmdb_delta(
                            scratch, stream_rng, movies_per_delta
                        )
                        delta.apply_to(scratch)
                        http_deltas.append(delta)
                        repl_deltas.append(delta)
                    (
                        http_churn_wall,
                        http_churn_latencies,
                        http_acked,
                        http_ryw_violations,
                    ) = run_http_phase(write_deltas=http_deltas)
                    # a duplicated POST (same submission id, fresh
                    # connection) must ack the original version without
                    # growing the log: the queue's dedup window holds
                    # across fronts because all writes funnel to the one
                    # primary queue
                    log_before = tier.stats.log_version
                    dup_client = ServingClient(
                        deployment.address,
                        token=bench_token,
                        client_id="dup-writer",
                        timeout=630.0,
                    )
                    dup_sid, dup_version = http_acked[-1]
                    dup_ack = dup_client.submit(
                        http_deltas[-1], submission_id=dup_sid
                    )
                    dedup_applied_once = (
                        dup_ack == dup_version
                        and tier.stats.log_version == log_before
                    )
                    if not dedup_applied_once:
                        raise ExperimentError(
                            "duplicated POST was not idempotent: original "
                            f"ack {dup_version}, duplicate ack {dup_ack}, "
                            f"log {log_before} -> {tier.stats.log_version}"
                        )
                    deployment_stats = deployment.stats()
                http_steady_qps = (
                    total_queries / http_steady_wall
                    if http_steady_wall > 0
                    else 0.0
                )
                http_churn_qps = (
                    total_queries / http_churn_wall
                    if http_churn_wall > 0
                    else 0.0
                )
                http_steady_p50, http_steady_p99 = _percentiles(
                    http_steady_latencies
                )
                http_churn_p50, http_churn_p99 = _percentiles(
                    http_churn_latencies
                )
                http_metrics = {
                    "n_fronts": fronts,
                    "steady": {
                        "wall_seconds": http_steady_wall,
                        "qps": http_steady_qps,
                        "p50_seconds": http_steady_p50,
                        "p99_seconds": http_steady_p99,
                        "queries_answered": len(http_steady_latencies),
                    },
                    "churn": {
                        "wall_seconds": http_churn_wall,
                        "qps": http_churn_qps,
                        "p50_seconds": http_churn_p50,
                        "p99_seconds": http_churn_p99,
                        "queries_answered": len(http_churn_latencies),
                    },
                    "writes_over_http": len(http_acked),
                    "acked_versions": [version for _, version in http_acked],
                    "read_your_writes_violations": http_ryw_violations,
                    "duplicate_post_applied_once": dedup_applied_once,
                    "per_front_requests": [
                        (entry["front"] or {}).get("requests")
                        for entry in deployment_stats["fronts"]
                    ],
                    "per_front_submits": [
                        (entry["front"] or {}).get("submits")
                        for entry in deployment_stats["fronts"]
                    ],
                    "balancer_connections": (
                        deployment_stats["balancer"]["connections"]
                    ),
                    "totals": deployment_stats["totals"],
                }

            repl_lag_stream = [
                t.lag_seconds
                for t in repl_tickets
                if t.lag_seconds is not None
            ]
            repl_version, repl_follower_matrix = tier.replica_matrix()
            repl_stats = tier.stats
        repl_final_set, _, repl_store_version = (
            repl_store.load_embedding_set_versioned("serve")
        )
        repl_dir.cleanup()
        repl_steady_qps = (
            total_queries / repl_steady_wall if repl_steady_wall > 0 else 0.0
        )
        repl_churn_qps = (
            total_queries / repl_churn_wall if repl_churn_wall > 0 else 0.0
        )
        repl_steady_p50, repl_steady_p99 = _percentiles(repl_steady_latencies)
        repl_churn_p50, repl_churn_p99 = _percentiles(repl_churn_latencies)
        replicated_metrics = {
            "n_replicas": replicas,
            "steady": {
                "wall_seconds": repl_steady_wall,
                "qps": repl_steady_qps,
                "p50_seconds": repl_steady_p50,
                "p99_seconds": repl_steady_p99,
                "queries_answered": len(repl_steady_latencies),
            },
            "churn": {
                "wall_seconds": repl_churn_wall,
                "qps": repl_churn_qps,
                "p50_seconds": repl_churn_p50,
                "p99_seconds": repl_churn_p99,
                "queries_answered": len(repl_churn_latencies),
            },
            "log_version": repl_stats.log_version,
            "store_version": repl_store_version,
            "follower_version": repl_version,
            "follower_matches_log_replay": bool(
                np.array_equal(repl_follower_matrix, repl_final_set.matrix)
            ),
            "writes_applied": repl_stats.writes_applied,
            "degraded_queries": repl_stats.degraded_queries,
            "follower_respawns": repl_stats.follower_respawns,
            "update_lag_seconds": repl_lag_stream,
            "mean_update_lag_seconds": (
                float(np.mean(repl_lag_stream)) if repl_lag_stream else None
            ),
            "replication_lag_seconds": replication_lags,
            "mean_replication_lag_seconds": float(np.mean(replication_lags)),
            "read_your_writes_latency_seconds": ryw_latencies,
            "read_your_writes_violations": ryw_violations,
            "failovers": repl_stats.failovers,
            "failover_seconds": repl_stats.last_failover_seconds,
            "failover_write_outage_seconds": write_outage,
        }

    base_p50, base_p99 = _percentiles(baseline_latencies)
    steady_p50, steady_p99 = _percentiles(steady_latencies)
    churn_p50, churn_p99 = _percentiles(churn_latencies)
    speedup = steady_qps / baseline_qps if baseline_qps > 0 else 0.0
    lags = [t.lag_seconds for t in tickets if t.lag_seconds is not None]

    table = ResultTable(
        name=(
            f"concurrent serving ({method}, {len(runtime.embeddings)} values, "
            f"{readers} readers × {queries_per_reader} queries, "
            f"{len(deltas)} deltas)"
        ),
        columns=["mode", "queries", "wall_s", "qps", "p50_ms", "p99_ms"],
    )
    table.add_row(
        mode="single-thread",
        queries=total_queries,
        wall_s=baseline_wall,
        qps=baseline_qps,
        p50_ms=base_p50 * 1000.0,
        p99_ms=base_p99 * 1000.0,
    )
    table.add_row(
        mode="concurrent",
        queries=total_queries,
        wall_s=steady_wall,
        qps=steady_qps,
        p50_ms=steady_p50 * 1000.0,
        p99_ms=steady_p99 * 1000.0,
    )
    table.add_row(
        mode="conc.+churn",
        queries=total_queries,
        wall_s=churn_wall,
        qps=churn_qps,
        p50_ms=churn_p50 * 1000.0,
        p99_ms=churn_p99 * 1000.0,
    )
    if sharded_metrics is not None:
        table.add_row(
            mode=f"sharded({shards})",
            queries=total_queries,
            wall_s=sharded_metrics["steady"]["wall_seconds"],
            qps=sharded_metrics["steady"]["qps"],
            p50_ms=sharded_metrics["steady"]["p50_seconds"] * 1000.0,
            p99_ms=sharded_metrics["steady"]["p99_seconds"] * 1000.0,
        )
        table.add_row(
            mode="sharded+churn",
            queries=total_queries,
            wall_s=sharded_metrics["churn"]["wall_seconds"],
            qps=sharded_metrics["churn"]["qps"],
            p50_ms=sharded_metrics["churn"]["p50_seconds"] * 1000.0,
            p99_ms=sharded_metrics["churn"]["p99_seconds"] * 1000.0,
        )
    if replicated_metrics is not None:
        table.add_row(
            mode=f"replicated({replicas})",
            queries=total_queries,
            wall_s=replicated_metrics["steady"]["wall_seconds"],
            qps=replicated_metrics["steady"]["qps"],
            p50_ms=replicated_metrics["steady"]["p50_seconds"] * 1000.0,
            p99_ms=replicated_metrics["steady"]["p99_seconds"] * 1000.0,
        )
        table.add_row(
            mode="repl.+churn",
            queries=total_queries,
            wall_s=replicated_metrics["churn"]["wall_seconds"],
            qps=replicated_metrics["churn"]["qps"],
            p50_ms=replicated_metrics["churn"]["p50_seconds"] * 1000.0,
            p99_ms=replicated_metrics["churn"]["p99_seconds"] * 1000.0,
        )
    if http_metrics is not None:
        table.add_row(
            mode=f"http({http_metrics['n_fronts']})",
            queries=total_queries,
            wall_s=http_metrics["steady"]["wall_seconds"],
            qps=http_metrics["steady"]["qps"],
            p50_ms=http_metrics["steady"]["p50_seconds"] * 1000.0,
            p99_ms=http_metrics["steady"]["p99_seconds"] * 1000.0,
        )
        table.add_row(
            mode="http+churn",
            queries=total_queries,
            wall_s=http_metrics["churn"]["wall_seconds"],
            qps=http_metrics["churn"]["qps"],
            p50_ms=http_metrics["churn"]["p50_seconds"] * 1000.0,
            p99_ms=http_metrics["churn"]["p99_seconds"] * 1000.0,
        )
    table.add_note(
        f"steady concurrent throughput {speedup:.1f}x the single-threaded "
        f"loop; mean batched {steady_front_stats.mean_batch_size:.1f} "
        f"queries/index call (largest {steady_front_stats.largest_batch})"
    )
    if sharded_metrics is not None:
        table.add_note(
            f"sharded({shards}) churn at "
            f"{sharded_metrics['churn_vs_steady']:.0%} of its steady rate, "
            f"{sharded_metrics['churn_vs_single_process_churn']:.2f}x the "
            f"single-process churn throughput "
            f"({sharded_metrics['writes_applied']} write batches applied "
            f"out-of-process)"
        )
    if lags:
        table.add_note(
            f"update lag mean {float(np.mean(lags)) * 1000.0:.1f} ms over "
            f"{len(lags)} deltas ({runtime_stats.deltas_coalesced} coalesced)"
        )
    if replicated_metrics is not None:
        mean_repl_lag = replicated_metrics["mean_replication_lag_seconds"]
        mean_ryw = float(
            np.mean(replicated_metrics["read_your_writes_latency_seconds"])
        )
        table.add_note(
            f"replication lag (publish→every-follower-visible) mean "
            f"{mean_repl_lag * 1000.0:.1f} ms; read-your-writes reads mean "
            f"{mean_ryw * 1000.0:.1f} ms with "
            f"{replicated_metrics['read_your_writes_violations']} stale "
            f"answers"
        )
        failover_s = replicated_metrics["failover_seconds"]
        table.add_note(
            f"primary SIGKILL: failover (detect→promote) "
            f"{failover_s:.3f} s, write outage (kill→next ack) "
            f"{replicated_metrics['failover_write_outage_seconds']:.3f} s, "
            f"{replicated_metrics['failovers']} failover(s); follower "
            f"matches the store's log replay exactly: "
            f"{replicated_metrics['follower_matches_log_replay']}"
        )
    if http_metrics is not None:
        table.add_note(
            f"{http_metrics['n_fronts']} HTTP fronts over one replica "
            f"pool: {http_metrics['writes_over_http']} deltas written over "
            f"POST /v1/submit with "
            f"{http_metrics['read_your_writes_violations']} read-your-"
            f"writes violations; duplicated POST applied exactly once: "
            f"{http_metrics['duplicate_post_applied_once']}; requests per "
            f"front {http_metrics['per_front_requests']}"
        )

    payload: dict[str, Any] = {
        "method": method,
        "n_values": len(runtime.embeddings),
        "corpus_scale": corpus_scale,
        "num_movies": sizes.num_movies,
        "readers": readers,
        "queries_per_reader": queries_per_reader,
        "pipeline_depth": pipeline_depth,
        "k": k,
        "n_deltas": len(deltas),
        "movies_per_delta": movies_per_delta,
        "churn": churn,
        "window_seconds": window_seconds,
        "max_batch": max_batch,
        "setup_seconds": setup_seconds,
        "settle_iterations": settle_report.iterations,
        "baseline": {
            "wall_seconds": baseline_wall,
            "qps": baseline_qps,
            "p50_seconds": base_p50,
            "p99_seconds": base_p99,
        },
        "concurrent": {
            "wall_seconds": steady_wall,
            "qps": steady_qps,
            "p50_seconds": steady_p50,
            "p99_seconds": steady_p99,
            "queries_answered": len(steady_latencies),
            "batches_dispatched": steady_front_stats.batches_dispatched,
            "mean_batch_size": steady_front_stats.mean_batch_size,
            "largest_batch": steady_front_stats.largest_batch,
        },
        "concurrent_under_churn": {
            "wall_seconds": churn_wall,
            "qps": churn_qps,
            "p50_seconds": churn_p50,
            "p99_seconds": churn_p99,
            "queries_answered": len(churn_latencies),
            "batches_total": front_stats.batches_dispatched,
        },
        "updates": {
            "published": runtime_stats.updates_published,
            "failures": runtime_stats.update_failures,
            "coalesced": runtime_stats.deltas_coalesced,
            "snapshots_reclaimed": runtime_stats.snapshots_reclaimed,
            "lag_seconds": lags,
            "mean_lag_seconds": float(np.mean(lags)) if lags else None,
        },
        "speedup_vs_single_thread": speedup,
    }
    if sharded_metrics is not None:
        payload["sharded"] = sharded_metrics
    if replicated_metrics is not None:
        payload["replicated"] = replicated_metrics
    if http_metrics is not None:
        payload["http"] = http_metrics

    # ---- agreement: the serial incremental path over the same stream --- #
    if measure_agreement:
        serial_database = make_tmdb(sizes).database
        serial_retrofitter = IncrementalRetrofitter(
            embeddings,
            tokenizer,
            hyperparams=hyperparams,
            method=solver_method,
            base_matrix=base_matrix,
        )
        for delta in deltas:
            serial_retrofitter.apply(
                serial_database, delta, iterations=SOLVE_ITERATIONS
            )
        worst = max_cosine_distance(
            serial_retrofitter.embeddings, runtime.embeddings
        )
        payload["max_cosine_distance_vs_serial"] = worst
        table.add_note(
            f"max cosine distance to the serial incremental path: {worst:.2e}"
        )
        if sharded_final is not None:
            sharded_worst = max_cosine_distance(
                serial_retrofitter.embeddings, sharded_final
            )
            payload["sharded"]["max_cosine_distance_vs_serial"] = sharded_worst
            table.add_note(
                "sharded tier max cosine distance to the serial path: "
                f"{sharded_worst:.2e}"
            )
        if repl_follower_matrix is not None and repl_final_set is not None:
            # the replicated stream is longer (lag probes, the failover
            # write and any HTTP-acked deltas), so it gets its own serial
            # replay of the identical sequence; the follower's replayed
            # matrix is the compared side
            repl_serial_database = make_tmdb(sizes).database
            repl_serial = IncrementalRetrofitter(
                embeddings,
                tokenizer,
                hyperparams=hyperparams,
                method=solver_method,
                base_matrix=base_matrix,
            )
            for delta in [*deltas, *repl_deltas]:
                repl_serial.apply(
                    repl_serial_database, delta, iterations=SOLVE_ITERATIONS
                )
            follower_set = type(repl_final_set)(
                repl_final_set.extraction, repl_follower_matrix,
                name="follower",
            )
            repl_worst = max_cosine_distance(
                repl_serial.embeddings, follower_set
            )
            payload["replicated"]["max_cosine_distance_vs_serial"] = repl_worst
            table.add_note(
                "replicated follower max cosine distance to the serial "
                f"path: {repl_worst:.2e}"
            )
    return table, payload
