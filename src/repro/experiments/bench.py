"""The perf-tracking harness behind ``python -m repro bench``.

One invocation runs the hot-path microbenchmarks — batched walk
generation, one SGNS epoch (fast and naive reference), the RO/RN solvers,
batched index top-k — plus a quick-size end-to-end ``table2``, and writes
everything into a single ``BENCH_<rev>.json``: timings, throughput and the
fast-vs-naive speedup.  The file is machine-diffable across PRs, so the
runtime trajectory of the reproduction is tracked instead of anecdotal.

``compare_against_baseline`` implements the CI regression gate: any
microbenchmark slower than ``threshold`` times its committed baseline
fails the run.
"""

from __future__ import annotations

import inspect
import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentSizes

#: Benchmark schema version (bump when keys change meaning).
BENCH_VERSION = 1


def current_revision(default: str = "worktree") -> str:
    """The short git revision of the working tree, or ``default``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or default
    except (OSError, subprocess.SubprocessError):
        return default


def _time_best(func: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    """Best-of-``repeats`` wall-clock seconds of ``func`` plus its result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def _bench_graph(sizes: ExperimentSizes):
    """The (extraction, graph, deepwalk config) triple all graph benches share."""
    from repro.experiments.common import default_deepwalk_config, make_tmdb
    from repro.graph.builder import build_graph
    from repro.retrofit.extraction import extract_text_values

    dataset = make_tmdb(sizes)
    extraction = extract_text_values(dataset.database)
    graph = build_graph(extraction)
    return extraction, graph, default_deepwalk_config(sizes)


def bench_walk_generation(sizes: ExperimentSizes, repeats: int = 3) -> dict[str, Any]:
    """Batched random-walk matrix generation on the TMDB graph."""
    from repro.graph.random_walk import RandomWalkGenerator

    _, graph, config = _bench_graph(sizes)
    generator = RandomWalkGenerator(
        graph,
        walk_length=config.walk_length,
        walks_per_node=config.walks_per_node,
        seed=config.seed,
    )
    seconds, corpus = _time_best(generator.walk_corpus, repeats)
    tokens = int(corpus.lengths().sum())
    return {
        "seconds": seconds,
        "n_walks": corpus.n_walks,
        "n_tokens": tokens,
        "walks_per_second": corpus.n_walks / seconds if seconds > 0 else None,
        "tokens_per_second": tokens / seconds if seconds > 0 else None,
    }


def bench_sgns_epoch(
    sizes: ExperimentSizes, repeats: int = 3, include_naive: bool = True
) -> dict[str, Any]:
    """One SGNS training epoch over the TMDB walk corpus, fast vs naive."""
    from repro.deepwalk.skipgram import SkipGramConfig, SkipGramModel
    from repro.graph.random_walk import RandomWalkGenerator

    _, graph, config = _bench_graph(sizes)
    corpus = RandomWalkGenerator(
        graph,
        walk_length=config.walk_length,
        walks_per_node=config.walks_per_node,
        seed=config.seed,
    ).walk_corpus()
    sgns_config = SkipGramConfig(
        dimension=config.dimension,
        window=config.window,
        negative_samples=config.negative_samples,
        epochs=1,
        learning_rate=config.learning_rate,
        seed=config.seed,
    )

    def fast_epoch():
        return SkipGramModel.from_corpus(corpus, sgns_config).train()

    seconds, model = _time_best(fast_epoch, repeats)
    n_tokens = int(corpus.lengths().sum())
    result: dict[str, Any] = {
        "seconds": seconds,
        "n_tokens": n_tokens,
        "tokens_per_second": n_tokens / seconds if seconds > 0 else None,
        "final_loss": model.loss_history[-1] if model.loss_history else None,
    }
    if include_naive:
        naive_seconds, naive_model = _time_best(
            lambda: SkipGramModel.from_corpus(corpus, sgns_config).train_naive(), 1
        )
        result["naive_seconds"] = naive_seconds
        result["naive_final_loss"] = (
            naive_model.loss_history[-1] if naive_model.loss_history else None
        )
        result["speedup_vs_naive"] = (
            naive_seconds / seconds if seconds > 0 else None
        )
    return result


def bench_retro_solvers(sizes: ExperimentSizes, repeats: int = 3) -> dict[str, Any]:
    """The RO (optimisation) and RN (series) relational-retrofitting solves."""
    from repro.experiments.common import make_tmdb
    from repro.retrofit.extraction import extract_text_values
    from repro.retrofit.hyperparams import RetroHyperparameters
    from repro.retrofit.initialization import initialise_vectors
    from repro.retrofit.retro import RetroSolver
    from repro.text.tokenizer import Tokenizer

    dataset = make_tmdb(sizes)
    extraction = extract_text_values(dataset.database)
    base = initialise_vectors(extraction, dataset.embedding, Tokenizer(dataset.embedding))
    ro_seconds, _ = _time_best(
        lambda: RetroSolver(
            extraction, base.matrix, RetroHyperparameters.paper_ro_default()
        ).solve_optimization(iterations=10),
        repeats,
    )
    rn_seconds, _ = _time_best(
        lambda: RetroSolver(
            extraction, base.matrix, RetroHyperparameters.paper_rn_default()
        ).solve_series(iterations=5),
        repeats,
    )
    return {
        "ro_solve": {"seconds": ro_seconds, "iterations": 10},
        "rn_solve": {"seconds": rn_seconds, "iterations": 5},
        "n_values": len(extraction),
    }


def bench_index_topk(
    sizes: ExperimentSizes,
    repeats: int = 3,
    n_rows: int = 8192,
    n_queries: int = 256,
    k: int = 10,
) -> dict[str, Any]:
    """Batched top-k latency of every serving index family."""
    from repro.serving.index import FlatIndex, IVFIndex
    from repro.serving.nsw import NSWIndex
    from repro.serving.pq import PQIndex

    rng = np.random.default_rng(sizes.seed)
    matrix = rng.standard_normal((n_rows, sizes.embedding_dimension))
    queries = rng.standard_normal((n_queries, sizes.embedding_dimension))
    indexes = {
        "flat": FlatIndex(matrix),
        "ivf": IVFIndex(matrix, nprobe=8, seed=sizes.seed),
        "pq": PQIndex(matrix, rerank=32, seed=sizes.seed),
        # light construction: this micro tracks query latency, the Pareto
        # harness (bench-index) owns build-cost/recall trade-offs
        "nsw": NSWIndex(matrix, max_degree=8, ef_construction=24, ef_search=48),
    }
    payload: dict[str, Any] = {
        "n_rows": n_rows,
        "n_queries": n_queries,
        "k": k,
    }
    for name, index in indexes.items():
        seconds, _ = _time_best(lambda: index.query_batch(queries, k), repeats)
        payload[name] = {
            "seconds": seconds,
            "queries_per_second": n_queries / seconds if seconds > 0 else None,
        }
    return payload


def bench_incremental_update(sizes: ExperimentSizes, repeats: int = 3) -> dict[str, Any]:
    """End-to-end incremental-update latency (delta pipeline vs cold rebuild).

    ``seconds`` is the mean per-delta latency of the incremental path —
    that is what the regression gate tracks; the cold-rebuild reference
    is reported as ``cold_rebuild_seconds`` (a different key on purpose,
    so the gate never fails on the comparison baseline's noise).
    """
    from repro.experiments.update_bench import run_update_benchmark

    # churn=True exercises the full pipeline (inserts + a text-value
    # update + a delete per delta) and keeps the timing above the gate's
    # jitter floor at tiny sizes
    _, payload = run_update_benchmark(
        sizes=sizes, method="RN", n_deltas=max(2, repeats), churn=True
    )
    return {
        "seconds": payload["seconds"],
        "cold_rebuild_seconds": payload["cold_rebuild_seconds"],
        "speedup_vs_cold": payload["speedup_vs_cold"],
        "n_values": payload["n_values"],
        "movies_per_delta": payload["movies_per_delta"],
        "max_cosine_distance_vs_cold": payload.get("max_cosine_distance_vs_cold"),
    }


def bench_table2_end_to_end(sizes: ExperimentSizes) -> dict[str, Any]:
    """A fresh end-to-end ``table2`` run (suite training included)."""
    from repro.experiments.engine import run_experiment

    started = time.perf_counter()
    result = run_experiment("table2", sizes=sizes)
    seconds = time.perf_counter() - started
    methods: dict[str, float] = {}
    for row in result.table.rows:
        methods[f"{row['dataset']}/{row['method']}"] = float(row["runtime_mean"])
    return {"seconds": seconds, "method_runtimes": methods}


#: The microbenchmark suite: name -> callable(sizes, repeats) -> payload.
MICROBENCHMARKS: dict[str, Callable[[ExperimentSizes, int], dict[str, Any]]] = {
    "walk_generation": bench_walk_generation,
    "sgns_epoch": bench_sgns_epoch,
    "retro_solvers": bench_retro_solvers,
    "index_topk": bench_index_topk,
    "incremental_update": bench_incremental_update,
}


def run_bench(
    sizes_name: str = "quick",
    repeats: int = 3,
    include_naive: bool = True,
    include_end_to_end: bool = True,
    rev: str | None = None,
) -> dict[str, Any]:
    """Run the full perf harness and return the ``BENCH_*.json`` payload."""
    sizes = ExperimentSizes.preset(sizes_name)
    payload: dict[str, Any] = {
        "bench_version": BENCH_VERSION,
        "rev": rev or current_revision(),
        "sizes": sizes_name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": {},
    }
    for name, runner in MICROBENCHMARKS.items():
        # pass options by capability, not by benchmark name
        accepted = inspect.signature(runner).parameters
        options = {"include_naive": include_naive} if "include_naive" in accepted else {}
        payload["benchmarks"][name] = runner(sizes, repeats, **options)
    if include_end_to_end:
        payload["benchmarks"]["table2_end_to_end"] = bench_table2_end_to_end(sizes)
    return payload


def _collect_seconds(payload: dict[str, Any]) -> dict[str, float]:
    """Flatten every ``seconds`` timing of a bench payload to dotted keys."""
    timings: dict[str, float] = {}

    def walk(prefix: str, node: Any) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                path = f"{prefix}.{key}" if prefix else key
                if key == "seconds" and isinstance(value, (int, float)):
                    timings[prefix] = float(value)
                else:
                    walk(path, value)

    walk("", payload.get("benchmarks", {}))
    return timings


#: Baseline timings under this many seconds are tracked but not gated:
#: at millisecond scale, scheduler jitter between the baseline machine
#: and a shared CI runner dwarfs any real regression.
GATE_MIN_BASELINE_SECONDS = 0.02


def compare_against_baseline(
    payload: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = 3.0,
    min_seconds: float = GATE_MIN_BASELINE_SECONDS,
) -> list[str]:
    """Regressions of ``payload`` versus ``baseline`` (empty list = pass).

    A microbenchmark regresses when its ``seconds`` exceeds ``threshold``
    times the baseline's.  The end-to-end timing is excluded — it is
    tracked, not gated, because it includes dataset generation noise —
    and so are baselines below ``min_seconds``, where machine jitter
    outweighs real regressions.
    """
    current = _collect_seconds(payload)
    reference = _collect_seconds(baseline)
    regressions: list[str] = []
    for key, base_seconds in sorted(reference.items()):
        if key.startswith("table2_end_to_end") or "naive" in key:
            continue
        now = current.get(key)
        if now is None or base_seconds < min_seconds:
            continue
        if now > threshold * base_seconds:
            regressions.append(
                f"{key}: {now:.4f}s vs baseline {base_seconds:.4f}s "
                f"(> {threshold:.1f}x)"
            )
    return regressions


def save_bench(payload: dict[str, Any], out: str | Path | None = None) -> Path:
    """Write the payload as ``BENCH_<rev>.json``.

    ``out`` may be a ``.json`` file path or a directory (anything else);
    in a directory the file is named ``BENCH_<rev>.json``.
    """
    if out is None:
        out = Path(f"BENCH_{payload['rev']}.json")
    out = Path(out)
    if out.suffix != ".json":
        out = out / f"BENCH_{payload['rev']}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return out


def load_bench(path: str | Path) -> dict[str, Any]:
    """Read a ``BENCH_*.json`` payload, validating the schema marker."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(f"unreadable bench file {path}: {error}") from error
    if not isinstance(payload, dict) or "benchmarks" not in payload:
        raise ExperimentError(f"{path} is not a BENCH_*.json payload")
    return payload
