"""Figure 3: influence of the hyperparameters on a 2-d toy problem.

The paper retrofits two-dimensional embeddings for three movies and two
countries and shows how the learned positions move as α, β, γ and δ are
varied.  This experiment reproduces the four panels and reports the learned
coordinates (and the distance of each movie to its related country, which
summarises the visual effect numerically).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.datasets.toy import build_toy_movie_database
from repro.experiments.registry import experiment
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.retrofit.extraction import extract_text_values
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.initialization import initialise_vectors
from repro.retrofit.retro import RetroSolver
from repro.text.tokenizer import Tokenizer

PANELS = (
    ("alpha", (1.0, 2.0, 3.0), {"beta": 1.0, "gamma": 2.0, "delta": 1.0}),
    ("beta", (1.0, 2.0, 3.0), {"alpha": 2.0, "gamma": 2.0, "delta": 1.0}),
    ("gamma", (1.0, 2.0, 3.0), {"alpha": 2.0, "beta": 1.0, "delta": 1.0}),
    ("delta", (0.0, 1.0, 2.0), {"alpha": 2.0, "beta": 1.0, "gamma": 3.0}),
)


@experiment(
    name="figure3",
    title="Toy hyperparameter sweeps (2-d embeddings)",
    reference="Figure 3",
    datasets=("toy",),
    methods=("RO",),
    description="Four α/β/γ/δ sweeps on the 5-value toy movie database.",
    iterations=20,
)
def run_figure3(ctx, iterations: int = 20) -> ResultTable:
    """Run the four hyperparameter sweeps of Figure 3.

    The toy example has a fixed size; ``ctx.sizes`` is intentionally unused.
    """
    toy = build_toy_movie_database()
    extraction = extract_text_values(toy.database)
    tokenizer = Tokenizer(toy.embedding)
    base = initialise_vectors(extraction, toy.embedding, tokenizer)

    table = ResultTable(
        name="Figure 3: toy hyperparameter sweeps (2-d embeddings)",
        columns=[
            "panel", "value", "text_value", "x", "y",
            "distance_to_original", "distance_to_related_country",
        ],
    )
    country_of = {
        "amelie": "france", "inception": "usa", "godfather": "usa",
    }
    for panel, values, fixed in PANELS:
        for value in values:
            params = dict(fixed)
            params[panel] = value
            solver = RetroSolver(
                extraction, base.matrix, RetroHyperparameters(**params)
            )
            matrix, _ = solver.solve_optimization(iterations=iterations)
            for record in extraction.records:
                vector = matrix[record.index]
                original = base.matrix[record.index]
                related_distance = np.nan
                if record.text in country_of:
                    country = country_of[record.text]
                    country_index = extraction.index_of("countries.name", country)
                    related_distance = float(
                        np.linalg.norm(vector - matrix[country_index])
                    )
                table.add_row(
                    panel=panel,
                    value=value,
                    text_value=record.text,
                    x=float(vector[0]),
                    y=float(vector[1]),
                    distance_to_original=float(np.linalg.norm(vector - original)),
                    distance_to_related_country=related_distance,
                )
    table.add_note(
        "expected: larger alpha keeps vectors near their originals, larger "
        "gamma pulls movies towards their production country, delta=0 lets "
        "all vectors collapse towards each other"
    )
    return table


def run(sizes: ExperimentSizes | None = None, iterations: int = 20) -> ResultTable:
    """Deprecated shim: delegates to the experiment engine (``figure3``)."""
    warnings.warn(
        "figure3_toy_hyperparams.run() is deprecated; use "
        "repro.experiments.engine.run_experiment('figure3') or `repro run figure3`",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments.engine import run_experiment

    return run_experiment(
        "figure3", sizes=sizes, options={"iterations": iterations}
    ).table


def main() -> None:  # pragma: no cover - console entry point
    from repro.experiments.engine import run_experiment

    print(run_experiment("figure3").table.to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
