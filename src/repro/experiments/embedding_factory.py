"""Train all embedding variants compared in the paper for one database.

The factory produces the embedding types used throughout the evaluation:

* ``PV`` — plain word vectors (tokenised centroids, no retrofitting),
* ``MF`` — Faruqui et al. retrofitting (the baseline of §4.1),
* ``RO`` — relational retrofitting, optimisation-based solver (Eq. 10),
* ``RN`` — relational retrofitting, series-based solver (Eq. 11),
* ``DW`` — DeepWalk node embeddings on the database graph,
* ``X+DW`` — concatenations of a text-based embedding with DeepWalk.

Wall-clock training times per method are recorded, which is exactly what
Table 2 reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.db.database import Database
from repro.deepwalk.deepwalk import DeepWalk, DeepWalkConfig
from repro.errors import ExperimentError
from repro.graph.builder import build_graph
from repro.retrofit.combine import TextValueEmbeddingSet
from repro.retrofit.extraction import ExtractionResult, extract_text_values
from repro.retrofit.faruqui import edges_from_extraction, faruqui_retrofit
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.initialization import InitialisedMatrix, initialise_vectors
from repro.retrofit.retro import RetroSolver
from repro.text.embedding import WordEmbedding
from repro.text.tokenizer import Tokenizer

TEXT_METHODS = ("PV", "MF", "RO", "RN")
ALL_METHODS = TEXT_METHODS + ("DW",)


@dataclass
class EmbeddingSuite:
    """All trained embedding variants for one database."""

    extraction: ExtractionResult
    base: InitialisedMatrix
    sets: dict[str, TextValueEmbeddingSet] = field(default_factory=dict)
    runtimes: dict[str, float] = field(default_factory=dict)
    preprocessing_seconds: float = 0.0

    def get(self, name: str) -> TextValueEmbeddingSet:
        """The embedding set named ``name`` (e.g. ``"RN+DW"``)."""
        if name not in self.sets:
            raise ExperimentError(
                f"embedding type {name!r} not trained; available: {sorted(self.sets)}"
            )
        return self.sets[name]

    @property
    def names(self) -> list[str]:
        """All trained embedding type names."""
        return list(self.sets)

    def index_for(self, name: str, category: str | None = None):
        """A cached :class:`repro.serving.FlatIndex` over one trained set.

        Evaluation tasks issue thousands of similarity lookups against the
        same matrices; routing them through the per-suite index cache turns
        every lookup into an ``argpartition`` top-k instead of a fresh scan
        plus full sort.
        """
        return self.get(name).index_for(category)

    def serving_session(self, name: str, cache_size: int = 1024):
        """A :class:`repro.serving.ServingSession` over one trained set."""
        from repro.serving.session import ServingSession

        return ServingSession(self.get(name), cache_size=cache_size)

    def save(self, path, names: tuple[str, ...] | None = None) -> list[str]:
        """Persist trained sets into an :class:`repro.serving.EmbeddingStore`.

        Each set becomes one artifact named exactly after its embedding
        type (``RN``, ``PV+DW``, ...); returns the artifact names written.
        """
        from repro.serving.store import EmbeddingStore

        store = EmbeddingStore(path)
        saved = []
        for name in names if names is not None else tuple(self.sets):
            store.save_embedding_set(name, self.get(name))
            saved.append(name)
        return saved


def build_embedding_suite(
    database: Database,
    embedding: WordEmbedding,
    methods: tuple[str, ...] = ALL_METHODS,
    include_combinations: bool = True,
    ro_params: RetroHyperparameters | None = None,
    rn_params: RetroHyperparameters | None = None,
    ro_iterations: int = 20,
    rn_iterations: int = 10,
    mf_iterations: int = 20,
    exclude_columns: tuple[str, ...] = (),
    exclude_relations: tuple[str, ...] = (),
    deepwalk_config: DeepWalkConfig | None = None,
    tokenizer: Tokenizer | None = None,
) -> EmbeddingSuite:
    """Train the requested embedding variants and collect their runtimes."""
    unknown = set(methods) - set(ALL_METHODS)
    if unknown:
        raise ExperimentError(f"unknown embedding methods: {sorted(unknown)}")
    started = time.perf_counter()
    extraction = extract_text_values(
        database,
        exclude_columns=exclude_columns,
        exclude_relations=exclude_relations,
    )
    tokenizer = tokenizer or Tokenizer(embedding)
    base = initialise_vectors(extraction, embedding, tokenizer)
    preprocessing = time.perf_counter() - started
    suite = EmbeddingSuite(
        extraction=extraction, base=base, preprocessing_seconds=preprocessing
    )

    if "PV" in methods:
        suite.sets["PV"] = TextValueEmbeddingSet(extraction, base.matrix.copy(), "PV")
        suite.runtimes["PV"] = 0.0

    if "MF" in methods:
        start = time.perf_counter()
        edges = edges_from_extraction(extraction)
        matrix, _ = faruqui_retrofit(base.matrix, edges, iterations=mf_iterations)
        suite.runtimes["MF"] = time.perf_counter() - start
        suite.sets["MF"] = TextValueEmbeddingSet(extraction, matrix, "MF")

    if "RO" in methods:
        start = time.perf_counter()
        solver = RetroSolver(
            extraction, base.matrix, ro_params or RetroHyperparameters.paper_ro_default()
        )
        matrix, _ = solver.solve_optimization(iterations=ro_iterations)
        suite.runtimes["RO"] = time.perf_counter() - start
        suite.sets["RO"] = TextValueEmbeddingSet(extraction, matrix, "RO")

    if "RN" in methods:
        start = time.perf_counter()
        solver = RetroSolver(
            extraction, base.matrix, rn_params or RetroHyperparameters.paper_rn_default()
        )
        matrix, _ = solver.solve_series(iterations=rn_iterations)
        suite.runtimes["RN"] = time.perf_counter() - start
        suite.sets["RN"] = TextValueEmbeddingSet(extraction, matrix, "RN")

    if "DW" in methods:
        start = time.perf_counter()
        config = deepwalk_config or DeepWalkConfig(dimension=embedding.dimension)
        deepwalk = DeepWalk(config)
        node_result = deepwalk.train_for_extraction(extraction, build_graph(extraction))
        suite.runtimes["DW"] = time.perf_counter() - start
        suite.sets["DW"] = TextValueEmbeddingSet(extraction, node_result.matrix, "DW")

    if include_combinations and "DW" in suite.sets:
        node_set = suite.sets["DW"]
        for name in TEXT_METHODS:
            if name in suite.sets:
                suite.sets[f"{name}+DW"] = suite.sets[name].concatenated_with(
                    node_set, name=f"{name}+DW"
                )
    return suite
