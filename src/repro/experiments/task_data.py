"""Mapping from dataset ground truth to task inputs (indices, labels, targets).

These helpers translate between the synthetic datasets' ground-truth
dictionaries (keyed by text value) and the extraction indices of a trained
:class:`repro.experiments.embedding_factory.EmbeddingSuite`, so that the
figure experiments only deal with numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.google_play import GooglePlayDataset
from repro.datasets.tmdb import TmdbDataset
from repro.errors import ExperimentError
from repro.retrofit.combine import TextValueEmbeddingSet
from repro.retrofit.extraction import ExtractionResult

DIRECTOR_CATEGORY = "persons.name"
MOVIE_TITLE_CATEGORY = "movies.title"
GENRE_CATEGORY = "genres.name"
APP_NAME_CATEGORY = "apps.name"


@dataclass
class LabelledIndices:
    """Extraction indices together with integer labels (and label names)."""

    indices: np.ndarray
    labels: np.ndarray
    label_names: list[str]

    @property
    def n_classes(self) -> int:
        """Number of distinct classes."""
        return len(self.label_names)

    def __len__(self) -> int:
        return len(self.indices)


def director_classification_data(
    extraction: ExtractionResult, dataset: TmdbDataset
) -> LabelledIndices:
    """Indices and binary labels (1 = US-American) for all known directors."""
    indices: list[int] = []
    labels: list[int] = []
    for name, is_us in dataset.director_is_us().items():
        if extraction.has_value(DIRECTOR_CATEGORY, name):
            indices.append(extraction.index_of(DIRECTOR_CATEGORY, name))
            labels.append(1 if is_us else 0)
    if not indices:
        raise ExperimentError("no directors found in the extraction")
    return LabelledIndices(
        indices=np.array(indices, dtype=np.int64),
        labels=np.array(labels, dtype=np.int64),
        label_names=["non-US", "US"],
    )


def language_imputation_data(
    extraction: ExtractionResult, dataset: TmdbDataset
) -> LabelledIndices:
    """Indices of movie titles with the original language as integer class."""
    languages = sorted({lang for lang in dataset.movie_language.values()})
    lang_index = {language: i for i, language in enumerate(languages)}
    indices: list[int] = []
    labels: list[int] = []
    for title, language in dataset.movie_language.items():
        if extraction.has_value(MOVIE_TITLE_CATEGORY, title):
            indices.append(extraction.index_of(MOVIE_TITLE_CATEGORY, title))
            labels.append(lang_index[language])
    if not indices:
        raise ExperimentError("no movie titles found in the extraction")
    return LabelledIndices(
        indices=np.array(indices, dtype=np.int64),
        labels=np.array(labels, dtype=np.int64),
        label_names=languages,
    )


def budget_regression_data(
    extraction: ExtractionResult, dataset: TmdbDataset
) -> tuple[np.ndarray, np.ndarray]:
    """Indices of movie titles and their budgets (regression targets)."""
    indices: list[int] = []
    targets: list[float] = []
    for title, budget in dataset.movie_budget.items():
        if extraction.has_value(MOVIE_TITLE_CATEGORY, title):
            indices.append(extraction.index_of(MOVIE_TITLE_CATEGORY, title))
            targets.append(float(budget))
    if not indices:
        raise ExperimentError("no movie titles found in the extraction")
    return np.array(indices, dtype=np.int64), np.array(targets, dtype=np.float64)


def app_category_data(
    extraction: ExtractionResult, dataset: GooglePlayDataset
) -> LabelledIndices:
    """Indices of app names with their Play-Store category as integer class."""
    categories = list(dataset.category_names)
    category_index = {category: i for i, category in enumerate(categories)}
    indices: list[int] = []
    labels: list[int] = []
    for name, category in dataset.app_category.items():
        if extraction.has_value(APP_NAME_CATEGORY, name):
            indices.append(extraction.index_of(APP_NAME_CATEGORY, name))
            labels.append(category_index[category])
    if not indices:
        raise ExperimentError("no app names found in the extraction")
    return LabelledIndices(
        indices=np.array(indices, dtype=np.int64),
        labels=np.array(labels, dtype=np.int64),
        label_names=categories,
    )


def knn_impute_labels(
    embeddings: TextValueEmbeddingSet,
    train: LabelledIndices,
    query_indices: np.ndarray,
    k: int = 5,
    index=None,
) -> np.ndarray:
    """Index-served k-nearest-neighbour label imputation.

    Predicts a class for every extraction index in ``query_indices`` by
    majority vote over the ``k`` most similar labelled training vectors.
    The neighbour search runs as one batched top-k query against ``index``
    (any :class:`repro.serving.VectorIndex` over
    ``embeddings.matrix[train.indices]``); a :class:`FlatIndex` is built on
    demand when none is supplied.  Ties break towards the lower class id.
    """
    if len(train) == 0:
        raise ExperimentError("knn imputation needs labelled training indices")
    if k <= 0:
        raise ExperimentError("knn imputation needs k >= 1")
    if index is None:
        from repro.serving.index import FlatIndex

        index = FlatIndex(embeddings.matrix[train.indices], metric="cosine")
    else:
        indexed_rows = getattr(index, "n_rows", None)
        if indexed_rows is not None and indexed_rows != len(train):
            raise ExperimentError(
                f"index holds {indexed_rows} vectors but the training set has "
                f"{len(train)}; build the index over "
                "embeddings.matrix[train.indices]"
            )
    query_indices = np.asarray(query_indices, dtype=np.int64)
    k = min(int(k), len(train))
    neighbour_rows, _ = index.query_batch(embeddings.matrix[query_indices], k)
    valid = neighbour_rows >= 0
    starved = np.nonzero(~valid.any(axis=1))[0]
    if starved.size:
        raise ExperimentError(
            f"index returned no neighbours for query rows {starved.tolist()}; "
            "increase nprobe or use an exhaustive index"
        )
    # one vectorised tally over all queries; argmax breaks ties towards
    # the lower class id
    rows = np.broadcast_to(
        np.arange(len(query_indices))[:, None], neighbour_rows.shape
    )
    votes = np.zeros((len(query_indices), train.n_classes), dtype=np.int64)
    np.add.at(
        votes,
        (rows[valid], train.labels[neighbour_rows[valid]]),
        1,
    )
    return np.argmax(votes, axis=1).astype(np.int64)


@dataclass
class LinkPredictionPairs:
    """Source/target extraction indices and edge labels for link prediction."""

    source_indices: np.ndarray
    target_indices: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return len(self.labels)


def genre_link_pairs(
    extraction: ExtractionResult,
    dataset: TmdbDataset,
    n_pairs: int,
    rng: np.random.Generator,
) -> LinkPredictionPairs:
    """Positive movie→genre pairs plus an equal number of negative samples."""
    genre_lookup: dict[str, int] = {}
    for genre in dataset.genre_names:
        if extraction.has_value(GENRE_CATEGORY, genre):
            genre_lookup[genre] = extraction.index_of(GENRE_CATEGORY, genre)
    if not genre_lookup:
        raise ExperimentError("no genres found in the extraction")

    positives: list[tuple[int, int]] = []
    positive_set: set[tuple[str, str]] = set()
    titles: list[str] = []
    for title, genres in dataset.movie_genres.items():
        if not extraction.has_value(MOVIE_TITLE_CATEGORY, title):
            continue
        titles.append(title)
        title_index = extraction.index_of(MOVIE_TITLE_CATEGORY, title)
        for genre in genres:
            if genre in genre_lookup:
                positives.append((title_index, genre_lookup[genre]))
                positive_set.add((title, genre))
    if not positives:
        raise ExperimentError("no movie-genre pairs found")
    if len(positives) > n_pairs:
        chosen = rng.choice(len(positives), size=n_pairs, replace=False)
        positives = [positives[int(i)] for i in chosen]

    genre_names = list(genre_lookup)
    negatives: list[tuple[int, int]] = []
    attempts = 0
    while len(negatives) < len(positives) and attempts < 50 * len(positives):
        attempts += 1
        title = titles[int(rng.integers(0, len(titles)))]
        genre = genre_names[int(rng.integers(0, len(genre_names)))]
        if (title, genre) in positive_set:
            continue
        negatives.append((
            extraction.index_of(MOVIE_TITLE_CATEGORY, title),
            genre_lookup[genre],
        ))
    pairs = positives + negatives
    labels = np.concatenate((np.ones(len(positives)), np.zeros(len(negatives))))
    order = rng.permutation(len(pairs))
    source = np.array([pairs[i][0] for i in order], dtype=np.int64)
    target = np.array([pairs[i][1] for i in order], dtype=np.int64)
    return LinkPredictionPairs(
        source_indices=source, target_indices=target, labels=labels[order]
    )


def genre_relation_names(database) -> tuple[str, ...]:
    """Names of all schema relationships touching the ``genres.name`` column.

    These are excluded when training embeddings for the link-prediction
    experiment (the paper hides the movie→genre relation during training).
    """
    names = []
    for spec in database.relationships():
        if str(spec.source) == GENRE_CATEGORY or str(spec.target) == GENRE_CATEGORY:
            names.append(spec.name)
    return tuple(names)
