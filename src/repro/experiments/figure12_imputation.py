"""Figure 12: missing-value imputation — original language (a) and app category (b).

Compares the embedding-based imputation (PV, MF, DW, RO, RN and +DW
concatenations) against mode imputation (MODE), the DataWig-style n-gram
imputer (DTWG), which only sees the single denormalised spreadsheet, and an
index-served k-NN baseline (``KNN-<embedding>``) answered by batched top-k
queries against the serving layer.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.baselines.datawig import NGramImputer, denormalise_spreadsheet
from repro.baselines.mode_imputation import ModeImputer
from repro.experiments.common import (
    available_embeddings,
    imputation_trials,
    knn_imputation_trials,
)
from repro.experiments.registry import experiment
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.experiments.task_data import app_category_data, language_imputation_data
from repro.tasks.sampling import TrialStatistics

#: Embedding types additionally evaluated with the serving-side k-NN imputer.
KNN_EMBEDDINGS = ("PV", "RN")


def _baseline_trials(
    rows: list[dict],
    output_column: str,
    input_columns: list[str],
    sizes: ExperimentSizes,
    trials: int,
) -> tuple[TrialStatistics, TrialStatistics]:
    """Mode and DataWig-style baselines on the same random splits."""
    mode_stats = TrialStatistics("MODE")
    datawig_stats = TrialStatistics("DTWG")
    for trial in range(trials):
        rng = np.random.default_rng(sizes.seed + 307 * trial)
        order = rng.permutation(len(rows))
        split = max(2, len(order) // 2)
        train_rows = [rows[i] for i in order[:split]]
        test_rows = [rows[i] for i in order[split:]]
        if not test_rows:
            continue
        mode = ModeImputer().fit([row[output_column] for row in train_rows])
        mode_stats.add(mode.accuracy([row[output_column] for row in test_rows]))
        imputer = NGramImputer(
            input_columns=input_columns,
            output_column=output_column,
            n_features=256,
            hidden_units=(128,),
            epochs=max(60, sizes.epochs),
            seed=sizes.seed + trial,
        )
        imputer.fit(train_rows)
        datawig_stats.add(imputer.accuracy(test_rows))
    return mode_stats, datawig_stats


def _add_stats_row(table: ResultTable, stats: TrialStatistics) -> None:
    table.add_row(
        method=stats.name,
        accuracy_mean=stats.mean,
        accuracy_std=stats.std,
        trials=stats.count,
    )


@experiment(
    name="figure12a",
    title="Imputation of the original language",
    reference="Figure 12a",
    datasets=("tmdb",),
    methods=("PV", "MF", "RO", "RN", "DW"),
    description=(
        "Language imputation vs MODE, DataWig-style and index-served k-NN "
        "baselines; embeddings trained without movies.original_language."
    ),
)
def run_figure12a(ctx) -> ResultTable:
    """Figure 12a: imputation of the movies' original language."""
    sizes = ctx.sizes
    dataset = ctx.tmdb()
    suite = ctx.suite("tmdb", exclude_columns=("movies.original_language",))
    data = language_imputation_data(suite.extraction, dataset)

    table = ResultTable(
        name="Figure 12a: imputation of the original language",
        columns=["method", "accuracy_mean", "accuracy_std", "trials"],
    )
    spreadsheet = denormalise_spreadsheet(dataset.database, "movies")
    mode_stats, datawig_stats = _baseline_trials(
        spreadsheet,
        output_column="original_language",
        input_columns=["title", "overview"],
        sizes=sizes,
        trials=sizes.trials,
    )
    _add_stats_row(table, mode_stats)
    _add_stats_row(table, datawig_stats)
    for name in KNN_EMBEDDINGS:
        if name in suite.sets:
            _add_stats_row(table, knn_imputation_trials(suite, name, data, sizes))
    for name in available_embeddings(suite):
        _add_stats_row(table, imputation_trials(suite, name, data, sizes))
    table.add_note(
        "expected (paper): RO/RN highest, above DataWig; MODE ~ PV decent "
        "because most movies are English; DW competitive and best combined"
    )
    return table


@experiment(
    name="figure12b",
    title="Imputation of app categories",
    reference="Figure 12b",
    datasets=("google_play",),
    methods=("PV", "MF", "RO", "RN", "DW"),
    description=(
        "Play-Store category imputation vs MODE, DataWig-style and "
        "index-served k-NN baselines."
    ),
)
def run_figure12b(ctx) -> ResultTable:
    """Figure 12b: imputation of the Google Play app categories."""
    sizes = ctx.sizes
    dataset = ctx.google_play()
    suite = ctx.suite(
        "google_play", exclude_columns=("categories.name", "genres.name")
    )
    data = app_category_data(suite.extraction, dataset)

    table = ResultTable(
        name="Figure 12b: imputation of app categories",
        columns=["method", "accuracy_mean", "accuracy_std", "trials"],
    )
    spreadsheet = dataset.spreadsheet_rows()
    mode_stats, datawig_stats = _baseline_trials(
        spreadsheet,
        output_column="category",
        input_columns=["name", "pricing", "age_group"],
        sizes=sizes,
        trials=sizes.trials,
    )
    _add_stats_row(table, mode_stats)
    _add_stats_row(table, datawig_stats)
    for name in KNN_EMBEDDINGS:
        if name in suite.sets:
            _add_stats_row(
                table,
                knn_imputation_trials(
                    suite, name, data, sizes, train_fraction=0.6
                ),
            )
    for name in available_embeddings(suite):
        _add_stats_row(
            table, imputation_trials(suite, name, data, sizes, train_fraction=0.6)
        )
    table.add_note(
        "expected (paper): RO/RN highest (they can use the reviews), DataWig "
        "~ PV (app name only), MODE and DW poor, +DW does not help"
    )
    return table


def run_language_imputation(sizes: ExperimentSizes | None = None) -> ResultTable:
    """Deprecated shim: delegates to the experiment engine (``figure12a``)."""
    warnings.warn(
        "figure12_imputation.run_language_imputation() is deprecated; use "
        "repro.experiments.engine.run_experiment('figure12a') or "
        "`repro run figure12a`",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments.engine import run_experiment

    return run_experiment("figure12a", sizes=sizes).table


def run_app_category_imputation(sizes: ExperimentSizes | None = None) -> ResultTable:
    """Deprecated shim: delegates to the experiment engine (``figure12b``)."""
    warnings.warn(
        "figure12_imputation.run_app_category_imputation() is deprecated; use "
        "repro.experiments.engine.run_experiment('figure12b') or "
        "`repro run figure12b`",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments.engine import run_experiment

    return run_experiment("figure12b", sizes=sizes).table


def main() -> None:  # pragma: no cover - console entry point
    from repro.experiments.engine import run_experiments

    for result in run_experiments(["figure12a", "figure12b"]):
        print(result.table.to_text())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
