"""Figure 12: missing-value imputation — original language (a) and app category (b).

Compares the embedding-based imputation (PV, MF, DW, RO, RN and +DW
concatenations) against mode imputation (MODE) and the DataWig-style n-gram
imputer (DTWG), which only sees the single denormalised spreadsheet.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.datawig import NGramImputer, denormalise_spreadsheet
from repro.baselines.mode_imputation import ModeImputer
from repro.experiments.common import (
    available_embeddings,
    build_suite,
    imputation_trials,
    make_google_play,
    make_tmdb,
)
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.experiments.task_data import app_category_data, language_imputation_data
from repro.tasks.sampling import TrialStatistics


def _baseline_trials(
    rows: list[dict],
    output_column: str,
    input_columns: list[str],
    sizes: ExperimentSizes,
    trials: int,
) -> tuple[TrialStatistics, TrialStatistics]:
    """Mode and DataWig-style baselines on the same random splits."""
    mode_stats = TrialStatistics("MODE")
    datawig_stats = TrialStatistics("DTWG")
    for trial in range(trials):
        rng = np.random.default_rng(sizes.seed + 307 * trial)
        order = rng.permutation(len(rows))
        split = max(2, len(order) // 2)
        train_rows = [rows[i] for i in order[:split]]
        test_rows = [rows[i] for i in order[split:]]
        if not test_rows:
            continue
        mode = ModeImputer().fit([row[output_column] for row in train_rows])
        mode_stats.add(mode.accuracy([row[output_column] for row in test_rows]))
        imputer = NGramImputer(
            input_columns=input_columns,
            output_column=output_column,
            n_features=256,
            hidden_units=(128,),
            epochs=max(60, sizes.epochs),
            seed=sizes.seed + trial,
        )
        imputer.fit(train_rows)
        datawig_stats.add(imputer.accuracy(test_rows))
    return mode_stats, datawig_stats


def run_language_imputation(sizes: ExperimentSizes | None = None) -> ResultTable:
    """Figure 12a: imputation of the movies' original language."""
    sizes = sizes or ExperimentSizes.quick()
    dataset = make_tmdb(sizes)
    suite = build_suite(
        dataset, sizes, exclude_columns=("movies.original_language",)
    )
    data = language_imputation_data(suite.extraction, dataset)

    table = ResultTable(
        name="Figure 12a: imputation of the original language",
        columns=["method", "accuracy_mean", "accuracy_std", "trials"],
    )
    spreadsheet = denormalise_spreadsheet(dataset.database, "movies")
    mode_stats, datawig_stats = _baseline_trials(
        spreadsheet,
        output_column="original_language",
        input_columns=["title", "overview"],
        sizes=sizes,
        trials=sizes.trials,
    )
    for stats in (mode_stats, datawig_stats):
        table.add_row(
            method=stats.name,
            accuracy_mean=stats.mean,
            accuracy_std=stats.std,
            trials=stats.count,
        )
    for name in available_embeddings(suite):
        stats = imputation_trials(suite, name, data, sizes)
        table.add_row(
            method=name,
            accuracy_mean=stats.mean,
            accuracy_std=stats.std,
            trials=stats.count,
        )
    table.add_note(
        "expected (paper): RO/RN highest, above DataWig; MODE ~ PV decent "
        "because most movies are English; DW competitive and best combined"
    )
    return table


def run_app_category_imputation(sizes: ExperimentSizes | None = None) -> ResultTable:
    """Figure 12b: imputation of the Google Play app categories."""
    sizes = sizes or ExperimentSizes.quick()
    dataset = make_google_play(sizes)
    suite = build_suite(
        dataset, sizes, exclude_columns=("categories.name", "genres.name")
    )
    data = app_category_data(suite.extraction, dataset)

    table = ResultTable(
        name="Figure 12b: imputation of app categories",
        columns=["method", "accuracy_mean", "accuracy_std", "trials"],
    )
    spreadsheet = dataset.spreadsheet_rows()
    mode_stats, datawig_stats = _baseline_trials(
        spreadsheet,
        output_column="category",
        input_columns=["name", "pricing", "age_group"],
        sizes=sizes,
        trials=sizes.trials,
    )
    for stats in (mode_stats, datawig_stats):
        table.add_row(
            method=stats.name,
            accuracy_mean=stats.mean,
            accuracy_std=stats.std,
            trials=stats.count,
        )
    for name in available_embeddings(suite):
        stats = imputation_trials(suite, name, data, sizes, train_fraction=0.6)
        table.add_row(
            method=name,
            accuracy_mean=stats.mean,
            accuracy_std=stats.std,
            trials=stats.count,
        )
    table.add_note(
        "expected (paper): RO/RN highest (they can use the reviews), DataWig "
        "~ PV (app name only), MODE and DW poor, +DW does not help"
    )
    return table


def main() -> None:  # pragma: no cover - console entry point
    print(run_language_imputation().to_text())
    print()
    print(run_app_category_imputation().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
