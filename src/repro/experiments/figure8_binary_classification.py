"""Figure 8: binary classification of US-American directors per embedding type."""

from __future__ import annotations

from repro.experiments.common import (
    available_embeddings,
    binary_classification_trials,
    build_suite,
    make_tmdb,
)
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.experiments.task_data import director_classification_data


def run(sizes: ExperimentSizes | None = None) -> ResultTable:
    """Train the director-citizenship classifier on every embedding type."""
    sizes = sizes or ExperimentSizes.quick()
    dataset = make_tmdb(sizes)
    suite = build_suite(dataset, sizes)
    data = director_classification_data(suite.extraction, dataset)

    table = ResultTable(
        name="Figure 8: binary classification of US-American directors",
        columns=["embedding", "accuracy_mean", "accuracy_std", "trials"],
    )
    for name in available_embeddings(suite):
        stats = binary_classification_trials(suite, name, data, sizes)
        table.add_row(
            embedding=name,
            accuracy_mean=stats.mean,
            accuracy_std=stats.std,
            trials=stats.count,
        )
    table.add_note(
        "expected ordering (paper): RN >= RO > MF ~ PV > DW; every text-based "
        "embedding improves when concatenated with DeepWalk"
    )
    return table


def main() -> None:  # pragma: no cover - console entry point
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
