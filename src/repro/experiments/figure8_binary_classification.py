"""Figure 8: binary classification of US-American directors per embedding type."""

from __future__ import annotations

import warnings

from repro.experiments.common import (
    available_embeddings,
    binary_classification_trials,
)
from repro.experiments.registry import experiment
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.experiments.task_data import director_classification_data


@experiment(
    name="figure8",
    title="Binary classification of US-American directors",
    reference="Figure 8",
    datasets=("tmdb",),
    methods=("PV", "MF", "RO", "RN", "DW"),
    description="Director-citizenship classifier accuracy per embedding type.",
)
def run_figure8(ctx) -> ResultTable:
    """Train the director-citizenship classifier on every embedding type."""
    suite = ctx.suite("tmdb")
    data = director_classification_data(suite.extraction, ctx.tmdb())

    table = ResultTable(
        name="Figure 8: binary classification of US-American directors",
        columns=["embedding", "accuracy_mean", "accuracy_std", "trials"],
    )
    for name in available_embeddings(suite):
        stats = binary_classification_trials(suite, name, data, ctx.sizes)
        table.add_row(
            embedding=name,
            accuracy_mean=stats.mean,
            accuracy_std=stats.std,
            trials=stats.count,
        )
    table.add_note(
        "expected ordering (paper): RN >= RO > MF ~ PV > DW; every text-based "
        "embedding improves when concatenated with DeepWalk"
    )
    return table


def run(sizes: ExperimentSizes | None = None) -> ResultTable:
    """Deprecated shim: delegates to the experiment engine (``figure8``)."""
    warnings.warn(
        "figure8_binary_classification.run() is deprecated; use "
        "repro.experiments.engine.run_experiment('figure8') or `repro run figure8`",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments.engine import run_experiment

    return run_experiment("figure8", sizes=sizes).table


def main() -> None:  # pragma: no cover - console entry point
    from repro.experiments.engine import run_experiment

    print(run_experiment("figure8").table.to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
