"""Deterministic chaos benchmark (``repro chaos``).

Runs ``schedules`` seeded fault schedules against the multi-process
serving tiers under a live query+delta workload and certifies, after
every schedule, the invariants the serving stack promises to keep under
partial failure:

* **store integrity** — the embedding store loads cleanly and its delta
  chain replays end to end (a torn or interrupted write never corrupts
  the committed state),
* **liveness** — every submitted write ticket resolves (published or
  explicitly failed); nothing hangs,
* **read-your-writes** — a read issued after a write ack answers
  at-or-past the acked version,
* **agreement** — the final store matrix stays within
  :data:`COSINE_TOLERANCE` cosine distance of a *serial*
  :class:`~repro.retrofit.incremental.IncrementalRetrofitter` replaying
  exactly the acked deltas,
* **containment** — every injected fault ends in either full recovery
  (reads and writes succeed again) or an explicitly reported degraded
  state (``submit`` refuses with a diagnosis; never silent corruption).

Schedule ``i`` exercises fault class ``FAULT_CLASSES[i % 5]`` against
tier ``("sharded", "replicated")[i % 2]``, so five schedules cover every
fault class and ten cover the full class × tier matrix; the per-schedule
RNG (``seed + i``) only varies the knobs (tear fraction, delay, trigger
offsets).  Fault plans are installed *before* the tier forks its worker
processes, so workers inherit them (see :mod:`repro.util.faults`); the
plan is cleared in the front once the fault has demonstrably fired.

Writes are submitted with idempotent submission ids and retried through
a :class:`~repro.util.RetryPolicy` — a retried write must apply exactly
once (the delta queue dedups pending/published ids and re-enqueues only
provably-failed ones).
"""

from __future__ import annotations

import dataclasses
import tempfile
import time
from typing import Any

import numpy as np

from repro.errors import ExperimentError, ServingError
from repro.experiments.common import make_tmdb
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.experiments.serve_bench import SOLVE_ITERATIONS, _build_query_workload
from repro.experiments.update_bench import (
    _METHOD_NAMES,
    settled_tmdb_start,
    synthesize_tmdb_delta,
)
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.incremental import (
    IncrementalRetrofitter,
    max_cosine_distance,
)
from repro.serving.store import EmbeddingStore
from repro.util import RetryPolicy
from repro.util import faults as faultlib
from repro.util.faults import FaultPlan, FaultPoint

#: Every fault class the injection subsystem supports; schedule ``i``
#: draws class ``i % len(FAULT_CLASSES)``, so five schedules exercise
#: all of them at least once.
FAULT_CLASSES = ("crash", "delay", "torn_write", "drop_message", "fail_spawn")

#: Agreement gate between the surviving store state and the serial replay.
COSINE_TOLERANCE = 1e-3

#: Client-side resubmission policy for writes that lost their ack.
WRITE_RETRY = RetryPolicy(attempts=4, base_delay=0.1, max_delay=1.0, deadline=60.0)

_ARTIFACT = "chaos"


@dataclasses.dataclass
class _Schedule:
    """One resolved fault schedule: the plan plus its workload shape."""

    index: int
    fault_class: str
    tier_kind: str  # "sharded" | "replicated"
    site: str  # primary fault point name, for the matrix
    plan: FaultPlan
    n_replicas: int = 2
    # crash/torn trigger geometry: how many writes phase A must land so
    # the armed fault point's traversal counter reaches its skip window
    writes_armed: int = 2
    writes_recovery: int = 2
    # heartbeat-driven schedules idle until the follower death+respawn
    # completes before running the workload (keeps the parent-side drop
    # traversals aligned with the probe order)
    idle_until_respawn: bool = False
    delay_seconds: float = 0.0


def _build_schedule(index: int, seed: int) -> _Schedule:
    """The deterministic plan for schedule ``index`` (rng jitters knobs)."""
    rng = np.random.default_rng(seed + index)
    fault_class = FAULT_CLASSES[index % len(FAULT_CLASSES)]
    tier_kind = ("sharded", "replicated")[index % 2]
    if fault_class == "crash":
        if tier_kind == "sharded":
            # every worker inherits the plan, so all shards crash on the
            # same scatter-gather message; skip is large enough that the
            # respawned workers (which inherit a fresh counter) survive
            # the recovery-phase probes
            return _Schedule(
                index, fault_class, tier_kind, "shard.worker",
                FaultPlan(points=(FaultPoint("shard.worker", "crash", skip=8),)),
            )
        # the primary dies mid-publish; the front's landed-check retries
        # the in-flight batch on the promoted follower
        skip = 2 + int(rng.integers(0, 2))  # crash on write skip+1
        return _Schedule(
            index, fault_class, tier_kind, "runtime.publish",
            FaultPlan(points=(FaultPoint("runtime.publish", "crash", skip=skip),)),
            writes_armed=skip + 1,
            writes_recovery=max(1, skip - 1),
        )
    if fault_class == "delay":
        delay = 0.75 + float(rng.uniform(0.0, 0.25))
        return _Schedule(
            index, fault_class, tier_kind, "store.delta_append",
            FaultPlan(points=(
                FaultPoint(
                    "store.delta_append", "delay", delay_seconds=delay
                ),
            )),
            delay_seconds=delay,
        )
    if fault_class == "torn_write":
        tear = float(rng.uniform(0.2, 0.8))
        if tier_kind == "sharded":
            # the applier's second append tears mid-matrix-write; the
            # tier latches an explicit write-degraded state and the store
            # keeps serving the previous committed version
            return _Schedule(
                index, fault_class, tier_kind, "store.artifact_write",
                FaultPlan(points=(
                    FaultPoint(
                        "store.artifact_write", "torn_write",
                        skip=1, tear_fraction=tear,
                    ),
                )),
            )
        # the primary's third append tears; the front terminates the
        # (possibly diverged) primary and the client retry lands the
        # write on the promoted follower — skip=2 keeps the promoted
        # primary inside its own skip window for the remaining writes
        return _Schedule(
            index, fault_class, tier_kind, "store.artifact_write",
            FaultPlan(points=(
                FaultPoint(
                    "store.artifact_write", "torn_write",
                    skip=2, tear_fraction=tear,
                ),
            )),
            writes_armed=3,
            writes_recovery=1,
        )
    if fault_class == "drop_message":
        if tier_kind == "sharded":
            skip = 1 + int(rng.integers(0, 3))
            return _Schedule(
                index, fault_class, tier_kind, "shard.pipe_send",
                FaultPlan(points=(
                    FaultPoint("shard.pipe_send", "drop_message", skip=skip),
                )),
            )
        # heartbeat probes sweep [follower0, follower1, primary]; ten
        # consecutive drops give follower0 four misses in a row (death)
        # while the others stay under the threshold and recover
        return _Schedule(
            index, fault_class, tier_kind, "repl.heartbeat",
            FaultPlan(points=(
                FaultPoint("repl.heartbeat", "drop_message", hits=10),
            )),
            idle_until_respawn=True,
        )
    if fault_class == "fail_spawn":
        if tier_kind == "sharded":
            return _Schedule(
                index, fault_class, tier_kind, "shard.respawn",
                FaultPlan(points=(
                    FaultPoint("shard.worker", "crash", skip=8),
                    FaultPoint("shard.respawn", "fail_spawn"),
                )),
            )
        # one follower: probes sweep [follower, primary], so seven drops
        # kill the follower (misses 1,3,5,7) and leave the primary at
        # three misses; its first respawn attempt then fails by injection
        # and the retry policy's second attempt brings it back
        return _Schedule(
            index, fault_class, tier_kind, "repl.respawn",
            FaultPlan(points=(
                FaultPoint("repl.heartbeat", "drop_message", hits=7),
                FaultPoint("repl.respawn", "fail_spawn"),
            )),
            n_replicas=1,
            idle_until_respawn=True,
        )
    raise ExperimentError(f"unknown fault class {fault_class!r}")


class _Outage:
    """Tracks the longest window during which an operation kind failed."""

    def __init__(self) -> None:
        self.longest = 0.0
        self._failing_since: float | None = None

    def failure(self) -> None:
        if self._failing_since is None:
            self._failing_since = time.perf_counter()

    def success(self) -> None:
        if self._failing_since is not None:
            self.longest = max(
                self.longest, time.perf_counter() - self._failing_since
            )
            self._failing_since = None

    def close(self) -> None:
        """An outage still open at shutdown counts at its current width."""
        if self._failing_since is not None:
            self.longest = max(
                self.longest, time.perf_counter() - self._failing_since
            )


def _event_counts(events: list[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for event in events:
        name = str(event.get("event"))
        counts[name] = counts.get(name, 0) + 1
    return counts


def _wait_for_event(
    tier, names: tuple[str, ...], deadline_seconds: float
) -> bool:
    deadline = time.perf_counter() + deadline_seconds
    while time.perf_counter() < deadline:
        counts = _event_counts(tier.recent_events(200))
        if all(counts.get(name, 0) >= 1 for name in names):
            return True
        time.sleep(0.05)
    return False


def _run_schedule(
    schedule: _Schedule,
    seed: int,
    sizes: ExperimentSizes,
    embeddings,
    tokenizer,
    base_matrix,
    hyperparams,
    solver_method,
    queries: np.ndarray,
    k: int,
    movies_per_delta: int,
) -> dict[str, Any]:
    """Run one fault schedule end to end; returns its certification record."""
    violations: list[str] = []
    evidence: list[str] = []
    query_errors = 0
    write_retries = 0
    acked: list[tuple[Any, int]] = []  # (delta, version), submission order
    ack_walls: list[float] = []
    read_outage = _Outage()
    write_outage = _Outage()

    scratch = make_tmdb(sizes).database
    stream_rng = np.random.default_rng(seed + 13 * schedule.index + 101)
    total_writes = schedule.writes_armed + schedule.writes_recovery
    # faults triggered by scatter-gather traffic rather than by writes
    query_triggered = schedule.tier_kind == "sharded" and (
        schedule.fault_class in ("crash", "drop_message", "fail_spawn")
    )

    workdir = tempfile.TemporaryDirectory(prefix=f"chaos-{schedule.index}-")
    store = EmbeddingStore(workdir.name)
    store.save_embedding_set(_ARTIFACT, embeddings)

    def build_tier():
        retrofitter = IncrementalRetrofitter(
            embeddings,
            tokenizer,
            hyperparams=hyperparams,
            method=solver_method,
            base_matrix=base_matrix,
        )
        if schedule.tier_kind == "sharded":
            from repro.serving.sharded import ShardedServingTier

            return ShardedServingTier(
                workdir.name,
                _ARTIFACT,
                n_shards=2,
                database=make_tmdb(sizes).database,
                retrofitter=retrofitter,
                solve_iterations=SOLVE_ITERATIONS,
                coalesce=False,
                query_timeout=2.0,
            )
        from repro.serving.replicated import ReplicatedServingTier

        def follower_retrofitter(follower_embeddings):
            return IncrementalRetrofitter(
                follower_embeddings,
                tokenizer,
                hyperparams=hyperparams,
                method=solver_method,
            )

        return ReplicatedServingTier(
            workdir.name,
            _ARTIFACT,
            n_replicas=schedule.n_replicas,
            database=make_tmdb(sizes).database,
            retrofitter=retrofitter,
            retrofitter_factory=follower_retrofitter,
            solve_iterations=SOLVE_ITERATIONS,
            coalesce=False,
            query_timeout=2.0,
        )

    query_cursor = 0

    def probe_query(tier) -> bool:
        """One query; returns whether it answered (errors are recorded)."""
        nonlocal query_cursor, query_errors
        vector = queries[query_cursor % len(queries)]
        query_cursor += 1
        try:
            tier.topk(vector, k)
        except ServingError as error:
            query_errors += 1
            read_outage.failure()
            evidence.append(f"query error: {error}")
            return False
        read_outage.success()
        return True

    def submit_write(tier, j: int) -> None:
        """One idempotent write: retried submission, bounded ack wait."""
        nonlocal write_retries
        delta = synthesize_tmdb_delta(
            scratch, stream_rng, movies_per_delta, include_update=True
        )
        submission_id = f"chaos-{schedule.index}-{j}"
        started = time.perf_counter()

        def attempt():
            ticket = tier.submit(
                delta, timeout=30.0, submission_id=submission_id
            )
            return ticket.wait(timeout=120.0)

        def on_retry(attempt_no, error, delay):
            nonlocal write_retries
            write_retries += 1
            evidence.append(
                f"write {j} retry {attempt_no + 1} after {error}"
            )

        try:
            version = WRITE_RETRY.call(
                attempt, retry_on=(ServingError,), on_retry=on_retry
            )
        except ServingError as error:
            write_outage.failure()
            if tier.write_degraded:
                evidence.append(f"write {j} refused, tier degraded: {error}")
            else:
                violations.append(
                    f"write {j} failed without a degraded report: {error}"
                )
            return
        write_outage.success()
        ack_walls.append(time.perf_counter() - started)
        delta.apply_to(scratch)
        acked.append((delta, int(version)))
        _probe_read_your_writes(tier, int(version))

    def _probe_read_your_writes(tier, version: int) -> None:
        """A read straight after the ack must answer at-or-past it."""
        vector = queries[query_cursor % len(queries)]
        deadline = time.perf_counter() + 30.0
        while True:
            try:
                if schedule.tier_kind == "replicated":
                    answered, _ = tier.topk_batch_versioned(
                        vector[None, :], k, min_version=version
                    )
                    if answered < version:
                        violations.append(
                            f"read-your-writes: answered at {answered} "
                            f"after acking {version}"
                        )
                else:
                    tier.topk(vector, k)
                    if tier.published_version < version:
                        violations.append(
                            f"read-your-writes: published {tier.published_version} "
                            f"after acking {version}"
                        )
                return
            except ServingError:
                if time.perf_counter() > deadline:
                    violations.append(
                        f"read-your-writes probe never answered after "
                        f"acking version {version}"
                    )
                    return
                time.sleep(0.1)

    faultlib.install_fault_plan(schedule.plan)
    tier = build_tier()
    degraded_report: str | None = None
    stats = None
    events: list[dict] = []
    try:
        with tier:
            # ---- phase A: trigger the armed fault ---------------------- #
            if schedule.idle_until_respawn:
                # heartbeat-driven death: stay off the pipes so the drop
                # traversals align with the probe sweep, then wait for
                # the death + respawn transition to complete
                if not _wait_for_event(
                    tier, ("replica_dead", "follower_respawned"), 30.0
                ):
                    violations.append(
                        "heartbeat fault never produced replica_dead + "
                        "follower_respawned events"
                    )
                faultlib.clear_fault_plan()
            elif query_triggered:
                # scatter-gather until the fault demonstrably fired (a
                # failed query or a dead worker), then let the tier heal
                for _ in range(40):
                    answered = probe_query(tier)
                    if not answered or tier.live_shards < tier.n_shards:
                        break
                else:
                    violations.append(
                        f"{schedule.site} never fired across 40 queries"
                    )
                faultlib.clear_fault_plan()
                if schedule.fault_class in ("crash", "fail_spawn"):
                    deadline = time.perf_counter() + 30.0
                    while (
                        tier.live_shards < tier.n_shards
                        and time.perf_counter() < deadline
                    ):
                        time.sleep(0.05)
                    if tier.live_shards < tier.n_shards:
                        violations.append(
                            "crashed shard workers never respawned"
                        )
                if schedule.fault_class == "fail_spawn":
                    if not _wait_for_event(
                        tier, ("shard_respawn_retry",), 30.0
                    ):
                        violations.append(
                            "injected spawn failure left no "
                            "shard_respawn_retry event"
                        )
                # absorb the second worker's still-armed dropped reply
                probe_query(tier)
            else:
                # write-triggered faults: land the armed-phase writes
                for j in range(schedule.writes_armed):
                    probe_query(tier)
                    submit_write(tier, j)
                faultlib.clear_fault_plan()

            # ---- phase B: recovery under the cleared plan -------------- #
            start_write = (
                0
                if schedule.idle_until_respawn or query_triggered
                else schedule.writes_armed
            )
            for j in range(start_write, total_writes):
                probe_query(tier)
                if tier.write_degraded:
                    break
                submit_write(tier, j)
            probe_query(tier)
            if tier.write_degraded:
                try:
                    tier.submit(synthesize_tmdb_delta(
                        scratch, stream_rng, movies_per_delta
                    ))
                    violations.append(
                        "tier claims write-degraded but accepted a submit"
                    )
                except ServingError as error:
                    degraded_report = str(error)
            else:
                tier.flush(timeout=300.0)
            stats = tier.stats
            events = tier.recent_events(200)
    finally:
        faultlib.clear_fault_plan()
    read_outage.close()
    write_outage.close()

    # ---- certification ------------------------------------------------ #
    counts = _event_counts(events)
    exercised = _check_exercised(
        schedule, counts, stats, ack_walls, query_errors, write_retries,
        degraded_report,
    )
    if exercised is not True:
        violations.append(exercised)

    final_set = None
    try:
        fresh = EmbeddingStore(workdir.name)
        final_set, _, final_version = fresh.load_embedding_set_versioned(
            _ARTIFACT
        )
        base = fresh.base_version(_ARTIFACT)
        for version in range(base + 1, final_version + 1):
            fresh.read_embedding_set_delta(_ARTIFACT, version)
    except Exception as error:  # noqa: BLE001 - any load failure is torn state
        violations.append(f"store failed to load cleanly: {error!r}")

    worst = None
    if final_set is not None:
        serial_db = make_tmdb(sizes).database
        serial = IncrementalRetrofitter(
            embeddings,
            tokenizer,
            hyperparams=hyperparams,
            method=solver_method,
            base_matrix=base_matrix,
        )
        for delta, _version in acked:
            serial.apply(serial_db, delta, iterations=SOLVE_ITERATIONS)
        worst = float(max_cosine_distance(serial.embeddings, final_set))
        if worst > COSINE_TOLERANCE:
            violations.append(
                f"final matrix diverged from the serial replay of the "
                f"{len(acked)} acked deltas: {worst:.2e} > {COSINE_TOLERANCE}"
            )

    if degraded_report is None and len(acked) == 0 and total_writes > 0:
        violations.append(
            "no write ever acked and no degraded state was reported"
        )

    workdir.cleanup()
    outcome = "degraded" if degraded_report is not None else "recovered"
    return {
        "schedule": schedule.index,
        "fault_class": schedule.fault_class,
        "site": schedule.site,
        "tier": schedule.tier_kind,
        "outcome": outcome,
        "degraded_report": degraded_report,
        "acked_writes": len(acked),
        "attempted_writes": total_writes,
        "write_retries": write_retries,
        "query_errors": query_errors,
        "read_outage_seconds": read_outage.longest,
        "write_outage_seconds": write_outage.longest,
        "max_ack_seconds": max(ack_walls) if ack_walls else None,
        "max_cosine_distance_vs_serial": worst,
        "events": counts,
        "evidence": evidence[:20],
        "violations": violations,
    }


def _check_exercised(
    schedule: _Schedule,
    counts: dict[str, int],
    stats,
    ack_walls: list[float],
    query_errors: int,
    write_retries: int,
    degraded_report: str | None,
):
    """``True`` when the schedule's fault demonstrably fired, else a reason."""
    cls, tier = schedule.fault_class, schedule.tier_kind
    if cls == "crash":
        if tier == "sharded":
            if counts.get("shard_respawned", 0) >= 1 or query_errors >= 1:
                return True
            return "crash fault left no respawn event and no failed query"
        if stats is not None and stats.failovers >= 1:
            return True
        return "primary crash produced no failover"
    if cls == "delay":
        if ack_walls and max(ack_walls) >= schedule.delay_seconds:
            return True
        return (
            f"injected {schedule.delay_seconds:.2f}s append delay left no "
            f"ack slower than it"
        )
    if cls == "torn_write":
        if tier == "sharded":
            if degraded_report is not None:
                return True
            return "torn applier write did not latch the degraded state"
        if (stats is not None and stats.failovers >= 1) or write_retries >= 1:
            return True
        return "torn primary write triggered neither failover nor retry"
    if cls == "drop_message":
        if tier == "sharded":
            if query_errors >= 1:
                return True
            return "dropped shard reply failed no query"
        if counts.get("replica_dead", 0) >= 1:
            return True
        return "dropped heartbeats never declared a replica dead"
    if cls == "fail_spawn":
        key = (
            "shard_respawn_retry" if tier == "sharded"
            else "follower_respawn_retry"
        )
        if counts.get(key, 0) >= 1:
            return True
        return f"injected spawn failure left no {key} event"
    return f"unknown fault class {cls!r}"


def run_chaos_benchmark(
    sizes: ExperimentSizes | None = None,
    method: str = "RN",
    schedules: int = 5,
    n_queries: int = 64,
    k: int = 10,
    delta_fraction: float = 0.05,
    seed: int | None = None,
    cache_dir=None,
) -> tuple[ResultTable, dict[str, Any]]:
    """Run ``schedules`` seeded fault schedules; returns (table, payload).

    The benchmark fails (non-empty ``payload["violations"]``) when any
    schedule breaks an invariant; ``repro chaos`` exits non-zero in that
    case.  With the default five schedules every fault class in
    :data:`FAULT_CLASSES` fires at least once.
    """
    if method not in _METHOD_NAMES:
        raise ExperimentError(
            f"unknown chaos-benchmark method {method!r}; expected RN or RO"
        )
    if schedules < 1:
        raise ExperimentError("chaos benchmark needs at least one schedule")
    from repro.experiments.engine import RunContext

    sizes = sizes or ExperimentSizes.tiny()
    ctx = RunContext(sizes=sizes, cache_dir=cache_dir)
    solver_method = _METHOD_NAMES[method]
    hyperparams = (
        RetroHyperparameters.paper_rn_default()
        if method == "RN"
        else RetroHyperparameters.paper_ro_default()
    )
    base_seed = sizes.seed if seed is None else seed

    started = time.perf_counter()
    dataset, tokenizer, embeddings, base_matrix, _settle = settled_tmdb_start(
        ctx, method, hyperparams, solver_method
    )
    setup_seconds = time.perf_counter() - started
    movies_per_delta = max(
        1,
        int(round(len(dataset.database.table("movies")) * delta_fraction)),
    )
    queries = _build_query_workload(
        embeddings, n_queries, np.random.default_rng(base_seed + 7)
    )

    records: list[dict[str, Any]] = []
    for index in range(schedules):
        schedule = _build_schedule(index, base_seed)
        schedule.plan.seed = base_seed + index
        records.append(
            _run_schedule(
                schedule,
                base_seed,
                sizes,
                embeddings,
                tokenizer,
                base_matrix,
                hyperparams,
                solver_method,
                queries,
                k,
                movies_per_delta,
            )
        )

    all_violations = [
        f"schedule {record['schedule']} ({record['fault_class']}/"
        f"{record['tier']}): {violation}"
        for record in records
        for violation in record["violations"]
    ]
    classes_fired = {record["fault_class"] for record in records}

    table = ResultTable(
        name=(
            f"chaos ({method}, {len(embeddings)} values, "
            f"{schedules} schedules, seed {base_seed})"
        ),
        columns=[
            "schedule", "fault", "site", "tier", "outcome",
            "writes", "outage_s", "violations",
        ],
    )
    for record in records:
        outage = max(
            record["read_outage_seconds"], record["write_outage_seconds"]
        )
        table.add_row(
            schedule=record["schedule"],
            fault=record["fault_class"],
            site=record["site"],
            tier=record["tier"],
            outcome=record["outcome"],
            writes=f"{record['acked_writes']}/{record['attempted_writes']}",
            outage_s=outage,
            violations=len(record["violations"]),
        )
    table.add_note(
        f"fault classes exercised: {sorted(classes_fired)} of "
        f"{sorted(FAULT_CLASSES)}"
    )
    worst_pairs = [
        record["max_cosine_distance_vs_serial"]
        for record in records
        if record["max_cosine_distance_vs_serial"] is not None
    ]
    if worst_pairs:
        table.add_note(
            f"max cosine distance to the serial replay across schedules: "
            f"{max(worst_pairs):.2e} (gate {COSINE_TOLERANCE:g})"
        )
    table.add_note(
        f"{len(all_violations)} invariant violation(s)"
        + (f": {all_violations[0]}" if all_violations else "")
    )

    payload: dict[str, Any] = {
        "method": method,
        "schedules": schedules,
        "seed": base_seed,
        "n_values": len(embeddings),
        "num_movies": sizes.num_movies,
        "movies_per_delta": movies_per_delta,
        "setup_seconds": setup_seconds,
        "cosine_tolerance": COSINE_TOLERANCE,
        "fault_classes": list(FAULT_CLASSES),
        "fault_classes_exercised": sorted(classes_fired),
        "records": records,
        "violations": all_violations,
    }
    return table, payload
