"""Table 2: runtime of the embedding methods (MF, DW, RO, RN) on both datasets."""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_suite, make_google_play, make_tmdb
from repro.experiments.runner import ExperimentSizes, ResultTable

METHODS = ("MF", "DW", "RO", "RN")


def run(sizes: ExperimentSizes | None = None, repetitions: int = 3) -> ResultTable:
    """Measure single-thread training time of each embedding method."""
    sizes = sizes or ExperimentSizes.quick()
    table = ResultTable(
        name="Table 2: runtime of embedding methods (seconds)",
        columns=["dataset", "method", "runtime_mean", "runtime_std", "repetitions"],
    )
    datasets = (("TMDB", make_tmdb(sizes)), ("GooglePlay", make_google_play(sizes)))
    for label, dataset in datasets:
        runtimes: dict[str, list[float]] = {method: [] for method in METHODS}
        for _ in range(repetitions):
            suite = build_suite(dataset, sizes, methods=METHODS)
            for method in METHODS:
                runtimes[method].append(suite.runtimes[method])
        for method in METHODS:
            values = np.array(runtimes[method])
            table.add_row(
                dataset=label,
                method=method,
                runtime_mean=float(values.mean()),
                runtime_std=float(values.std()),
                repetitions=repetitions,
            )
    table.add_note(
        "paper (TMDB subset, seconds): MF 7.4, DW 548.7, RO 418.1, RN 27.2 — "
        "the expected ordering is MF < RN < RO < DW"
    )
    return table


def main() -> None:  # pragma: no cover - console entry point
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
