"""Table 2: runtime of the embedding methods (MF, DW, RO, RN) on both datasets."""

from __future__ import annotations

import warnings

import numpy as np

from repro.experiments.registry import experiment
from repro.experiments.runner import ExperimentSizes, ResultTable

METHODS = ("MF", "DW", "RO", "RN")


@experiment(
    name="table2",
    title="Runtime of embedding methods",
    reference="Table 2",
    datasets=("tmdb", "google_play"),
    methods=METHODS,
    description=(
        "Single-thread training time per method; with repetitions=1 the "
        "runtimes recorded by the shared suite build are reported (no "
        "retraining), repetitions>1 forces fresh timed builds."
    ),
    repetitions=1,
)
def run_table2(ctx, repetitions: int = 1) -> ResultTable:
    """Measure single-thread training time of each embedding method.

    With ``repetitions=1`` (the engine default) the numbers come from the
    run context's shared suite builds — the same training that ``figure8``
    and friends consume, so running ``figure8 table2`` together trains each
    suite exactly once.  ``repetitions > 1`` bypasses the artifact cache
    and times that many fresh builds per dataset.
    """
    sizes = ctx.sizes
    table = ResultTable(
        name="Table 2: runtime of embedding methods (seconds)",
        columns=["dataset", "method", "runtime_mean", "runtime_std", "repetitions"],
    )
    for label, kind in (("TMDB", "tmdb"), ("GooglePlay", "google_play")):
        runtimes: dict[str, list[float]] = {method: [] for method in METHODS}
        if repetitions <= 1:
            suite = ctx.suite(kind)
            for method in METHODS:
                runtimes[method].append(suite.runtimes[method])
        else:
            for _ in range(repetitions):
                suite = ctx.suite(kind, methods=METHODS, fresh=True)
                for method in METHODS:
                    runtimes[method].append(suite.runtimes[method])
        for method in METHODS:
            values = np.array(runtimes[method])
            table.add_row(
                dataset=label,
                method=method,
                runtime_mean=float(values.mean()),
                runtime_std=float(values.std()),
                repetitions=len(values),
            )
    table.add_note(
        "paper (TMDB subset, seconds): MF 7.4, DW 548.7, RO 418.1, RN 27.2 — "
        "the expected ordering is MF < RN < RO < DW"
    )
    return table


def run(sizes: ExperimentSizes | None = None, repetitions: int = 3) -> ResultTable:
    """Deprecated shim: delegates to the experiment engine (``table2``)."""
    warnings.warn(
        "table2_runtime.run() is deprecated; use "
        "repro.experiments.engine.run_experiment('table2') or `repro run table2`",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments.engine import run_experiment

    return run_experiment(
        "table2", sizes=sizes, options={"repetitions": repetitions}
    ).table


def main() -> None:  # pragma: no cover - console entry point
    from repro.experiments.engine import run_experiment

    print(run_experiment("table2").table.to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
