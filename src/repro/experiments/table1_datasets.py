"""Table 1: dataset properties (number of tables, unique text values)."""

from __future__ import annotations

import warnings

from repro.experiments.registry import experiment
from repro.experiments.runner import ExperimentSizes, ResultTable


@experiment(
    name="table1",
    title="Dataset properties",
    reference="Table 1",
    datasets=("tmdb", "google_play"),
    description="Tables, link tables, unique text values and rows per dataset.",
)
def run_table1(ctx) -> ResultTable:
    """Reproduce Table 1 for the synthetic TMDB and Google Play databases."""
    table = ResultTable(
        name="Table 1: dataset properties",
        columns=["dataset", "tables", "link_tables", "unique_text_values", "rows"],
    )
    for dataset in (ctx.tmdb(), ctx.google_play()):
        summary = dataset.summary()
        table.add_row(
            dataset=summary["name"],
            tables=summary["tables"],
            link_tables=summary["link_tables"],
            unique_text_values=summary["unique_text_values"],
            rows=summary["rows"],
        )
    table.add_note(
        "paper: TMDB 8(+7) tables / 493,751 values; Google Play 6(+1) tables / "
        "27,571 values — the synthetic databases keep the same schema shape at "
        "a laptop-friendly scale"
    )
    return table


def run(sizes: ExperimentSizes | None = None) -> ResultTable:
    """Deprecated shim: delegates to the experiment engine (``table1``)."""
    warnings.warn(
        "table1_datasets.run() is deprecated; use "
        "repro.experiments.engine.run_experiment('table1') or `repro run table1`",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments.engine import run_experiment

    return run_experiment("table1", sizes=sizes).table


def main() -> None:  # pragma: no cover - console entry point
    from repro.experiments.engine import run_experiment

    print(run_experiment("table1").table.to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
