"""Table 1: dataset properties (number of tables, unique text values)."""

from __future__ import annotations

from repro.experiments.common import make_google_play, make_tmdb
from repro.experiments.runner import ExperimentSizes, ResultTable


def run(sizes: ExperimentSizes | None = None) -> ResultTable:
    """Reproduce Table 1 for the synthetic TMDB and Google Play databases."""
    sizes = sizes or ExperimentSizes.quick()
    table = ResultTable(
        name="Table 1: dataset properties",
        columns=["dataset", "tables", "link_tables", "unique_text_values", "rows"],
    )
    for dataset in (make_tmdb(sizes), make_google_play(sizes)):
        summary = dataset.summary()
        table.add_row(
            dataset=summary["name"],
            tables=summary["tables"],
            link_tables=summary["link_tables"],
            unique_text_values=summary["unique_text_values"],
            rows=summary["rows"],
        )
    table.add_note(
        "paper: TMDB 8(+7) tables / 493,751 values; Google Play 6(+1) tables / "
        "27,571 values — the synthetic databases keep the same schema shape at "
        "a laptop-friendly scale"
    )
    return table


def main() -> None:  # pragma: no cover - console entry point
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
