"""Shared utilities for the experiment harnesses: result tables and sizing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExperimentError


@dataclass
class ResultTable:
    """A small column-oriented result container with text rendering.

    Rows are dictionaries; the column order is fixed by ``columns`` so that
    the printed output always has the same layout as the paper's table or
    figure legend.
    """

    name: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; unknown keys raise, missing keys become blanks."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ExperimentError(f"unknown result columns: {sorted(unknown)}")
        self.rows.append({column: values.get(column, "") for column in self.columns})

    def add_note(self, note: str) -> None:
        """Attach a free-form note shown below the table."""
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ExperimentError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def row_for(self, key_column: str, key_value: Any) -> dict[str, Any]:
        """The first row whose ``key_column`` equals ``key_value``."""
        for row in self.rows:
            if row.get(key_column) == key_value:
                return row
        raise ExperimentError(f"no row with {key_column}={key_value!r}")

    @staticmethod
    def _format(value: Any) -> str:
        if isinstance(value, float):
            if abs(value) >= 1000:
                return f"{value:,.1f}"
            return f"{value:.4f}"
        return str(value)

    def to_text(self) -> str:
        """Render an aligned ASCII table (used by examples and benchmarks)."""
        header = [str(c) for c in self.columns]
        body = [[self._format(row[c]) for c in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.name} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for line in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


@dataclass(frozen=True)
class ExperimentSizes:
    """Workload sizing shared by the experiment harnesses.

    ``quick()`` keeps the full pipeline end-to-end but shrinks the data and
    the number of repetitions so that the whole benchmark suite runs in
    minutes; ``paper_scale()`` approaches the original sample counts (still
    on synthetic data) for users who want to let it run longer.
    """

    num_movies: int = 200
    num_apps: int = 250
    trials: int = 3
    train_samples: int = 200
    test_samples: int = 200
    epochs: int = 60
    hidden_units: tuple[int, ...] = (64,)
    imputation_hidden_units: tuple[int, ...] = (96, 48)
    embedding_dimension: int = 48
    deepwalk_dimension: int = 48
    seed: int = 0

    @classmethod
    def quick(cls) -> "ExperimentSizes":
        """Small sizes used by the test-suite and CI-style benchmark runs."""
        return cls(
            num_movies=200,
            num_apps=250,
            trials=3,
            train_samples=150,
            test_samples=150,
            epochs=50,
            hidden_units=(48,),
            imputation_hidden_units=(64, 32),
            embedding_dimension=32,
            deepwalk_dimension=32,
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentSizes":
        """Larger sizes closer to the paper's sample counts."""
        return cls(
            num_movies=2000,
            num_apps=800,
            trials=10,
            train_samples=3000,
            test_samples=3000,
            epochs=150,
            hidden_units=(600,),
            imputation_hidden_units=(600, 300),
            embedding_dimension=96,
            deepwalk_dimension=96,
        )
