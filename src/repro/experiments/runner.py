"""Shared utilities for the experiment harnesses: result tables and sizing."""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ExperimentError


def json_value(value: Any) -> Any:
    """``value`` converted to a plain JSON-serialisable Python object.

    Numpy scalars become Python scalars, arrays and tuples become lists,
    NaN becomes ``None`` (the JSON spec has no NaN literal).
    """
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        return None if math.isnan(value) else value
    if isinstance(value, np.ndarray):
        return [json_value(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [json_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): json_value(item) for key, item in value.items()}
    return value


@dataclass
class ResultTable:
    """A small column-oriented result container with text rendering.

    Rows are dictionaries; the column order is fixed by ``columns`` so that
    the printed output always has the same layout as the paper's table or
    figure legend.
    """

    name: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; unknown keys raise, missing keys become blanks."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ExperimentError(f"unknown result columns: {sorted(unknown)}")
        self.rows.append({column: values.get(column, "") for column in self.columns})

    def add_note(self, note: str) -> None:
        """Attach a free-form note shown below the table."""
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ExperimentError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def row_for(self, key_column: str, key_value: Any) -> dict[str, Any]:
        """The first row whose ``key_column`` equals ``key_value``."""
        for row in self.rows:
            if row.get(key_column) == key_value:
                return row
        raise ExperimentError(f"no row with {key_column}={key_value!r}")

    @staticmethod
    def _format(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, (bool, np.bool_)):
            return str(bool(value))
        if isinstance(value, (int, np.integer)):
            # integers render as integers (thousands-separated), never
            # through the float branch's decimal formatting
            return f"{int(value):,d}"
        if isinstance(value, (float, np.floating)):
            value = float(value)
            if math.isnan(value):
                return "-"
            if abs(value) >= 1000:
                return f"{value:,.1f}"
            return f"{value:.4f}"
        return str(value)

    def to_text(self) -> str:
        """Render an aligned ASCII table (used by examples and benchmarks)."""
        header = [str(c) for c in self.columns]
        body = [[self._format(row[c]) for c in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.name} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for line in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable representation (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "columns": list(self.columns),
            "rows": [
                {column: json_value(row[column]) for column in self.columns}
                for row in self.rows
            ],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ResultTable":
        """Rebuild a table from :meth:`to_dict` output."""
        try:
            table = cls(
                name=str(payload["name"]),
                columns=[str(column) for column in payload["columns"]],
                notes=[str(note) for note in payload.get("notes", [])],
            )
            for row in payload.get("rows", []):
                table.add_row(**row)
        except (KeyError, TypeError) as error:
            raise ExperimentError(f"malformed result table payload: {error}") from error
        return table

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


@dataclass(frozen=True)
class ExperimentSizes:
    """Workload sizing shared by the experiment harnesses.

    ``quick()`` keeps the full pipeline end-to-end but shrinks the data and
    the number of repetitions so that the whole benchmark suite runs in
    minutes; ``paper_scale()`` approaches the original sample counts (still
    on synthetic data) for users who want to let it run longer.
    """

    num_movies: int = 200
    num_apps: int = 250
    trials: int = 3
    train_samples: int = 200
    test_samples: int = 200
    epochs: int = 60
    hidden_units: tuple[int, ...] = (64,)
    imputation_hidden_units: tuple[int, ...] = (96, 48)
    embedding_dimension: int = 48
    deepwalk_dimension: int = 48
    seed: int = 0

    @classmethod
    def quick(cls) -> "ExperimentSizes":
        """Small sizes used by the test-suite and CI-style benchmark runs."""
        return cls(
            num_movies=200,
            num_apps=250,
            trials=3,
            train_samples=150,
            test_samples=150,
            epochs=50,
            hidden_units=(48,),
            imputation_hidden_units=(64, 32),
            embedding_dimension=32,
            deepwalk_dimension=32,
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentSizes":
        """Larger sizes closer to the paper's sample counts."""
        return cls(
            num_movies=2000,
            num_apps=800,
            trials=10,
            train_samples=3000,
            test_samples=3000,
            epochs=150,
            hidden_units=(600,),
            imputation_hidden_units=(600, 300),
            embedding_dimension=96,
            deepwalk_dimension=96,
        )

    @classmethod
    def tiny(cls) -> "ExperimentSizes":
        """Miniature sizes for smoke runs (seconds, not minutes)."""
        return cls(
            num_movies=40,
            num_apps=40,
            trials=1,
            train_samples=30,
            test_samples=30,
            epochs=10,
            hidden_units=(16,),
            imputation_hidden_units=(16,),
            embedding_dimension=16,
            deepwalk_dimension=8,
        )

    #: Preset names accepted by :meth:`preset` (and the ``repro`` CLI).
    PRESETS = ("tiny", "quick", "paper")

    @classmethod
    def preset(cls, name: str) -> "ExperimentSizes":
        """The sizing preset called ``name`` (``tiny``, ``quick``, ``paper``)."""
        factories = {
            "tiny": cls.tiny,
            "quick": cls.quick,
            "paper": cls.paper_scale,
        }
        if name not in factories:
            raise ExperimentError(
                f"unknown sizing preset {name!r}; expected one of {cls.PRESETS}"
            )
        return factories[name]()

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable representation of this sizing."""
        payload = dataclasses.asdict(self)
        payload["hidden_units"] = list(self.hidden_units)
        payload["imputation_hidden_units"] = list(self.imputation_hidden_units)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ExperimentSizes":
        """Rebuild a sizing from :meth:`to_dict` output."""
        try:
            values = dict(payload)
            values["hidden_units"] = tuple(values["hidden_units"])
            values["imputation_hidden_units"] = tuple(
                values["imputation_hidden_units"]
            )
            return cls(**values)
        except (KeyError, TypeError) as error:
            raise ExperimentError(
                f"malformed experiment sizing payload: {error}"
            ) from error
