"""The declarative experiment registry.

Every table and figure of the paper is described by an
:class:`ExperimentSpec` — its name, the paper reference, the datasets and
embedding methods it needs, and a runner callable — registered in an
:class:`ExperimentRegistry`.  The engine (:mod:`repro.experiments.engine`)
executes specs through a shared :class:`~repro.experiments.engine.RunContext`
so that expensive artifacts (datasets, embedding suites, serving sessions)
are built once per run instead of once per figure, and the ``repro`` CLI
(``python -m repro``) lists and runs them uniformly.

Runner contract: ``runner(ctx, **options) -> ResultTable`` where ``ctx`` is
the :class:`~repro.experiments.engine.RunContext` and ``options`` are the
spec's :attr:`ExperimentSpec.default_options` merged with any caller
overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import ExperimentError
from repro.experiments.runner import ResultTable

#: Module paths imported by :func:`load_builtin_specs`; importing a module
#: registers its spec(s) in :data:`REGISTRY`.
BUILTIN_SPEC_MODULES = (
    "repro.experiments.figure3_toy_hyperparams",
    "repro.experiments.figure4_scaling",
    "repro.experiments.gridsearch",
    "repro.experiments.figure8_binary_classification",
    "repro.experiments.figure9_sample_size",
    "repro.experiments.figure12_imputation",
    "repro.experiments.figure13_regression",
    "repro.experiments.figure14_link_prediction",
    "repro.experiments.table1_datasets",
    "repro.experiments.table2_runtime",
)


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative description of one reproducible experiment."""

    #: Registry key, e.g. ``"figure8"`` — what ``repro run`` accepts.
    name: str
    #: Human-readable title shown by ``repro list``.
    title: str
    #: Paper reference, e.g. ``"Figure 8"`` or ``"Table 2"``.
    reference: str
    #: ``runner(ctx, **options) -> ResultTable``.
    runner: Callable[..., ResultTable]
    #: Datasets the experiment touches (``"tmdb"``, ``"google_play"``, ``"toy"``).
    datasets: tuple[str, ...] = ()
    #: Embedding methods trained for it (empty when none are).
    methods: tuple[str, ...] = ()
    #: Default runner options; overridable per run.
    default_options: dict[str, Any] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ExperimentError(
                f"experiment name {self.name!r} must be a non-empty "
                "alphanumeric/underscore identifier"
            )
        if not callable(self.runner):
            raise ExperimentError(f"experiment {self.name!r} needs a callable runner")

    def options(self, overrides: dict[str, Any] | None = None) -> dict[str, Any]:
        """The default options merged with ``overrides`` (``None`` values
        in ``overrides`` keep the default)."""
        merged = dict(self.default_options)
        for key, value in (overrides or {}).items():
            if value is not None or key not in merged:
                merged[key] = value
        return merged


class ExperimentRegistry:
    """A named collection of :class:`ExperimentSpec` objects."""

    def __init__(self) -> None:
        self._specs: dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        """Add ``spec``; a second spec under the same name is an error."""
        existing = self._specs.get(spec.name)
        if existing is not None:
            if existing is spec:
                return spec
            raise ExperimentError(
                f"experiment {spec.name!r} is already registered "
                f"({existing.reference}: {existing.title})"
            )
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ExperimentSpec:
        """The spec registered under ``name``."""
        if name not in self._specs:
            raise ExperimentError(
                f"unknown experiment {name!r}; registered: {self.names()}"
            )
        return self._specs[name]

    def names(self) -> list[str]:
        """All registered experiment names, in registration order."""
        return list(self._specs)

    def specs(self) -> list[ExperimentSpec]:
        """All registered specs, in registration order."""
        return list(self._specs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self._specs.values())


#: The process-wide registry that the builtin experiment modules populate.
REGISTRY = ExperimentRegistry()


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register ``spec`` in the global :data:`REGISTRY` (module-level helper)."""
    return REGISTRY.register(spec)


def experiment(
    name: str,
    title: str,
    reference: str,
    datasets: tuple[str, ...] = (),
    methods: tuple[str, ...] = (),
    description: str = "",
    **default_options: Any,
) -> Callable[[Callable[..., ResultTable]], Callable[..., ResultTable]]:
    """Decorator registering the decorated runner as an experiment spec."""

    def decorate(runner: Callable[..., ResultTable]) -> Callable[..., ResultTable]:
        register(
            ExperimentSpec(
                name=name,
                title=title,
                reference=reference,
                runner=runner,
                datasets=datasets,
                methods=methods,
                default_options=dict(default_options),
                description=description,
            )
        )
        return runner

    return decorate


def load_builtin_specs() -> None:
    """Import every builtin experiment module (registration side effect)."""
    import importlib

    for module in BUILTIN_SPEC_MODULES:
        importlib.import_module(module)


def default_registry() -> ExperimentRegistry:
    """The global registry with all builtin specs loaded."""
    load_builtin_specs()
    return REGISTRY
