"""End-to-end incremental-update benchmark (``repro update``).

Simulates a serving system under live writes: a trained suite (reused from
the engine's artifact cache when available) is settled to its converged
fixed point and served through a :class:`~repro.serving.ServingSession`;
a synthetic stream of row-level :class:`~repro.db.DatabaseDelta` batches —
movie inserts with their link rows and reviews, text-value updates, review
deletions — is then applied through the whole delta pipeline:

``DatabaseDelta`` → :func:`~repro.retrofit.extraction.derive_extraction_delta`
→ :meth:`~repro.retrofit.extraction.ExtractionResult.apply_delta` →
warm-start affected-subset solve → :meth:`ServingSession.apply_update`.

The harness reports per-delta latency split by stage, compares the final
state against a cold re-extract + re-solve (the acceptance gate: ≥5×
faster, vectors within 1e-3 cosine distance), and doubles as the
``incremental_update`` microbenchmark of ``repro bench``.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.datasets import vocabulary as vocab
from repro.db.database import Database
from repro.db.delta import DatabaseDelta
from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.retrofit.combine import TextValueEmbeddingSet
from repro.retrofit.extraction import extract_text_values
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.incremental import (
    IncrementalRetrofitter,
    full_and_incremental_agree,
    max_cosine_distance,
)
from repro.retrofit.initialization import initialise_vectors
from repro.retrofit.retro import RetroSolver
from repro.serving.session import ServingSession, default_index_factory
from repro.text.tokenizer import Tokenizer

#: Solver method name per embedding type.
_METHOD_NAMES = {"RN": "series", "RO": "optimization"}

#: Iteration cap used to settle both paths to their fixed points; the
#: per-iteration tolerance (solver default 1e-5) stops them much earlier.
SETTLE_ITERATIONS = 300


def _max_id(table) -> int:
    return max((row["id"] for row in table), default=0)


def settled_tmdb_start(
    ctx,
    method: str,
    hyperparams: RetroHyperparameters,
    solver_method: str,
):
    """A trained TMDB suite settled to its solver fixed point.

    Shared setup of the update and serve benchmarks: pulls the (possibly
    cached) suite from the context, settles the chosen method's matrix to
    convergence, and returns ``(dataset, tokenizer, embeddings,
    base_matrix, settle_report)`` — everything needed to build serving
    sessions and an :class:`IncrementalRetrofitter` continuing from the
    converged state.
    """
    dataset = ctx.tmdb()
    suite = ctx.suite("tmdb", methods=("PV", method))
    tokenizer = Tokenizer(dataset.embedding)
    solver = RetroSolver(suite.extraction, suite.base.matrix, hyperparams)
    matrix, settle_report = solver.solve(
        method=solver_method,
        iterations=SETTLE_ITERATIONS,
        W_init=suite.get(method).matrix,
    )
    embeddings = TextValueEmbeddingSet(
        suite.extraction.copy(), matrix, name=method
    )
    return dataset, tokenizer, embeddings, suite.base.matrix, settle_report


def synthesize_tmdb_delta(
    database: Database,
    rng: np.random.Generator,
    n_movies: int,
    include_update: bool = True,
    include_delete: bool = True,
) -> DatabaseDelta:
    """A realistic write batch against a TMDB-shaped database.

    ``n_movies`` new movies (fresh titles/overviews built from the shared
    vocabulary pools, links to existing persons/countries/keywords, one
    review each, and one brand-new director), plus optionally one
    text-value update of an existing overview and one review deletion.
    """
    delta = DatabaseDelta()
    movies = database.table("movies")
    persons = database.table("persons")
    reviews = database.table("reviews")
    next_movie = _max_id(movies) + 1
    next_person = _max_id(persons) + 1
    next_review = _max_id(reviews) + 1
    link_next = {
        name: _max_id(database.table(name)) + 1
        for name in ("movie_directors", "movie_countries", "movie_keywords")
    }
    used_titles = set(movies.distinct_values("title"))
    used_names = set(persons.distinct_values("name"))
    person_ids = [row["id"] for row in persons]
    n_countries = len(database.table("countries"))
    n_keywords = len(database.table("keywords"))
    genre_names = list(vocab.MOVIE_GENRES)
    languages = sorted({country.language for country in vocab.COUNTRIES})

    def pick(pool):
        return pool[int(rng.integers(0, len(pool)))]

    # one brand-new director joins with the batch
    country = vocab.COUNTRIES[int(rng.integers(0, len(vocab.COUNTRIES)))]
    name = f"{pick(country.first_names)} {pick(country.last_names)}"
    while name in used_names:
        name = f"{name} {pick(country.last_names)}"
    used_names.add(name)
    new_person_id = next_person
    delta.insert("persons", {"id": new_person_id, "name": name})

    for offset in range(max(1, n_movies)):
        movie_id = next_movie + offset
        genre = pick(genre_names)
        words = [pick(vocab.MOVIE_GENRES[genre]), pick(vocab.TITLE_FILLER_WORDS)]
        title = " ".join(words)
        while title in used_titles:
            title = f"{title} {pick(vocab.TITLE_FILLER_WORDS)}"
        used_titles.add(title)
        overview_words = [
            pick(vocab.MOVIE_GENRES[genre]) for _ in range(6)
        ] + [pick(vocab.TITLE_FILLER_WORDS), country.demonym]
        delta.insert("movies", {
            "id": movie_id,
            "title": title,
            "original_language": pick(languages),
            "overview": " ".join(overview_words),
            "budget": float(rng.uniform(1e6, 9e7)),
            "revenue": float(rng.uniform(1e6, 3e8)),
            "popularity": float(rng.lognormal(1.2, 0.6)),
            "release_year": 2026,
            "collection_id": None,
        })
        director = new_person_id if offset == 0 else int(pick(person_ids))
        delta.insert("movie_directors", {
            "id": link_next["movie_directors"], "movie_id": movie_id,
            "person_id": director,
        })
        link_next["movie_directors"] += 1
        delta.insert("movie_countries", {
            "id": link_next["movie_countries"], "movie_id": movie_id,
            "country_id": int(rng.integers(1, n_countries + 1)),
        })
        link_next["movie_countries"] += 1
        delta.insert("movie_keywords", {
            "id": link_next["movie_keywords"], "movie_id": movie_id,
            "keyword_id": int(rng.integers(1, n_keywords + 1)),
        })
        link_next["movie_keywords"] += 1
        sentiment = (
            vocab.POSITIVE_WORDS if rng.random() < 0.6 else vocab.NEGATIVE_WORDS
        )
        review_words = [pick(sentiment) for _ in range(5)] + [
            pick(vocab.MOVIE_GENRES[genre]) for _ in range(3)
        ]
        delta.insert("reviews", {
            "id": next_review, "movie_id": movie_id,
            "text": " ".join(review_words),
        })
        next_review += 1

    if include_update and len(movies):
        victim = movies.rows[int(rng.integers(0, len(movies)))]
        genre = pick(genre_names)
        new_overview = " ".join(
            [pick(vocab.MOVIE_GENRES[genre]) for _ in range(7)]
            + [pick(vocab.TITLE_FILLER_WORDS)]
        )
        delta.update("movies", victim["id"], overview=new_overview)
    if include_delete and len(reviews):
        victim = reviews.rows[int(rng.integers(0, len(reviews)))]
        delta.delete("reviews", victim["id"])
    return delta


def run_update_benchmark(
    sizes: ExperimentSizes | None = None,
    method: str = "RN",
    n_deltas: int = 3,
    delta_fraction: float = 0.01,
    seed: int | None = None,
    context=None,
    measure_agreement: bool = True,
    influence_threshold: float | None = None,
    churn: bool = False,
) -> tuple[ResultTable, dict[str, Any]]:
    """Run the end-to-end update benchmark; returns (table, JSON payload).

    The default stream is append-only — 1 % of the movie count inserted
    per delta with link rows, reviews and a new person — which is the
    acceptance scenario the ≥5×-vs-cold gate measures.  ``churn=True``
    additionally updates an existing overview and deletes a review per
    delta; value removals shift relation-wide centroid terms, so the
    certified blast radius (and therefore the update cost) grows
    accordingly.

    ``context`` is an optional :class:`repro.experiments.engine.RunContext`
    whose suite cache supplies the trained starting point (a cache hit
    skips extraction, tokenisation and the initial solve almost entirely).
    The returned payload is what ``repro update --out`` writes and what
    the ``incremental_update`` microbenchmark of ``repro bench`` embeds.

    Note: the benchmark mutates the (memoised) dataset's database — do not
    share its context with experiment runs.
    """
    if method not in _METHOD_NAMES:
        raise ExperimentError(
            f"unknown update-benchmark method {method!r}; expected RN or RO"
        )
    from repro.experiments.engine import RunContext

    sizes = sizes or ExperimentSizes.quick()
    ctx = context or RunContext(sizes=sizes)
    solver_method = _METHOD_NAMES[method]
    hyperparams = (
        RetroHyperparameters.paper_rn_default()
        if method == "RN"
        else RetroHyperparameters.paper_ro_default()
    )
    rng = np.random.default_rng(sizes.seed if seed is None else seed)

    # ---- starting point: cached suite, settled to its fixed point ------ #
    started = time.perf_counter()
    dataset, tokenizer, embeddings, base_matrix, settle_report = (
        settled_tmdb_start(ctx, method, hyperparams, solver_method)
    )
    session = ServingSession(embeddings, index_factory=default_index_factory())
    session.index_for(None)
    retrofitter = IncrementalRetrofitter(
        embeddings,
        tokenizer,
        hyperparams=hyperparams,
        method=solver_method,
        base_matrix=base_matrix,
        influence_threshold=influence_threshold,
    )
    setup_seconds = time.perf_counter() - started

    database = dataset.database
    movies_per_delta = max(1, int(round(len(database.table("movies")) * delta_fraction)))

    table = ResultTable(
        name=f"incremental updates ({method}, {movies_per_delta} movies/delta)",
        columns=[
            "delta", "values_added", "values_removed", "active_rows",
            "solve_iters", "retrofit_ms", "serve_ms", "total_ms",
        ],
    )
    deltas_payload: list[dict[str, Any]] = []
    update_seconds: list[float] = []
    last_update = None
    for step in range(max(1, n_deltas)):
        delta = synthesize_tmdb_delta(
            database, rng, movies_per_delta,
            include_update=churn, include_delete=churn,
        )
        started = time.perf_counter()
        update = retrofitter.apply(
            database, delta, iterations=SETTLE_ITERATIONS
        )
        retrofit_seconds = time.perf_counter() - started
        started = time.perf_counter()
        update_stats = session.apply_update(update)
        serve_seconds = time.perf_counter() - started
        total = retrofit_seconds + serve_seconds
        update_seconds.append(total)
        last_update = update
        summary = update.extraction_delta.summary()
        table.add_row(
            delta=step,
            values_added=summary["values_added"],
            values_removed=summary["values_removed"],
            active_rows=update.report.n_active,
            solve_iters=update.report.iterations,
            retrofit_ms=retrofit_seconds * 1000.0,
            serve_ms=serve_seconds * 1000.0,
            total_ms=total * 1000.0,
        )
        deltas_payload.append({
            "operations": delta.summary(),
            "extraction_delta": summary,
            "active_rows": update.report.n_active,
            "solve_iterations": update.report.iterations,
            "retrofit_seconds": retrofit_seconds,
            "serve_seconds": serve_seconds,
            "seconds": total,
            "stage_seconds": dict(update.timings),
            "serving": {
                "rows_added": update_stats.rows_added,
                "rows_removed": update_stats.rows_removed,
                "rows_changed": update_stats.rows_changed,
                "index_updated_in_place": update_stats.index_updated_in_place,
                "cache_entries_kept": update_stats.cache_entries_kept,
            },
        })

    # ---- the cold path the incremental one is measured against --------- #
    started = time.perf_counter()
    cold_extraction = extract_text_values(database)
    cold_base = initialise_vectors(cold_extraction, dataset.embedding, tokenizer)
    cold_solver = RetroSolver(cold_extraction, cold_base.matrix, hyperparams)
    cold_matrix, cold_report = cold_solver.solve(
        method=solver_method, iterations=SETTLE_ITERATIONS
    )
    cold_index = default_index_factory()(cold_matrix)
    cold_seconds = time.perf_counter() - started
    del cold_index
    if last_update is not None:
        last_update.report.cold_runtime_seconds = cold_report.runtime_seconds

    mean_update = float(np.mean(update_seconds))
    speedup = cold_seconds / mean_update if mean_update > 0 else float("inf")

    payload: dict[str, Any] = {
        "method": method,
        "n_values": len(retrofitter.embeddings),
        "movies_per_delta": movies_per_delta,
        "n_deltas": len(update_seconds),
        "setup_seconds": setup_seconds,
        "settle_iterations": settle_report.iterations,
        "seconds": mean_update,
        "update_seconds": update_seconds,
        "cold_rebuild_seconds": cold_seconds,
        "speedup_vs_cold": speedup,
        "deltas": deltas_payload,
    }
    table.add_note(
        f"mean update {mean_update * 1000.0:.1f} ms vs cold re-extract + "
        f"re-solve {cold_seconds * 1000.0:.1f} ms — {speedup:.1f}x"
    )
    if measure_agreement:
        cold_set = TextValueEmbeddingSet(cold_extraction, cold_matrix, method)
        worst = max_cosine_distance(cold_set, retrofitter.embeddings)
        agree = full_and_incremental_agree(
            cold_set, retrofitter.embeddings, tolerance=0.01
        )
        payload["max_cosine_distance_vs_cold"] = worst
        payload["agrees_with_cold"] = bool(agree)
        table.add_note(
            f"max cosine distance to the cold solution: {worst:.2e} "
            f"(agreement: {agree})"
        )
    return table, payload
