"""Shared plumbing for the figure experiments (dataset + suite construction,
repeated classification/imputation trials).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.google_play import GooglePlayDataset, generate_google_play
from repro.datasets.tmdb import TmdbDataset, generate_tmdb
from repro.deepwalk.deepwalk import DeepWalkConfig
from repro.errors import ExperimentError
from repro.experiments.embedding_factory import (
    ALL_METHODS,
    EmbeddingSuite,
    build_embedding_suite,
)
from repro.experiments.runner import ExperimentSizes
from repro.experiments.task_data import LabelledIndices
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.tasks.classification import BinaryClassificationTask
from repro.tasks.imputation import CategoryImputationTask
from repro.tasks.sampling import TrialStatistics, balanced_binary_sample

EMBEDDING_ORDER = ("PV", "MF", "DW", "RO", "RN", "PV+DW", "MF+DW", "RO+DW", "RN+DW")


def default_deepwalk_config(sizes: ExperimentSizes) -> DeepWalkConfig:
    """DeepWalk configuration scaled to the experiment sizes."""
    return DeepWalkConfig(
        dimension=sizes.deepwalk_dimension,
        walk_length=16,
        walks_per_node=8,
        window=4,
        negative_samples=4,
        epochs=2,
        seed=sizes.seed,
    )


def make_tmdb(sizes: ExperimentSizes, num_movies: int | None = None) -> TmdbDataset:
    """Generate the TMDB-shaped dataset for the given sizes."""
    return generate_tmdb(
        num_movies=num_movies or sizes.num_movies,
        seed=sizes.seed,
        embedding_dimension=sizes.embedding_dimension,
    )


def make_google_play(sizes: ExperimentSizes) -> GooglePlayDataset:
    """Generate the Play-Store-shaped dataset for the given sizes."""
    return generate_google_play(
        num_apps=sizes.num_apps,
        seed=sizes.seed,
        embedding_dimension=sizes.embedding_dimension,
    )


def build_suite(
    dataset: TmdbDataset | GooglePlayDataset,
    sizes: ExperimentSizes,
    methods: tuple[str, ...] = ALL_METHODS,
    exclude_columns: tuple[str, ...] = (),
    exclude_relations: tuple[str, ...] = (),
    ro_params: RetroHyperparameters | None = None,
    rn_params: RetroHyperparameters | None = None,
) -> EmbeddingSuite:
    """Train an embedding suite for ``dataset`` with experiment-sized settings."""
    return build_embedding_suite(
        dataset.database,
        dataset.embedding,
        methods=methods,
        exclude_columns=exclude_columns,
        exclude_relations=exclude_relations,
        ro_params=ro_params,
        rn_params=rn_params,
        deepwalk_config=default_deepwalk_config(sizes),
    )


def binary_classification_trials(
    suite: EmbeddingSuite,
    embedding_name: str,
    data: LabelledIndices,
    sizes: ExperimentSizes,
    n_train: int | None = None,
    n_test: int | None = None,
    trials: int | None = None,
) -> TrialStatistics:
    """Repeatedly sample balanced train/test sets and train the Fig.-5a net."""
    embedding_set = suite.get(embedding_name)
    stats = TrialStatistics(embedding_name)
    trials = trials or sizes.trials
    n_train = n_train or sizes.train_samples
    n_test = n_test or sizes.test_samples
    positives = data.indices[data.labels == 1]
    negatives = data.indices[data.labels == 0]
    if positives.size == 0 or negatives.size == 0:
        raise ExperimentError("binary classification needs both classes present")
    for trial in range(trials):
        rng = np.random.default_rng(sizes.seed + 101 * trial)
        # hold out half of the *distinct* text values for testing before any
        # resampling, so train and test never share a director.
        pos_order = rng.permutation(positives)
        neg_order = rng.permutation(negatives)
        pos_split = max(1, len(pos_order) // 2)
        neg_split = max(1, len(neg_order) // 2)
        train_idx, train_labels = balanced_binary_sample(
            pos_order[:pos_split], neg_order[:neg_split], n_train // 2, rng
        )
        test_idx, test_labels = balanced_binary_sample(
            pos_order[pos_split:], neg_order[neg_split:], n_test // 2, rng
        )
        task = BinaryClassificationTask(
            hidden_units=sizes.hidden_units,
            epochs=sizes.epochs,
            seed=sizes.seed + trial,
        )
        outcome = task.train_and_evaluate(
            embedding_set.matrix[train_idx], train_labels,
            embedding_set.matrix[test_idx], test_labels,
        )
        stats.add(outcome.accuracy)
    return stats


def _imputation_split(
    data: LabelledIndices, sizes: ExperimentSizes, trial: int, train_fraction: float
) -> tuple[np.ndarray, np.ndarray]:
    """The (train, test) row positions of one imputation trial.

    Single source of the split schedule: every imputer evaluated on the
    same trial number sees exactly the same held-out values, so the
    network rows and the k-NN baseline rows of Figure 12 stay comparable.
    """
    rng = np.random.default_rng(sizes.seed + 211 * trial)
    order = rng.permutation(len(data))
    split = max(2, int(len(order) * train_fraction))
    train_idx, test_idx = order[:split], order[split:]
    if test_idx.size == 0:
        raise ExperimentError("not enough labelled values for an imputation split")
    return train_idx, test_idx


def imputation_trials(
    suite: EmbeddingSuite,
    embedding_name: str,
    data: LabelledIndices,
    sizes: ExperimentSizes,
    trials: int | None = None,
    train_fraction: float = 0.5,
) -> TrialStatistics:
    """Repeatedly split the labelled values and train the softmax imputer."""
    embedding_set = suite.get(embedding_name)
    stats = TrialStatistics(embedding_name)
    trials = trials or sizes.trials
    for trial in range(trials):
        train_idx, test_idx = _imputation_split(data, sizes, trial, train_fraction)
        task = CategoryImputationTask(
            hidden_units=sizes.imputation_hidden_units,
            epochs=max(100, sizes.epochs),
            patience=40,
            seed=sizes.seed + trial,
        )
        outcome = task.train_and_evaluate(
            embedding_set.matrix[data.indices[train_idx]],
            data.labels[train_idx],
            embedding_set.matrix[data.indices[test_idx]],
            data.labels[test_idx],
            n_classes=data.n_classes,
        )
        stats.add(outcome.accuracy)
    return stats


def knn_imputation_trials(
    suite: EmbeddingSuite,
    embedding_name: str,
    data: LabelledIndices,
    sizes: ExperimentSizes,
    k: int = 5,
    trials: int | None = None,
    train_fraction: float = 0.5,
) -> TrialStatistics:
    """Index-served k-NN imputation on the same splits as :func:`imputation_trials`.

    A training-free baseline: each held-out value takes the majority label
    of its ``k`` most similar labelled neighbours, answered by one batched
    top-k query against a :class:`repro.serving.FlatIndex` (see
    :func:`repro.experiments.task_data.knn_impute_labels`) instead of a raw
    matrix scan.
    """
    from repro.experiments.task_data import knn_impute_labels

    embedding_set = suite.get(embedding_name)
    stats = TrialStatistics(f"KNN-{embedding_name}")
    trials = trials or sizes.trials
    for trial in range(trials):
        train_idx, test_idx = _imputation_split(data, sizes, trial, train_fraction)
        train = LabelledIndices(
            indices=data.indices[train_idx],
            labels=data.labels[train_idx],
            label_names=data.label_names,
        )
        predicted = knn_impute_labels(
            embedding_set, train, data.indices[test_idx], k=k
        )
        stats.add(float(np.mean(predicted == data.labels[test_idx])))
    return stats


def available_embeddings(suite: EmbeddingSuite) -> list[str]:
    """Embedding type names of the suite, in the paper's presentation order."""
    ordered = [name for name in EMBEDDING_ORDER if name in suite.sets]
    extras = [name for name in suite.sets if name not in ordered]
    return ordered + extras
