"""Figure 13: regression of the movie production budget (mean absolute error)."""

from __future__ import annotations

import warnings

import numpy as np

from repro.experiments.common import available_embeddings
from repro.experiments.registry import experiment
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.experiments.task_data import budget_regression_data
from repro.tasks.regression import RegressionTask
from repro.tasks.sampling import TrialStatistics


@experiment(
    name="figure13",
    title="Regression of the movie budget",
    reference="Figure 13",
    datasets=("tmdb",),
    methods=("PV", "MF", "RO", "RN", "DW"),
    description="Budget regression MAE per embedding type (Fig. 5b network).",
)
def run_figure13(ctx) -> ResultTable:
    """Train the budget regressor (Fig. 5b network) on every embedding type."""
    sizes = ctx.sizes
    suite = ctx.suite("tmdb")
    indices, targets = budget_regression_data(suite.extraction, ctx.tmdb())

    table = ResultTable(
        name="Figure 13: regression of the movie budget (MAE, million USD)",
        columns=["embedding", "mae_mean", "mae_std", "trials"],
    )
    for name in available_embeddings(suite):
        embedding_set = suite.get(name)
        stats = TrialStatistics(name)
        for trial in range(sizes.trials):
            rng = np.random.default_rng(sizes.seed + 401 * trial)
            order = rng.permutation(len(indices))
            split = max(2, int(len(order) * 0.9))
            train_idx, test_idx = order[:split], order[split:]
            if test_idx.size == 0:
                continue
            task = RegressionTask(
                hidden_units=(sizes.hidden_units[0],) * 3,
                epochs=max(80, sizes.epochs),
                seed=sizes.seed + trial,
            )
            outcome = task.train_and_evaluate(
                embedding_set.matrix[indices[train_idx]], targets[train_idx],
                embedding_set.matrix[indices[test_idx]], targets[test_idx],
            )
            stats.add(outcome.mae / 1e6)
        table.add_row(
            embedding=name,
            mae_mean=stats.mean,
            mae_std=stats.std,
            trials=stats.count,
        )
    table.add_note(
        "expected (paper): DeepWalk clearly better (lower MAE) than text-based "
        "embeddings; retrofitting slightly better than MF/PV; combinations "
        "roughly on DeepWalk's level"
    )
    return table


def run(sizes: ExperimentSizes | None = None) -> ResultTable:
    """Deprecated shim: delegates to the experiment engine (``figure13``)."""
    warnings.warn(
        "figure13_regression.run() is deprecated; use "
        "repro.experiments.engine.run_experiment('figure13') or `repro run figure13`",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments.engine import run_experiment

    return run_experiment("figure13", sizes=sizes).table


def main() -> None:  # pragma: no cover - console entry point
    from repro.experiments.engine import run_experiment

    print(run_experiment("figure13").table.to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
