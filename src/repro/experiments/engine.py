"""The experiment engine: memoised artifact building + uniform execution.

The paper's figures and tables share one expensive preamble — generate a
dataset, build its graph, train the PV/MF/RO/RN/DW embedding suite.  The
:class:`RunContext` memoises those artifacts:

* datasets are generated once per (kind, scale),
* embedding suites are trained once per configuration fingerprint
  (dataset + sizes + methods + excluded columns/relations + hyperparameters
  + DeepWalk settings) and — when a ``cache_dir`` is given — persisted into
  an :class:`repro.serving.EmbeddingStore` for cross-process reuse,
* serving sessions (and their vector indexes) are built once per
  (suite, embedding) pair.

Running ``figure8`` and ``table2`` back to back therefore trains each suite
exactly once; a second process pointed at the same ``cache_dir`` trains
nothing at all.

:func:`run_experiment` executes one registered
:class:`~repro.experiments.registry.ExperimentSpec` through a context and
wraps the produced table in a :class:`RunResult` (table + wall-clock time +
config fingerprint + cache statistics) that serialises to JSON.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ExperimentError
from repro.experiments.common import (
    build_suite,
    default_deepwalk_config,
    make_google_play,
    make_tmdb,
)
from repro.experiments.embedding_factory import ALL_METHODS, EmbeddingSuite
from repro.experiments.registry import ExperimentRegistry, default_registry
from repro.experiments.runner import ExperimentSizes, ResultTable, json_value
from repro.retrofit.hyperparams import RetroHyperparameters

DATASET_KINDS = ("tmdb", "google_play")

#: Subdirectory of a context's ``cache_dir`` holding suite artifacts.
SUITE_CACHE_SUBDIR = "suites"

#: In-memory suites kept per context.  Grid searches request one suite per
#: grid point; without a bound every single-use suite (several dense
#: matrices each) would stay resident for the whole run.  Shared suites
#: survive eviction in practice because every hit re-freshens them, and an
#: evicted suite is one disk load away when a ``cache_dir`` is set.
SUITE_MEMORY_CAPACITY = 8


def config_fingerprint(payload: Any) -> str:
    """A stable 16-hex-digit digest of a JSON-serialisable config payload."""
    canonical = json.dumps(json_value(payload), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class ContextStats:
    """Build/hit counters of one :class:`RunContext`."""

    dataset_builds: int = 0
    dataset_hits: int = 0
    suite_builds: int = 0
    suite_memory_hits: int = 0
    suite_disk_hits: int = 0
    session_builds: int = 0
    session_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dictionary."""
        return dataclasses.asdict(self)


class RunContext:
    """Shared artifact cache for one engine run (or CLI invocation).

    All experiment runners receive a context and request their datasets and
    embedding suites through it instead of building them ad hoc; that is
    what makes ``repro run all`` train each suite once.
    """

    def __init__(
        self,
        sizes: ExperimentSizes | None = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        self.sizes = sizes or ExperimentSizes.quick()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.stats = ContextStats()
        self._datasets: dict[tuple, Any] = {}
        # insertion/recency-ordered, bounded to SUITE_MEMORY_CAPACITY
        self._suites: OrderedDict[str, EmbeddingSuite] = OrderedDict()
        self._sessions: dict[tuple, Any] = {}
        self._store = None
        if self.cache_dir is not None:
            from repro.serving.store import EmbeddingStore

            self._store = EmbeddingStore(self.cache_dir / SUITE_CACHE_SUBDIR)

    # ------------------------------------------------------------------ #
    # datasets
    # ------------------------------------------------------------------ #
    def dataset(self, kind: str = "tmdb", num_movies: int | None = None):
        """The memoised dataset of one kind (``tmdb`` or ``google_play``)."""
        if kind not in DATASET_KINDS:
            raise ExperimentError(
                f"unknown dataset kind {kind!r}; expected one of {DATASET_KINDS}"
            )
        if kind == "tmdb":
            key = (kind, num_movies or self.sizes.num_movies)
        else:
            if num_movies is not None:
                raise ExperimentError("num_movies only applies to the tmdb dataset")
            key = (kind, self.sizes.num_apps)
        if key not in self._datasets:
            self.stats.dataset_builds += 1
            if kind == "tmdb":
                self._datasets[key] = make_tmdb(self.sizes, num_movies=num_movies)
            else:
                self._datasets[key] = make_google_play(self.sizes)
        else:
            self.stats.dataset_hits += 1
        return self._datasets[key]

    def tmdb(self, num_movies: int | None = None):
        """The memoised TMDB-shaped dataset."""
        return self.dataset("tmdb", num_movies=num_movies)

    def google_play(self):
        """The memoised Play-Store-shaped dataset."""
        return self.dataset("google_play")

    # ------------------------------------------------------------------ #
    # embedding suites
    # ------------------------------------------------------------------ #
    def _suite_payload(
        self,
        dataset: str,
        methods: tuple[str, ...],
        exclude_columns: tuple[str, ...],
        exclude_relations: tuple[str, ...],
        ro_params: RetroHyperparameters | None,
        rn_params: RetroHyperparameters | None,
    ) -> dict[str, Any]:
        """The fingerprint source: everything that shapes a suite build."""
        sizes = self.sizes
        scale = (
            {"num_movies": sizes.num_movies}
            if dataset == "tmdb"
            else {"num_apps": sizes.num_apps}
        )
        return {
            "dataset": dataset,
            "scale": scale,
            "seed": sizes.seed,
            "embedding_dimension": sizes.embedding_dimension,
            "methods": sorted(methods),
            "exclude_columns": sorted(exclude_columns),
            "exclude_relations": sorted(exclude_relations),
            "ro_params": dataclasses.asdict(ro_params) if ro_params else None,
            "rn_params": dataclasses.asdict(rn_params) if rn_params else None,
            "deepwalk": dataclasses.asdict(default_deepwalk_config(sizes)),
        }

    def suite(
        self,
        dataset: str = "tmdb",
        methods: tuple[str, ...] = ALL_METHODS,
        exclude_columns: tuple[str, ...] = (),
        exclude_relations: tuple[str, ...] = (),
        ro_params: RetroHyperparameters | None = None,
        rn_params: RetroHyperparameters | None = None,
        fresh: bool = False,
    ) -> EmbeddingSuite:
        """The trained embedding suite for one configuration.

        Training happens at most once per configuration fingerprint: repeat
        requests are answered from memory, and — with a ``cache_dir`` —
        from the on-disk artifact store across processes.  ``fresh=True``
        bypasses both caches (for runtime-measuring experiments that must
        really train).
        """
        suite, _ = self.suite_with_fingerprint(
            dataset=dataset,
            methods=methods,
            exclude_columns=exclude_columns,
            exclude_relations=exclude_relations,
            ro_params=ro_params,
            rn_params=rn_params,
            fresh=fresh,
        )
        return suite

    def suite_with_fingerprint(
        self,
        dataset: str = "tmdb",
        methods: tuple[str, ...] = ALL_METHODS,
        exclude_columns: tuple[str, ...] = (),
        exclude_relations: tuple[str, ...] = (),
        ro_params: RetroHyperparameters | None = None,
        rn_params: RetroHyperparameters | None = None,
        fresh: bool = False,
    ) -> tuple[EmbeddingSuite, str]:
        """Like :meth:`suite`, additionally returning the config fingerprint."""
        payload = self._suite_payload(
            dataset, methods, exclude_columns, exclude_relations, ro_params, rn_params
        )
        fingerprint = config_fingerprint(payload)

        def build() -> EmbeddingSuite:
            self.stats.suite_builds += 1
            return build_suite(
                self.dataset(dataset),
                self.sizes,
                methods=methods,
                exclude_columns=exclude_columns,
                exclude_relations=exclude_relations,
                ro_params=ro_params,
                rn_params=rn_params,
            )

        if fresh:
            return build(), fingerprint
        cached = self._suites.get(fingerprint)
        if cached is not None:
            self.stats.suite_memory_hits += 1
            self._suites.move_to_end(fingerprint)
            return cached, fingerprint
        if self._store is not None:
            # cross-process critical section: while the per-fingerprint
            # lock is held, either another worker's committed artifact is
            # loaded, or this process trains and commits it — two workers
            # pointed at one cache dir never train the same suite
            from repro.util.locks import FileLock

            with FileLock(self._suite_lock_path(fingerprint)):
                loaded = self._load_suite_artifact(fingerprint, methods, payload)
                if loaded is not None:
                    self.stats.suite_disk_hits += 1
                    self._remember_suite(fingerprint, loaded)
                    return loaded, fingerprint
                suite = build()
                self._save_suite_artifact(fingerprint, suite, payload)
        else:
            suite = build()
        self._remember_suite(fingerprint, suite)
        return suite, fingerprint

    def _remember_suite(self, fingerprint: str, suite: EmbeddingSuite) -> None:
        self._suites[fingerprint] = suite
        self._suites.move_to_end(fingerprint)
        while len(self._suites) > SUITE_MEMORY_CAPACITY:
            self._suites.popitem(last=False)

    def _artifact_name(self, fingerprint: str) -> str:
        return f"suite_{fingerprint}"

    def _suite_lock_path(self, fingerprint: str) -> Path:
        """The lock file guarding one suite fingerprint's build+save."""
        assert self.cache_dir is not None
        return self.cache_dir / SUITE_CACHE_SUBDIR / "locks" / f"{fingerprint}.lock"

    def _load_suite_artifact(
        self,
        fingerprint: str,
        methods: tuple[str, ...],
        payload: dict[str, Any],
    ) -> EmbeddingSuite | None:
        if self._store is None:
            return None
        name = self._artifact_name(fingerprint)
        if not self._store.has_artifact(name):
            return None
        # sanity guards: a (vanishingly unlikely) fingerprint collision, a
        # truncated artifact or one written by an older store format must
        # cause a rebuild, not wrong embeddings or a crashed run — the
        # artifact stores its full fingerprint source for comparison
        from repro.errors import StoreFormatError

        try:
            if self._store.suite_config(name) != json_value(payload):
                return None
            suite = self._store.load_suite(name)
        except StoreFormatError:
            return None
        if not set(methods) <= set(suite.sets):
            return None
        return suite

    def _save_suite_artifact(
        self, fingerprint: str, suite: EmbeddingSuite, payload: dict[str, Any]
    ) -> None:
        if self._store is None:
            return
        self._store.save_suite(
            self._artifact_name(fingerprint), suite, config=json_value(payload)
        )

    # ------------------------------------------------------------------ #
    # serving sessions
    # ------------------------------------------------------------------ #
    def serving_session(
        self,
        embedding_name: str,
        dataset: str = "tmdb",
        cache_size: int = 1024,
        **suite_kwargs: Any,
    ):
        """A memoised :class:`repro.serving.ServingSession` over one trained set.

        The session (and the vector indexes it builds lazily) is shared by
        every caller requesting the same (suite configuration, embedding)
        pair, so an experiment's similarity lookups never rebuild an index
        another trial already paid for.
        """
        suite, fingerprint = self.suite_with_fingerprint(dataset=dataset, **suite_kwargs)
        key = (fingerprint, embedding_name, cache_size)
        if key not in self._sessions:
            self.stats.session_builds += 1
            self._sessions[key] = suite.serving_session(
                embedding_name, cache_size=cache_size
            )
        else:
            self.stats.session_hits += 1
        return self._sessions[key]


@dataclass
class RunResult:
    """The uniform product of one experiment run."""

    experiment: str
    reference: str
    table: ResultTable
    seconds: float
    fingerprint: str
    sizes: ExperimentSizes
    options: dict[str, Any] = field(default_factory=dict)
    stats: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable representation of this result."""
        return {
            "experiment": self.experiment,
            "reference": self.reference,
            "table": self.table.to_dict(),
            "seconds": float(self.seconds),
            "fingerprint": self.fingerprint,
            "sizes": self.sizes.to_dict(),
            "options": json_value(self.options),
            "stats": dict(self.stats),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """This result serialised as JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            return cls(
                experiment=str(payload["experiment"]),
                reference=str(payload.get("reference", "")),
                table=ResultTable.from_dict(payload["table"]),
                seconds=float(payload["seconds"]),
                fingerprint=str(payload["fingerprint"]),
                sizes=ExperimentSizes.from_dict(payload["sizes"]),
                options=dict(payload.get("options", {})),
                stats=dict(payload.get("stats", {})),
            )
        except (KeyError, TypeError) as error:
            raise ExperimentError(f"malformed run result payload: {error}") from error

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Rebuild a result from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ExperimentError(f"run result is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ExperimentError("run result JSON must hold an object")
        return cls.from_dict(payload)

    def save(self, path: str | Path) -> Path:
        """Write this result as ``<path>`` (JSON)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path


def run_experiment(
    name: str,
    sizes: ExperimentSizes | None = None,
    cache_dir: str | Path | None = None,
    options: dict[str, Any] | None = None,
    context: RunContext | None = None,
    registry: ExperimentRegistry | None = None,
) -> RunResult:
    """Run one registered experiment and wrap its table in a :class:`RunResult`.

    Pass an explicit ``context`` to share memoised artifacts across several
    calls (that is how :func:`run_experiments` trains each suite once);
    otherwise a fresh context is created from ``sizes``/``cache_dir``.
    """
    registry = registry or default_registry()
    spec = registry.get(name)
    if context is None:
        context = RunContext(sizes=sizes, cache_dir=cache_dir)
    elif sizes is not None or cache_dir is not None:
        raise ExperimentError(
            "pass either an explicit context or sizes/cache_dir, not both"
        )
    merged = spec.options(options)
    started = time.perf_counter()
    table = spec.runner(context, **merged)
    seconds = time.perf_counter() - started
    fingerprint = config_fingerprint(
        {
            "experiment": name,
            "sizes": context.sizes.to_dict(),
            "options": merged,
        }
    )
    return RunResult(
        experiment=name,
        reference=spec.reference,
        table=table,
        seconds=seconds,
        fingerprint=fingerprint,
        sizes=context.sizes,
        options=json_value(merged),
        stats=context.stats.as_dict(),
    )


def run_experiments(
    names: list[str] | tuple[str, ...],
    sizes: ExperimentSizes | None = None,
    cache_dir: str | Path | None = None,
    context: RunContext | None = None,
    registry: ExperimentRegistry | None = None,
) -> list[RunResult]:
    """Run several experiments through one shared :class:`RunContext`.

    Validates every name up front (no partial run over a typo), then
    executes in the given order; each result's ``stats`` snapshot reflects
    the shared context after that experiment finished.
    """
    registry = registry or default_registry()
    for name in names:
        registry.get(name)
    if context is None:
        context = RunContext(sizes=sizes, cache_dir=cache_dir)
    elif sizes is not None or cache_dir is not None:
        raise ExperimentError(
            "pass either an explicit context or sizes/cache_dir, not both"
        )
    return [
        run_experiment(name, context=context, registry=registry) for name in names
    ]


def _parallel_worker(
    name: str,
    sizes_payload: dict[str, Any],
    cache_dir: str | None,
    options: dict[str, Any] | None,
) -> dict[str, Any]:
    """Executed in a worker process: one experiment, one fresh context.

    Runs against the default registry (spec runners are module-level
    functions, so nothing needs to cross the process boundary but the
    experiment name) and returns the result as a plain dictionary.
    """
    result = run_experiment(
        name,
        sizes=ExperimentSizes.from_dict(sizes_payload),
        cache_dir=cache_dir,
        options=options,
    )
    return result.to_dict()


def run_experiments_parallel(
    names: list[str] | tuple[str, ...],
    sizes: ExperimentSizes | None = None,
    cache_dir: str | Path | None = None,
    jobs: int = 2,
) -> list[RunResult]:
    """Run registered experiments in ``jobs`` worker processes.

    Every worker executes whole experiments through its own
    :class:`RunContext`; with a ``cache_dir`` all workers share the
    on-disk suite cache, and the per-fingerprint file lock inside
    :meth:`RunContext.suite_with_fingerprint` guarantees each suite
    configuration is trained by exactly one worker (the others block
    briefly and load the committed artifact).  All training is seeded, so
    the produced tables are identical to a serial run.

    Only default-registry experiments can run in parallel — custom
    registries would not exist in the worker processes.
    """
    if jobs < 1:
        raise ExperimentError("jobs must be at least 1")
    registry = default_registry()
    for name in names:
        registry.get(name)
    sizes = sizes or ExperimentSizes.quick()
    if jobs == 1 or len(names) <= 1:
        return [
            RunResult.from_dict(
                _parallel_worker(
                    name,
                    sizes.to_dict(),
                    str(cache_dir) if cache_dir is not None else None,
                    None,
                )
            )
            for name in names
        ]
    from concurrent.futures import ProcessPoolExecutor

    cache = str(cache_dir) if cache_dir is not None else None
    with ProcessPoolExecutor(max_workers=min(jobs, len(names))) as pool:
        futures = [
            pool.submit(_parallel_worker, name, sizes.to_dict(), cache, None)
            for name in names
        ]
        return [RunResult.from_dict(future.result()) for future in futures]
