"""Figure 9: classification accuracy for increasing training-sample sizes."""

from __future__ import annotations

from repro.experiments.common import (
    binary_classification_trials,
    build_suite,
    make_tmdb,
)
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.experiments.task_data import director_classification_data

DEFAULT_EMBEDDINGS = ("PV", "MF", "DW", "RO", "RN")


def run(
    sizes: ExperimentSizes | None = None,
    sample_sizes: tuple[int, ...] = (40, 80, 160),
    embeddings: tuple[str, ...] = DEFAULT_EMBEDDINGS,
) -> ResultTable:
    """Train the director classifier with varying numbers of training samples."""
    sizes = sizes or ExperimentSizes.quick()
    dataset = make_tmdb(sizes)
    suite = build_suite(dataset, sizes)
    data = director_classification_data(suite.extraction, dataset)

    table = ResultTable(
        name="Figure 9: accuracy vs training sample size",
        columns=["embedding", "train_samples", "accuracy_mean", "accuracy_std"],
    )
    for name in embeddings:
        if name not in suite.sets:
            continue
        for n_train in sample_sizes:
            stats = binary_classification_trials(
                suite, name, data, sizes,
                n_train=n_train, n_test=sizes.test_samples,
            )
            table.add_row(
                embedding=name,
                train_samples=n_train,
                accuracy_mean=stats.mean,
                accuracy_std=stats.std,
            )
    table.add_note(
        "expected: plain word vectors (PV) depend least on the sample size, "
        "DeepWalk (DW) needs the most training data"
    )
    return table


def main() -> None:  # pragma: no cover - console entry point
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
