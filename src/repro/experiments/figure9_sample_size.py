"""Figure 9: classification accuracy for increasing training-sample sizes."""

from __future__ import annotations

import warnings

from repro.experiments.common import binary_classification_trials
from repro.experiments.registry import experiment
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.experiments.task_data import director_classification_data

DEFAULT_EMBEDDINGS = ("PV", "MF", "DW", "RO", "RN")


@experiment(
    name="figure9",
    title="Accuracy vs training sample size",
    reference="Figure 9",
    datasets=("tmdb",),
    methods=("PV", "MF", "RO", "RN", "DW"),
    description="Director classifier accuracy as the training set grows.",
    sample_sizes=(40, 80, 160),
    embeddings=DEFAULT_EMBEDDINGS,
)
def run_figure9(
    ctx,
    sample_sizes: tuple[int, ...] = (40, 80, 160),
    embeddings: tuple[str, ...] = DEFAULT_EMBEDDINGS,
) -> ResultTable:
    """Train the director classifier with varying numbers of training samples.

    Reuses the shared TMDB suite from the run context, so running this
    after ``figure8`` trains nothing new.
    """
    suite = ctx.suite("tmdb")
    data = director_classification_data(suite.extraction, ctx.tmdb())

    table = ResultTable(
        name="Figure 9: accuracy vs training sample size",
        columns=["embedding", "train_samples", "accuracy_mean", "accuracy_std"],
    )
    for name in embeddings:
        if name not in suite.sets:
            continue
        for n_train in sample_sizes:
            stats = binary_classification_trials(
                suite, name, data, ctx.sizes,
                n_train=n_train, n_test=ctx.sizes.test_samples,
            )
            table.add_row(
                embedding=name,
                train_samples=n_train,
                accuracy_mean=stats.mean,
                accuracy_std=stats.std,
            )
    table.add_note(
        "expected: plain word vectors (PV) depend least on the sample size, "
        "DeepWalk (DW) needs the most training data"
    )
    return table


def run(
    sizes: ExperimentSizes | None = None,
    sample_sizes: tuple[int, ...] = (40, 80, 160),
    embeddings: tuple[str, ...] = DEFAULT_EMBEDDINGS,
) -> ResultTable:
    """Deprecated shim: delegates to the experiment engine (``figure9``)."""
    warnings.warn(
        "figure9_sample_size.run() is deprecated; use "
        "repro.experiments.engine.run_experiment('figure9') or `repro run figure9`",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments.engine import run_experiment

    return run_experiment(
        "figure9",
        sizes=sizes,
        options={"sample_sizes": sample_sizes, "embeddings": embeddings},
    ).table


def main() -> None:  # pragma: no cover - console entry point
    from repro.experiments.engine import run_experiment

    print(run_experiment("figure9").table.to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
