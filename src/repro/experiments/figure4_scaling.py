"""Figure 4: runtime of relational retrofitting vs. database size (RO vs RN)."""

from __future__ import annotations

import time

from repro.datasets.tmdb import build_movie_embedding_space, generate_tmdb
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.retrofit.extraction import extract_text_values
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.initialization import initialise_vectors
from repro.retrofit.retro import RetroSolver
from repro.text.tokenizer import Tokenizer


def run(
    sizes: ExperimentSizes | None = None,
    movie_counts: tuple[int, ...] = (50, 100, 200, 400),
) -> ResultTable:
    """Measure RO and RN runtime for TMDB databases of increasing size."""
    sizes = sizes or ExperimentSizes.quick()
    embedding = build_movie_embedding_space(
        dimension=sizes.embedding_dimension, seed=sizes.seed
    ).build()
    tokenizer = Tokenizer(embedding)
    table = ResultTable(
        name="Figure 4: retrofitting runtime vs database size",
        columns=["num_movies", "text_values", "relation_pairs", "ro_seconds", "rn_seconds"],
    )
    for num_movies in movie_counts:
        dataset = generate_tmdb(
            num_movies=num_movies, seed=sizes.seed, embedding=embedding
        )
        extraction = extract_text_values(dataset.database)
        base = initialise_vectors(extraction, embedding, tokenizer)

        start = time.perf_counter()
        RetroSolver(
            extraction, base.matrix, RetroHyperparameters.paper_ro_default()
        ).solve_optimization(iterations=10)
        ro_seconds = time.perf_counter() - start

        start = time.perf_counter()
        RetroSolver(
            extraction, base.matrix, RetroHyperparameters.paper_rn_default()
        ).solve_series(iterations=10)
        rn_seconds = time.perf_counter() - start

        table.add_row(
            num_movies=num_movies,
            text_values=len(extraction),
            relation_pairs=extraction.relation_count(),
            ro_seconds=ro_seconds,
            rn_seconds=rn_seconds,
        )
    table.add_note(
        "expected: both curves grow roughly linearly with the number of text "
        "values; RN is several times faster than RO"
    )
    return table


def main() -> None:  # pragma: no cover - console entry point
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
