"""Figure 4: runtime of relational retrofitting vs. database size (RO vs RN)."""

from __future__ import annotations

import time
import warnings

from repro.datasets.tmdb import build_movie_embedding_space, generate_tmdb
from repro.experiments.registry import experiment
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.retrofit.extraction import extract_text_values
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.initialization import initialise_vectors
from repro.retrofit.retro import RetroSolver
from repro.text.tokenizer import Tokenizer


@experiment(
    name="figure4",
    title="Retrofitting runtime vs database size",
    reference="Figure 4",
    datasets=("tmdb",),
    methods=("RO", "RN"),
    description=(
        "RO and RN solver wall-clock on growing TMDB databases; always "
        "trains fresh (runtime measurement, never cache-served)."
    ),
    movie_counts=(50, 100, 200, 400),
)
def run_figure4(
    ctx, movie_counts: tuple[int, ...] = (50, 100, 200, 400)
) -> ResultTable:
    """Measure RO and RN runtime for TMDB databases of increasing size.

    Builds its own solver runs on purpose — serving a runtime figure from
    the artifact cache would be meaningless.
    """
    sizes = ctx.sizes
    embedding = build_movie_embedding_space(
        dimension=sizes.embedding_dimension, seed=sizes.seed
    ).build()
    tokenizer = Tokenizer(embedding)
    table = ResultTable(
        name="Figure 4: retrofitting runtime vs database size",
        columns=["num_movies", "text_values", "relation_pairs", "ro_seconds", "rn_seconds"],
    )
    for num_movies in movie_counts:
        dataset = generate_tmdb(
            num_movies=num_movies, seed=sizes.seed, embedding=embedding
        )
        extraction = extract_text_values(dataset.database)
        base = initialise_vectors(extraction, embedding, tokenizer)

        start = time.perf_counter()
        RetroSolver(
            extraction, base.matrix, RetroHyperparameters.paper_ro_default()
        ).solve_optimization(iterations=10)
        ro_seconds = time.perf_counter() - start

        start = time.perf_counter()
        RetroSolver(
            extraction, base.matrix, RetroHyperparameters.paper_rn_default()
        ).solve_series(iterations=10)
        rn_seconds = time.perf_counter() - start

        table.add_row(
            num_movies=num_movies,
            text_values=len(extraction),
            relation_pairs=extraction.relation_count(),
            ro_seconds=ro_seconds,
            rn_seconds=rn_seconds,
        )
    table.add_note(
        "expected: both curves grow roughly linearly with the number of text "
        "values; RN is several times faster than RO"
    )
    return table


def run(
    sizes: ExperimentSizes | None = None,
    movie_counts: tuple[int, ...] = (50, 100, 200, 400),
) -> ResultTable:
    """Deprecated shim: delegates to the experiment engine (``figure4``)."""
    warnings.warn(
        "figure4_scaling.run() is deprecated; use "
        "repro.experiments.engine.run_experiment('figure4') or `repro run figure4`",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments.engine import run_experiment

    return run_experiment(
        "figure4", sizes=sizes, options={"movie_counts": movie_counts}
    ).table


def main() -> None:  # pragma: no cover - console entry point
    from repro.experiments.engine import run_experiment

    print(run_experiment("figure4").table.to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
