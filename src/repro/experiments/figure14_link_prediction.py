"""Figure 14: link prediction for the movie→genre relation."""

from __future__ import annotations

import warnings

import numpy as np

from repro.experiments.common import available_embeddings
from repro.experiments.registry import experiment
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.experiments.task_data import (
    GENRE_CATEGORY,
    genre_link_pairs,
    genre_relation_names,
)
from repro.tasks.link_prediction import LinkPredictionTask
from repro.tasks.sampling import TrialStatistics

#: Shortlist size of the serving-side candidate-retrieval metric.
RETRIEVAL_K = 3


def _retrieval_hit_rate(ctx, embedding_name, excluded, pairs, suite) -> float:
    """Fraction of positive pairs whose true genre is in the served top-k.

    The genre shortlist is answered by the run context's shared
    :class:`repro.serving.ServingSession` (batched index top-k over the
    ``genres.name`` scope), not by a raw matrix scan — the candidate
    -generation idiom of embedding-backed entity linkers.
    """
    session = ctx.serving_session(
        embedding_name, dataset="tmdb", exclude_relations=excluded
    )
    positives = pairs.labels == 1
    if not positives.any():
        return float("nan")
    sources = session.embeddings.matrix[pairs.source_indices[positives]]
    shortlists = session.topk_batch(sources, k=RETRIEVAL_K, category=GENRE_CATEGORY)
    records = suite.extraction.records
    hits = 0
    for shortlist, target in zip(shortlists, pairs.target_indices[positives]):
        true_genre = records[int(target)].text
        if any(text == true_genre for _, text, _ in shortlist):
            hits += 1
    return hits / int(positives.sum())


@experiment(
    name="figure14",
    title="Link prediction for movie genres",
    reference="Figure 14",
    datasets=("tmdb",),
    methods=("PV", "MF", "RO", "RN", "DW"),
    description=(
        "Two-tower edge classifier plus index-served genre retrieval; the "
        "movie→genre relation is hidden during embedding training."
    ),
    n_pairs=None,
)
def run_figure14(ctx, n_pairs: int | None = None) -> ResultTable:
    """Train the edge classifier (Fig. 5c network) on every embedding type.

    The embeddings are trained *without* the movie→genre relation, then a
    two-tower network predicts whether a (movie, genre) edge exists, using an
    equal number of held-out positive pairs and sampled negatives.  The
    ``retrieval_hit{k}`` column reports how often the true genre appears in
    the serving session's top-``k`` genre shortlist for a positive movie.
    """
    sizes = ctx.sizes
    dataset = ctx.tmdb()
    excluded = genre_relation_names(dataset.database)
    suite = ctx.suite("tmdb", exclude_relations=excluded)
    n_pairs = n_pairs or max(300, 2 * sizes.train_samples)

    table = ResultTable(
        name="Figure 14: link prediction for movie genres",
        columns=[
            "embedding", "accuracy_mean", "accuracy_std", "trials",
            f"retrieval_hit{RETRIEVAL_K}",
        ],
    )
    for name in available_embeddings(suite):
        embedding_set = suite.get(name)
        stats = TrialStatistics(name)
        retrieval_pairs = None
        for trial in range(sizes.trials):
            rng = np.random.default_rng(sizes.seed + 501 * trial)
            pairs = genre_link_pairs(suite.extraction, dataset, n_pairs, rng)
            if retrieval_pairs is None:
                retrieval_pairs = pairs
            order = rng.permutation(len(pairs))
            split = max(2, len(order) // 2)
            train_idx, test_idx = order[:split], order[split:]
            if test_idx.size == 0:
                continue
            task = LinkPredictionTask(
                hidden_units=sizes.hidden_units[0],
                epochs=max(100, sizes.epochs),
                seed=sizes.seed + trial,
            )
            outcome = task.train_and_evaluate(
                embedding_set.matrix[pairs.source_indices[train_idx]],
                embedding_set.matrix[pairs.target_indices[train_idx]],
                pairs.labels[train_idx],
                embedding_set.matrix[pairs.source_indices[test_idx]],
                embedding_set.matrix[pairs.target_indices[test_idx]],
                pairs.labels[test_idx],
            )
            stats.add(outcome.accuracy)
        hit_rate = (
            _retrieval_hit_rate(ctx, name, excluded, retrieval_pairs, suite)
            if retrieval_pairs is not None
            else float("nan")
        )
        table.add_row(
            embedding=name,
            accuracy_mean=stats.mean,
            accuracy_std=stats.std,
            trials=stats.count,
            **{f"retrieval_hit{RETRIEVAL_K}": hit_rate},
        )
    table.add_note(
        "expected (paper): DeepWalk fails (genre nodes are structurally "
        "indistinguishable once the relation is hidden); retrofitted vectors "
        "beat plain word vectors; combinations with DW help the text-based "
        "approaches"
    )
    return table


def run(sizes: ExperimentSizes | None = None, n_pairs: int | None = None) -> ResultTable:
    """Deprecated shim: delegates to the experiment engine (``figure14``)."""
    warnings.warn(
        "figure14_link_prediction.run() is deprecated; use "
        "repro.experiments.engine.run_experiment('figure14') or `repro run figure14`",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments.engine import run_experiment

    return run_experiment("figure14", sizes=sizes, options={"n_pairs": n_pairs}).table


def main() -> None:  # pragma: no cover - console entry point
    from repro.experiments.engine import run_experiment

    print(run_experiment("figure14").table.to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
