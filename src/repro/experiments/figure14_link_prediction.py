"""Figure 14: link prediction for the movie→genre relation."""

from __future__ import annotations

import numpy as np

from repro.experiments.common import available_embeddings, build_suite, make_tmdb
from repro.experiments.runner import ExperimentSizes, ResultTable
from repro.experiments.task_data import genre_link_pairs, genre_relation_names
from repro.tasks.link_prediction import LinkPredictionTask
from repro.tasks.sampling import TrialStatistics


def run(sizes: ExperimentSizes | None = None, n_pairs: int | None = None) -> ResultTable:
    """Train the edge classifier (Fig. 5c network) on every embedding type.

    The embeddings are trained *without* the movie→genre relation, then a
    two-tower network predicts whether a (movie, genre) edge exists, using an
    equal number of held-out positive pairs and sampled negatives.
    """
    sizes = sizes or ExperimentSizes.quick()
    dataset = make_tmdb(sizes)
    excluded = genre_relation_names(dataset.database)
    suite = build_suite(dataset, sizes, exclude_relations=excluded)
    n_pairs = n_pairs or max(300, 2 * sizes.train_samples)

    table = ResultTable(
        name="Figure 14: link prediction for movie genres",
        columns=["embedding", "accuracy_mean", "accuracy_std", "trials"],
    )
    for name in available_embeddings(suite):
        embedding_set = suite.get(name)
        stats = TrialStatistics(name)
        for trial in range(sizes.trials):
            rng = np.random.default_rng(sizes.seed + 501 * trial)
            pairs = genre_link_pairs(suite.extraction, dataset, n_pairs, rng)
            order = rng.permutation(len(pairs))
            split = max(2, len(order) // 2)
            train_idx, test_idx = order[:split], order[split:]
            if test_idx.size == 0:
                continue
            task = LinkPredictionTask(
                hidden_units=sizes.hidden_units[0],
                epochs=max(100, sizes.epochs),
                seed=sizes.seed + trial,
            )
            outcome = task.train_and_evaluate(
                embedding_set.matrix[pairs.source_indices[train_idx]],
                embedding_set.matrix[pairs.target_indices[train_idx]],
                pairs.labels[train_idx],
                embedding_set.matrix[pairs.source_indices[test_idx]],
                embedding_set.matrix[pairs.target_indices[test_idx]],
                pairs.labels[test_idx],
            )
            stats.add(outcome.accuracy)
        table.add_row(
            embedding=name,
            accuracy_mean=stats.mean,
            accuracy_std=stats.std,
            trials=stats.count,
        )
    table.add_note(
        "expected (paper): DeepWalk fails (genre nodes are structurally "
        "indistinguishable once the relation is hidden); retrofitted vectors "
        "beat plain word vectors; combinations with DW help the text-based "
        "approaches"
    )
    return table


def main() -> None:  # pragma: no cover - console entry point
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
