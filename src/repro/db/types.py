"""Column types and value coercion for the in-memory relational engine."""

from __future__ import annotations

import enum
import json
from typing import Any

from repro.errors import IntegrityError


class ColumnType(enum.Enum):
    """Supported column types.

    The engine intentionally keeps the type system small: the RETRO
    preprocessing step only distinguishes *text* columns (which receive
    embeddings) from everything else (which may be used as numeric targets
    for regression or as keys).
    """

    TEXT = "text"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    JSON = "json"

    @property
    def is_textual(self) -> bool:
        """Whether values of this type take part in the retrofitting."""
        return self is ColumnType.TEXT

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type can be used as regression targets."""
        return self in (ColumnType.INTEGER, ColumnType.FLOAT)


_TRUE_STRINGS = {"true", "t", "yes", "y", "1"}
_FALSE_STRINGS = {"false", "f", "no", "n", "0"}


def coerce_value(value: Any, column_type: ColumnType) -> Any:
    """Coerce ``value`` to the Python representation of ``column_type``.

    ``None`` is passed through untouched; nullability is enforced at the
    schema level, not here.  Raises :class:`IntegrityError` when the value
    cannot be represented in the requested type.
    """
    if value is None:
        return None
    try:
        if column_type is ColumnType.TEXT:
            return str(value)
        if column_type is ColumnType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and not value.is_integer():
                raise ValueError(f"non-integral float {value!r}")
            return int(value)
        if column_type is ColumnType.FLOAT:
            return float(value)
        if column_type is ColumnType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)):
                return bool(value)
            text = str(value).strip().lower()
            if text in _TRUE_STRINGS:
                return True
            if text in _FALSE_STRINGS:
                return False
            raise ValueError(f"not a boolean literal: {value!r}")
        if column_type is ColumnType.JSON:
            if isinstance(value, (dict, list)):
                return value
            return json.loads(str(value))
    except (ValueError, TypeError, json.JSONDecodeError) as exc:
        raise IntegrityError(
            f"cannot coerce {value!r} to {column_type.value}: {exc}"
        ) from exc
    raise IntegrityError(f"unknown column type: {column_type!r}")


def infer_column_type(values: list[Any]) -> ColumnType:
    """Infer the most specific :class:`ColumnType` that fits all ``values``.

    Empty strings and ``None`` are treated as nulls and ignored.  When no
    non-null values are present the column defaults to TEXT.
    """
    non_null = [v for v in values if v is not None and v != ""]
    if not non_null:
        return ColumnType.TEXT
    for candidate in (
        ColumnType.BOOLEAN,
        ColumnType.INTEGER,
        ColumnType.FLOAT,
        ColumnType.JSON,
    ):
        if _all_coercible(non_null, candidate):
            return candidate
    return ColumnType.TEXT


def _all_coercible(values: list[Any], column_type: ColumnType) -> bool:
    for value in values:
        try:
            coerce_value(value, column_type)
        except IntegrityError:
            return False
    return True
