"""CSV import/export for the in-memory relational engine.

The original RETRO evaluation imports the Kaggle TMDB and Google Play CSV
files into PostgreSQL.  This module provides the equivalent ingestion path
for the substrate engine: type inference, header handling and null handling.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.db.database import Database, build_table_schema
from repro.db.schema import ForeignKey, TableSchema
from repro.db.table import Table
from repro.db.types import ColumnType, coerce_value, infer_column_type
from repro.errors import SchemaError

_NULL_LITERALS = {"", "null", "none", "na", "n/a"}


def _normalise_cell(cell: str) -> Any:
    if cell is None or cell.strip().lower() in _NULL_LITERALS:
        return None
    return cell


def read_csv_table(
    path: str | Path,
    name: str | None = None,
    primary_key: str | None = None,
    foreign_keys: list[ForeignKey] | None = None,
    column_types: dict[str, ColumnType] | None = None,
) -> Table:
    """Read a CSV file into a standalone :class:`Table`.

    Column types are inferred from the data unless given in ``column_types``.
    """
    path = Path(path)
    table_name = name or path.stem
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path} is empty") from None
        raw_rows = [
            [_normalise_cell(cell) for cell in row]
            for row in reader
            if any(cell.strip() for cell in row)
        ]
    if not header:
        raise SchemaError(f"CSV file {path} has an empty header")
    overrides = column_types or {}
    types: list[ColumnType] = []
    for index, column in enumerate(header):
        if column in overrides:
            types.append(overrides[column])
        else:
            values = [row[index] if index < len(row) else None for row in raw_rows]
            types.append(infer_column_type(values))
    schema = build_table_schema(
        table_name,
        list(zip(header, types)),
        primary_key=primary_key,
        foreign_keys=foreign_keys,
    )
    table = Table(schema)
    for row in raw_rows:
        record = {
            column: coerce_value(row[index] if index < len(row) else None, types[index])
            for index, column in enumerate(header)
        }
        table.insert(record)
    return table


def write_csv_table(table: Table, path: str | Path) -> Path:
    """Write ``table`` to ``path`` as CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns = table.schema.column_names
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for row in table:
            writer.writerow(["" if row[c] is None else row[c] for c in columns])
    return path


def load_csv_directory(
    directory: str | Path,
    database_name: str = "csv_database",
    schemas: dict[str, TableSchema] | None = None,
) -> Database:
    """Load every ``*.csv`` file in ``directory`` into a new database.

    When ``schemas`` provides a :class:`TableSchema` for a file stem, that
    schema is used (allowing keys and foreign keys); otherwise the schema is
    inferred.  Files are loaded in alphabetical order, so schemas with
    foreign keys must reference tables whose files sort earlier.
    """
    directory = Path(directory)
    database = Database(database_name)
    schemas = schemas or {}
    for path in sorted(directory.glob("*.csv")):
        stem = path.stem
        if stem in schemas:
            schema = schemas[stem]
            database.create_table(schema)
            raw = read_csv_table(path, name=stem)
            for row in raw:
                database.insert(stem, {
                    column: row.get(column)
                    for column in schema.column_names
                    if column in row
                })
        else:
            table = read_csv_table(path, name=stem)
            database.create_table(table.schema)
            for row in table:
                database.insert(stem, row)
    return database
