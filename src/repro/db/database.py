"""The :class:`Database` container: tables, constraints and schema reflection.

The RETRO preprocessing step (Section 3.2 of the paper) needs three kinds of
schema knowledge, all provided here:

* which text columns exist (the *categories*),
* which pairs of text columns co-occur row-wise in the same table,
* which text columns are connected through primary-key/foreign-key chains,
  including many-to-many relationships expressed by link tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.table import Table
from repro.db.types import ColumnType
from repro.errors import IntegrityError, SchemaError


@dataclass(frozen=True)
class ColumnRef:
    """A fully qualified reference to a column: ``table.column``."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class RelationshipSpec:
    """A relationship between two text columns discovered from the schema.

    ``kind`` is one of ``"row"`` (two text columns in the same table),
    ``"fk"`` (a PK→FK chain between two tables) and ``"m2m"`` (two tables
    connected through a link table).  ``via`` names the link table for
    many-to-many relationships and is ``None`` otherwise.  ``fk_column``
    carries the referencing column for PK→FK relationships;
    ``via_source_fk``/``via_target_fk`` carry the two foreign-key columns of
    the link table for many-to-many relationships.
    """

    source: ColumnRef
    target: ColumnRef
    kind: str
    via: str | None = None
    fk_column: str | None = None
    via_source_fk: str | None = None
    via_target_fk: str | None = None

    @property
    def name(self) -> str:
        """Canonical relation-group label, e.g.
        ``movies.title->persons.name[m2m:movie_directors]``.

        The suffix carries the distinguishing join metadata: two link
        tables between the same text columns (``movie_directors`` and
        ``movie_actors``) or two foreign keys into the same table must
        yield distinct relation groups — the incremental delta pipeline
        addresses groups by name.
        """
        if self.kind == "fk" and self.fk_column is not None:
            suffix = f"[fk:{self.fk_column}]"
        elif self.kind == "m2m" and self.via is not None:
            suffix = f"[m2m:{self.via}]"
        else:
            suffix = f"[{self.kind}]"
        return f"{self.source}->{self.target}{suffix}"


class Database:
    """A collection of :class:`Table` objects plus integrity checking."""

    def __init__(self, name: str = "database") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}

    # ------------------------------------------------------------------ #
    # table management
    # ------------------------------------------------------------------ #
    def create_table(self, schema: TableSchema) -> Table:
        """Create an empty table from ``schema`` and register it."""
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            if fk.ref_table != schema.name and fk.ref_table not in self._tables:
                raise SchemaError(
                    f"table {schema.name!r}: foreign key references unknown "
                    f"table {fk.ref_table!r}"
                )
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table; fails if other tables reference it."""
        if name not in self._tables:
            raise SchemaError(f"no such table: {name!r}")
        for other in self._tables.values():
            if other.name == name:
                continue
            for fk in other.schema.foreign_keys:
                if fk.ref_table == name:
                    raise IntegrityError(
                        f"cannot drop {name!r}: referenced by "
                        f"{other.name!r}.{fk.column!r}"
                    )
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Return the table called ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether a table called ``name`` exists."""
        return name in self._tables

    @property
    def tables(self) -> dict[str, Table]:
        """Mapping of table name to table (insertion order preserved)."""
        return dict(self._tables)

    @property
    def table_names(self) -> list[str]:
        """Names of all tables in creation order."""
        return list(self._tables)

    # ------------------------------------------------------------------ #
    # data manipulation
    # ------------------------------------------------------------------ #
    def insert(self, table_name: str, row: dict[str, Any]) -> dict[str, Any]:
        """Insert one row after checking its foreign keys."""
        table = self.table(table_name)
        self._check_foreign_keys(table, row)
        return table.insert(row)

    def insert_many(self, table_name: str, rows: Iterable[dict[str, Any]]) -> int:
        """Insert many rows, validating foreign keys for each."""
        count = 0
        for row in rows:
            self.insert(table_name, row)
            count += 1
        return count

    def update_rows(
        self, table_name: str, predicate, updates: dict[str, Any]
    ) -> int:
        """Update matching rows of one table (see :meth:`Table.update_where`).

        Updated foreign-key columns are validated against their referenced
        tables first, exactly like inserts, and updating a column other
        rows reference is refused while it would leave a reference
        dangling — an update can never break referential integrity in
        either direction.
        """
        table = self.table(table_name)
        fk_updates = {
            fk.column: updates[fk.column]
            for fk in table.schema.foreign_keys
            if fk.column in updates
        }
        if fk_updates:
            self._check_foreign_keys(table, fk_updates)
        inbound = [
            (other, fk)
            for other in self._tables.values()
            for fk in other.schema.foreign_keys
            if fk.ref_table == table_name and fk.ref_column in updates
        ]
        if inbound:
            changing = table.select_rows(predicate)
            changing_ids = {id(row) for row in changing}
            for other, fk in inbound:
                old_values = {row[fk.ref_column] for row in changing} - {None}
                if not old_values:
                    continue
                provided_after = {
                    row[fk.ref_column]
                    for row in table
                    if id(row) not in changing_ids
                    and row[fk.ref_column] is not None
                } | {updates[fk.ref_column]}
                dangling = old_values - provided_after
                if not dangling:
                    continue
                for row in other:
                    if row.get(fk.column) in dangling:
                        raise IntegrityError(
                            f"cannot update {table_name!r}.{fk.ref_column!r}: "
                            f"value {row[fk.column]!r} is referenced by "
                            f"{other.name!r}.{fk.column!r}"
                        )
        return table.update_where(predicate, updates)

    def delete_rows(self, table_name: str, predicate) -> int:
        """Delete matching rows after checking nothing references them.

        For every to-be-deleted row, any foreign key in another table that
        points at one of the row's referenced values raises
        :class:`IntegrityError` — delete the referencing rows first.
        """
        table = self.table(table_name)
        doomed = table.select_rows(predicate)
        if not doomed:
            return 0
        doomed_ids = {id(row) for row in doomed}
        # collect inbound references — including self-referential ones
        inbound = [
            (other, fk)
            for other in self._tables.values()
            for fk in other.schema.foreign_keys
            if fk.ref_table == table_name
        ]
        for other, fk in inbound:
            doomed_keys = {row[fk.ref_column] for row in doomed} - {None}
            if not doomed_keys:
                continue
            # a referenced value only dangles when no *surviving* row still
            # provides it (ref columns need not be unique)
            surviving = {
                row[fk.ref_column]
                for row in table
                if id(row) not in doomed_ids and row[fk.ref_column] is not None
            }
            dangling = doomed_keys - surviving
            if not dangling:
                continue
            for row in other:
                if id(row) in doomed_ids:
                    continue  # a doomed row may reference another doomed row
                if row.get(fk.column) in dangling:
                    raise IntegrityError(
                        f"cannot delete from {table_name!r}: row with "
                        f"{fk.ref_column}={row[fk.column]!r} is referenced by "
                        f"{other.name!r}.{fk.column!r}"
                    )
        return table.delete_where(predicate)

    def _check_foreign_keys(self, table: Table, row: dict[str, Any]) -> None:
        for fk in table.schema.foreign_keys:
            value = row.get(fk.column)
            if value is None:
                continue
            ref_table = self.table(fk.ref_table)
            if ref_table.schema.primary_key == fk.ref_column:
                if ref_table.get_by_key(value) is None:
                    raise IntegrityError(
                        f"table {table.name!r}: foreign key {fk.column!r}={value!r} "
                        f"has no match in {fk.ref_table}.{fk.ref_column}"
                    )
            else:
                if value not in set(ref_table.column_values(fk.ref_column)):
                    raise IntegrityError(
                        f"table {table.name!r}: foreign key {fk.column!r}={value!r} "
                        f"has no match in {fk.ref_table}.{fk.ref_column}"
                    )

    # ------------------------------------------------------------------ #
    # schema reflection used by RETRO
    # ------------------------------------------------------------------ #
    def text_columns(self) -> list[ColumnRef]:
        """All embedable text columns across all tables."""
        refs: list[ColumnRef] = []
        for table in self._tables.values():
            for column in table.schema.text_columns():
                refs.append(ColumnRef(table.name, column))
        return refs

    def numeric_columns(self) -> list[ColumnRef]:
        """All numeric columns (candidate regression targets)."""
        refs: list[ColumnRef] = []
        for table in self._tables.values():
            for column in table.schema.numeric_columns():
                refs.append(ColumnRef(table.name, column))
        return refs

    def is_link_table(self, name: str) -> bool:
        """Whether ``name`` is a pure n:m link table.

        A link table consists only of foreign-key columns (plus an optional
        surrogate primary key) and has at least two foreign keys — it exists
        solely to express a many-to-many relationship.
        """
        table = self.table(name)
        schema = table.schema
        if len(schema.foreign_keys) < 2:
            return False
        fk_columns = {fk.column for fk in schema.foreign_keys}
        for column in schema.column_names:
            if column in fk_columns:
                continue
            if column == schema.primary_key:
                continue
            return False
        return True

    def relationships(self) -> list[RelationshipSpec]:
        """Discover all text-to-text relationships defined by the schema.

        Implements Section 3.2 of the paper:

        a) *row-wise*: two text columns within the same (non-link) table,
        b) *PK→FK*: a text column in a referencing table connected to text
           columns of the referenced table,
        c) *many-to-many*: text columns of two tables joined by a link table.
        """
        specs: list[RelationshipSpec] = []
        # a) row-wise relationships
        for table in self._tables.values():
            if self.is_link_table(table.name):
                continue
            text_cols = table.schema.text_columns()
            for i, left in enumerate(text_cols):
                for right in text_cols[i + 1:]:
                    specs.append(
                        RelationshipSpec(
                            source=ColumnRef(table.name, left),
                            target=ColumnRef(table.name, right),
                            kind="row",
                        )
                    )
        # b) PK->FK relationships
        for table in self._tables.values():
            if self.is_link_table(table.name):
                continue
            for fk in table.schema.foreign_keys:
                ref_table = self.table(fk.ref_table)
                for src_col in table.schema.text_columns():
                    for dst_col in ref_table.schema.text_columns():
                        specs.append(
                            RelationshipSpec(
                                source=ColumnRef(table.name, src_col),
                                target=ColumnRef(ref_table.name, dst_col),
                                kind="fk",
                                fk_column=fk.column,
                            )
                        )
        # c) many-to-many relationships through link tables
        for table in self._tables.values():
            if not self.is_link_table(table.name):
                continue
            fks = table.schema.foreign_keys
            for i, left_fk in enumerate(fks):
                for right_fk in fks[i + 1:]:
                    left_table = self.table(left_fk.ref_table)
                    right_table = self.table(right_fk.ref_table)
                    for src_col in left_table.schema.text_columns():
                        for dst_col in right_table.schema.text_columns():
                            specs.append(
                                RelationshipSpec(
                                    source=ColumnRef(left_table.name, src_col),
                                    target=ColumnRef(right_table.name, dst_col),
                                    kind="m2m",
                                    via=table.name,
                                    via_source_fk=left_fk.column,
                                    via_target_fk=right_fk.column,
                                )
                            )
        return specs

    # ------------------------------------------------------------------ #
    # statistics (Table 1 of the paper)
    # ------------------------------------------------------------------ #
    def count_tables(self, include_link_tables: bool = True) -> int:
        """Number of tables, optionally excluding pure link tables."""
        if include_link_tables:
            return len(self._tables)
        return sum(
            1 for name in self._tables if not self.is_link_table(name)
        )

    def count_link_tables(self) -> int:
        """Number of pure n:m link tables."""
        return sum(1 for name in self._tables if self.is_link_table(name))

    def count_rows(self) -> int:
        """Total number of rows across all tables."""
        return sum(len(table) for table in self._tables.values())

    def unique_text_values(self) -> int:
        """Number of distinct (column, value) text pairs across the database.

        This matches the uniqueness rule of Section 3.3: the same string in
        two different columns counts twice, repeated occurrences within one
        column count once.
        """
        total = 0
        for ref in self.text_columns():
            total += len(self.table(ref.table).distinct_values(ref.column))
        return total

    def summary(self) -> dict[str, Any]:
        """A dictionary of dataset statistics (used for Table 1)."""
        return {
            "name": self.name,
            "tables": self.count_tables(include_link_tables=False),
            "link_tables": self.count_link_tables(),
            "rows": self.count_rows(),
            "text_columns": len(self.text_columns()),
            "unique_text_values": self.unique_text_values(),
            "relationships": len(self.relationships()),
        }


def build_table_schema(
    name: str,
    columns: list[tuple[str, ColumnType]],
    primary_key: str | None = None,
    foreign_keys: list[ForeignKey] | None = None,
    unique: Iterable[str] = (),
) -> TableSchema:
    """Convenience constructor for :class:`TableSchema` from simple tuples."""
    unique_set = set(unique)
    cols = [
        Column(
            name=col_name,
            column_type=col_type,
            nullable=col_name != primary_key,
            unique=col_name in unique_set,
        )
        for col_name, col_type in columns
    ]
    return TableSchema(
        name=name,
        columns=cols,
        primary_key=primary_key,
        foreign_keys=list(foreign_keys or []),
    )
