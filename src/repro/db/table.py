"""Row storage with schema validation for the in-memory engine."""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from repro.db.schema import TableSchema
from repro.db.types import coerce_value
from repro.errors import IntegrityError, SchemaError


class Table:
    """A table: a :class:`TableSchema` plus validated rows.

    Rows are stored as dictionaries keyed by column name.  Insertions are
    validated against the schema (types, nullability, uniqueness, primary
    key).  Foreign keys are validated at the :class:`repro.db.Database`
    level, because they reference other tables.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[dict[str, Any]] = []
        self._pk_index: dict[Any, int] = {}
        self._unique_indexes: dict[str, set[Any]] = {
            column.name: set()
            for column in schema.columns
            if column.unique or column.name == schema.primary_key
        }

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table({self.schema.name!r}, rows={len(self)})"

    @property
    def name(self) -> str:
        """The table name from the schema."""
        return self.schema.name

    @property
    def rows(self) -> list[dict[str, Any]]:
        """All rows (the internal list; treat as read-only)."""
        return self._rows

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert(self, row: dict[str, Any]) -> dict[str, Any]:
        """Validate and insert one row, returning the stored representation.

        Unknown keys raise :class:`SchemaError`; missing columns are filled
        with ``None`` (subject to nullability checks).
        """
        unknown = set(row) - set(self.schema.column_names)
        if unknown:
            raise SchemaError(
                f"table {self.name!r}: unknown columns in row: {sorted(unknown)}"
            )
        stored: dict[str, Any] = {}
        for column in self.schema.columns:
            value = coerce_value(row.get(column.name), column.column_type)
            is_pk = column.name == self.schema.primary_key
            if value is None and (not column.nullable or is_pk):
                raise IntegrityError(
                    f"table {self.name!r}: column {column.name!r} may not be null"
                )
            stored[column.name] = value
        for column_name, seen in self._unique_indexes.items():
            value = stored[column_name]
            if value is not None and value in seen:
                raise IntegrityError(
                    f"table {self.name!r}: duplicate value {value!r} "
                    f"for unique column {column_name!r}"
                )
        for column_name, seen in self._unique_indexes.items():
            if stored[column_name] is not None:
                seen.add(stored[column_name])
        if self.schema.primary_key is not None:
            self._pk_index[stored[self.schema.primary_key]] = len(self._rows)
        self._rows.append(stored)
        return stored

    def insert_many(self, rows: Iterable[dict[str, Any]]) -> int:
        """Insert all ``rows``; returns the number of rows inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def update_where(
        self, predicate, updates: dict[str, Any]
    ) -> int:
        """Update columns of all rows matching ``predicate``.

        ``predicate`` is a callable taking a row dict and returning a bool.
        Primary-key and unique columns cannot be updated through this method
        (keeping the indexes consistent is out of scope for the substrate).
        Returns the number of updated rows.
        """
        protected = set(self._unique_indexes)
        illegal = protected & set(updates)
        if illegal:
            raise IntegrityError(
                f"table {self.name!r}: cannot update unique/key columns "
                f"{sorted(illegal)}"
            )
        unknown = set(updates) - set(self.schema.column_names)
        if unknown:
            raise SchemaError(
                f"table {self.name!r}: unknown columns in update: {sorted(unknown)}"
            )
        coerced = {
            name: coerce_value(value, self.schema.column(name).column_type)
            for name, value in updates.items()
        }
        changed = 0
        for row in self._rows:
            if predicate(row):
                row.update(coerced)
                changed += 1
        return changed

    def delete_where(self, predicate) -> int:
        """Delete all rows matching ``predicate``; returns the number removed.

        Keeps the primary-key and unique-value indexes consistent.
        Referential integrity is checked at the :class:`repro.db.Database`
        level (this table cannot see who references it).
        """
        kept: list[dict[str, Any]] = []
        removed = 0
        for row in self._rows:
            if predicate(row):
                removed += 1
                for column_name, seen in self._unique_indexes.items():
                    seen.discard(row[column_name])
            else:
                kept.append(row)
        if removed:
            self._rows = kept
            if self.schema.primary_key is not None:
                self._pk_index = {
                    row[self.schema.primary_key]: position
                    for position, row in enumerate(self._rows)
                }
        return removed

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def get_by_key(self, key: Any) -> dict[str, Any] | None:
        """Return the row with primary key ``key`` or ``None``."""
        if self.schema.primary_key is None:
            raise SchemaError(f"table {self.name!r} has no primary key")
        index = self._pk_index.get(key)
        return None if index is None else self._rows[index]

    def column_values(self, column: str, include_nulls: bool = False) -> list[Any]:
        """All values of ``column`` in row order."""
        if not self.schema.has_column(column):
            raise SchemaError(f"table {self.name!r} has no column {column!r}")
        values = [row[column] for row in self._rows]
        if include_nulls:
            return values
        return [value for value in values if value is not None]

    def distinct_values(self, column: str) -> list[Any]:
        """Distinct non-null values of ``column`` in first-seen order."""
        seen: dict[Any, None] = {}
        for value in self.column_values(column):
            if value not in seen:
                seen[value] = None
        return list(seen)

    def select_rows(self, predicate=None) -> list[dict[str, Any]]:
        """Rows matching ``predicate`` (all rows when ``predicate`` is None)."""
        if predicate is None:
            return list(self._rows)
        return [row for row in self._rows if predicate(row)]
