"""Schema objects: columns, foreign keys and table schemas."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.types import ColumnType
from repro.errors import SchemaError


@dataclass(frozen=True)
class Column:
    """A single column definition.

    Attributes
    ----------
    name:
        Column name, unique within its table.
    column_type:
        One of :class:`repro.db.types.ColumnType`.
    nullable:
        Whether ``None`` values are accepted.
    unique:
        Whether duplicate values are rejected (primary keys are implicitly
        unique and non-nullable).
    """

    name: str
    column_type: ColumnType = ColumnType.TEXT
    nullable: bool = True
    unique: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("column name must be a non-empty string")
        if not isinstance(self.column_type, ColumnType):
            raise SchemaError(
                f"column {self.name!r}: column_type must be a ColumnType, "
                f"got {self.column_type!r}"
            )


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint from ``column`` to ``ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str

    def __post_init__(self) -> None:
        for attr in ("column", "ref_table", "ref_column"):
            if not getattr(self, attr):
                raise SchemaError(f"foreign key field {attr!r} must be set")


@dataclass
class TableSchema:
    """The schema of one table: columns, primary key and foreign keys."""

    name: str
    columns: list[Column]
    primary_key: str | None = None
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be a non-empty string")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        names = [column.name for column in self.columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(
                f"table {self.name!r} has duplicate columns: {sorted(duplicates)}"
            )
        if self.primary_key is not None and self.primary_key not in names:
            raise SchemaError(
                f"table {self.name!r}: primary key {self.primary_key!r} "
                "is not a column"
            )
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise SchemaError(
                    f"table {self.name!r}: foreign key column {fk.column!r} "
                    "is not a column"
                )

    @property
    def column_names(self) -> list[str]:
        """Names of all columns in declaration order."""
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        """Return the :class:`Column` definition named ``name``."""
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """Whether a column named ``name`` exists."""
        return any(column.name == name for column in self.columns)

    def text_columns(self, exclude_keys: bool = True) -> list[str]:
        """Names of TEXT columns, optionally excluding key columns.

        Key columns (the primary key and foreign-key columns) are excluded by
        default because surrogate keys carry no textual semantics and should
        not receive embeddings.
        """
        key_columns: set[str] = set()
        if exclude_keys:
            if self.primary_key is not None:
                key_columns.add(self.primary_key)
            key_columns.update(fk.column for fk in self.foreign_keys)
        return [
            column.name
            for column in self.columns
            if column.column_type.is_textual and column.name not in key_columns
        ]

    def numeric_columns(self) -> list[str]:
        """Names of INTEGER/FLOAT columns (candidate regression targets)."""
        return [
            column.name
            for column in self.columns
            if column.column_type.is_numeric
        ]

    def foreign_key_for(self, column: str) -> ForeignKey | None:
        """Return the foreign key defined on ``column`` if any."""
        for fk in self.foreign_keys:
            if fk.column == column:
                return fk
        return None
