"""A small functional query layer over :class:`repro.db.Table`.

Only the operations required by the RETRO preprocessing and the experiment
harnesses are implemented: predicate selection, projection, inner joins,
grouping and simple aggregates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.db.table import Table
from repro.errors import QueryError

Row = dict[str, Any]


@dataclass(frozen=True)
class Predicate:
    """A simple column comparison predicate.

    Supported operators: ``==``, ``!=``, ``<``, ``<=``, ``>``, ``>=``,
    ``in``, ``not in``, ``is null`` and ``is not null``.
    """

    column: str
    operator: str
    value: Any = None

    def __call__(self, row: Row) -> bool:
        if self.column not in row:
            raise QueryError(f"row has no column {self.column!r}")
        actual = row[self.column]
        op = self.operator
        if op == "is null":
            return actual is None
        if op == "is not null":
            return actual is not None
        if actual is None:
            return False
        if op == "==":
            return actual == self.value
        if op == "!=":
            return actual != self.value
        if op == "<":
            return actual < self.value
        if op == "<=":
            return actual <= self.value
        if op == ">":
            return actual > self.value
        if op == ">=":
            return actual >= self.value
        if op == "in":
            return actual in self.value
        if op == "not in":
            return actual not in self.value
        raise QueryError(f"unknown operator {op!r}")


def select(
    table: Table | Iterable[Row],
    columns: list[str] | None = None,
    where: Callable[[Row], bool] | None = None,
    limit: int | None = None,
) -> list[Row]:
    """Project ``columns`` from rows of ``table`` matching ``where``."""
    rows = table.rows if isinstance(table, Table) else list(table)
    result: list[Row] = []
    for row in rows:
        if where is not None and not where(row):
            continue
        if columns is None:
            result.append(dict(row))
        else:
            missing = [c for c in columns if c not in row]
            if missing:
                raise QueryError(f"unknown columns in projection: {missing}")
            result.append({c: row[c] for c in columns})
        if limit is not None and len(result) >= limit:
            break
    return result


def inner_join(
    left: Table | Iterable[Row],
    right: Table | Iterable[Row],
    left_on: str,
    right_on: str,
    prefixes: tuple[str, str] = ("left_", "right_"),
) -> list[Row]:
    """Hash inner join of two row collections on equality of two columns.

    Output columns are prefixed with ``prefixes`` to avoid collisions, e.g.
    ``left_title`` and ``right_name``.
    """
    left_rows = left.rows if isinstance(left, Table) else list(left)
    right_rows = right.rows if isinstance(right, Table) else list(right)
    index: dict[Any, list[Row]] = defaultdict(list)
    for row in right_rows:
        if right_on not in row:
            raise QueryError(f"right rows have no column {right_on!r}")
        key = row[right_on]
        if key is not None:
            index[key].append(row)
    joined: list[Row] = []
    left_prefix, right_prefix = prefixes
    for row in left_rows:
        if left_on not in row:
            raise QueryError(f"left rows have no column {left_on!r}")
        key = row[left_on]
        if key is None:
            continue
        for match in index.get(key, ()):
            combined = {f"{left_prefix}{k}": v for k, v in row.items()}
            combined.update({f"{right_prefix}{k}": v for k, v in match.items()})
            joined.append(combined)
    return joined


def group_by(rows: Iterable[Row], column: str) -> dict[Any, list[Row]]:
    """Group rows by the value of ``column``."""
    groups: dict[Any, list[Row]] = defaultdict(list)
    for row in rows:
        if column not in row:
            raise QueryError(f"row has no column {column!r}")
        groups[row[column]].append(row)
    return dict(groups)


def aggregate(
    rows: Iterable[Row],
    column: str,
    func: str = "count",
) -> float:
    """Aggregate ``column`` over ``rows`` with ``count``/``sum``/``avg``/``min``/``max``/``mode``."""
    values = [row[column] for row in rows if row.get(column) is not None]
    if func == "count":
        return float(len(values))
    if not values:
        raise QueryError(f"cannot compute {func!r} over empty/NULL column {column!r}")
    if func == "sum":
        return float(sum(values))
    if func == "avg":
        return float(sum(values)) / len(values)
    if func == "min":
        return float(min(values))
    if func == "max":
        return float(max(values))
    if func == "mode":
        counts: dict[Any, int] = defaultdict(int)
        for value in values:
            counts[value] += 1
        return max(counts.items(), key=lambda item: item[1])[0]
    raise QueryError(f"unknown aggregate {func!r}")


def mode_value(rows: Iterable[Row], column: str) -> Any:
    """The most frequent non-null value of ``column`` (ties broken by first seen)."""
    counts: dict[Any, int] = {}
    for row in rows:
        value = row.get(column)
        if value is None:
            continue
        counts[value] = counts.get(value, 0) + 1
    if not counts:
        return None
    best = None
    best_count = -1
    for value, count in counts.items():
        if count > best_count:
            best, best_count = value, count
    return best
