"""In-memory relational database engine.

This package is the substrate that stands in for PostgreSQL in the original
RETRO system.  It provides typed tables with primary/foreign keys, CSV
import/export and a small query layer.  The RETRO extraction step
(:mod:`repro.retrofit.extraction`) only relies on the public interfaces
exposed here, so swapping in a different storage engine later only requires
implementing the same surface.
"""

from repro.db.types import ColumnType, coerce_value, infer_column_type
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.table import Table
from repro.db.database import Database
from repro.db.delta import DatabaseDelta, RowDelete, RowInsert, RowUpdate
from repro.db.csv_io import read_csv_table, write_csv_table
from repro.db.query import Predicate, select, inner_join, group_by, aggregate

__all__ = [
    "ColumnType",
    "coerce_value",
    "infer_column_type",
    "Column",
    "ForeignKey",
    "TableSchema",
    "Table",
    "Database",
    "DatabaseDelta",
    "RowInsert",
    "RowUpdate",
    "RowDelete",
    "read_csv_table",
    "write_csv_table",
    "Predicate",
    "select",
    "inner_join",
    "group_by",
    "aggregate",
]
