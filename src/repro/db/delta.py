"""First-class database change sets (the substrate of the delta pipeline).

A :class:`DatabaseDelta` is an ordered batch of row-level operations —
inserts, primary-key-addressed updates and deletes — against an existing
:class:`repro.db.Database`.  It is the unit of change that flows through
every layer of the incremental maintenance stack:

* ``DatabaseDelta.apply_to(database)`` mutates the database,
* :func:`repro.retrofit.extraction.derive_extraction_delta` translates the
  row-level delta into a value-level
  :class:`~repro.retrofit.extraction.ExtractionDelta` by re-deriving only
  the touched tables and relations,
* :meth:`repro.retrofit.incremental.IncrementalRetrofitter.apply` retrofits
  only the affected vectors,
* :meth:`repro.serving.ServingSession.apply_update` folds the result into
  the live serving indexes without a rebuild.

Operations are applied in a fixed order (inserts → updates → deletes) so a
delta can both add a parent row and reference it from a child insert; the
caller orders deletes child-before-parent (the database raises
:class:`repro.errors.IntegrityError` otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.db.database import Database
from repro.errors import SchemaError


@dataclass(frozen=True)
class RowInsert:
    """Insert ``row`` into ``table``."""

    table: str
    row: dict[str, Any]


@dataclass(frozen=True)
class RowUpdate:
    """Set ``changes`` on the row of ``table`` whose primary key is ``key``."""

    table: str
    key: Any
    changes: dict[str, Any]


@dataclass(frozen=True)
class RowDelete:
    """Delete the row of ``table`` whose primary key is ``key``."""

    table: str
    key: Any


@dataclass
class DatabaseDelta:
    """An ordered batch of row-level changes against one database."""

    inserts: list[RowInsert] = field(default_factory=list)
    updates: list[RowUpdate] = field(default_factory=list)
    deletes: list[RowDelete] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.inserts) + len(self.updates) + len(self.deletes)

    def is_empty(self) -> bool:
        """Whether the delta holds no operations at all."""
        return len(self) == 0

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def insert(self, table: str, row: dict[str, Any]) -> "DatabaseDelta":
        """Queue an insert; returns ``self`` for chaining."""
        self.inserts.append(RowInsert(table, dict(row)))
        return self

    def update(self, table: str, key: Any, **changes: Any) -> "DatabaseDelta":
        """Queue a primary-key-addressed update; returns ``self``."""
        self.updates.append(RowUpdate(table, key, dict(changes)))
        return self

    def delete(self, table: str, key: Any) -> "DatabaseDelta":
        """Queue a primary-key-addressed delete; returns ``self``."""
        self.deletes.append(RowDelete(table, key))
        return self

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def touched_tables(self) -> set[str]:
        """Names of every table this delta writes to."""
        return (
            {op.table for op in self.inserts}
            | {op.table for op in self.updates}
            | {op.table for op in self.deletes}
        )

    def summary(self) -> dict[str, int]:
        """Operation counts, for logging and benchmark payloads."""
        return {
            "inserts": len(self.inserts),
            "updates": len(self.updates),
            "deletes": len(self.deletes),
        }

    # ------------------------------------------------------------------ #
    # wire serialisation (HTTP write path, reproducible chaos schedules)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable wire form; :meth:`from_dict` round-trips it.

        Only JSON-representable row values survive the trip exactly —
        which is all the :class:`repro.db.Database` column types hold.
        """
        return {
            "inserts": [
                {"table": op.table, "row": dict(op.row)} for op in self.inserts
            ],
            "updates": [
                {"table": op.table, "key": op.key, "changes": dict(op.changes)}
                for op in self.updates
            ],
            "deletes": [
                {"table": op.table, "key": op.key} for op in self.deletes
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DatabaseDelta":
        """Rebuild a delta from :meth:`to_dict` output.

        Raises :class:`repro.errors.SchemaError` on any malformed payload —
        wire input is untrusted by definition.
        """
        if not isinstance(payload, dict):
            raise SchemaError("delta payload must be a JSON object")
        unknown = set(payload) - {"inserts", "updates", "deletes"}
        if unknown:
            raise SchemaError(f"delta payload has unknown keys: {sorted(unknown)}")
        try:
            inserts = [
                RowInsert(table=str(op["table"]), row=dict(op["row"]))
                for op in payload.get("inserts", [])
            ]
            updates = [
                RowUpdate(
                    table=str(op["table"]),
                    key=op["key"],
                    changes=dict(op["changes"]),
                )
                for op in payload.get("updates", [])
            ]
            deletes = [
                RowDelete(table=str(op["table"]), key=op["key"])
                for op in payload.get("deletes", [])
            ]
        except (KeyError, TypeError, ValueError) as error:
            raise SchemaError(f"malformed delta payload: {error}") from error
        return cls(inserts=inserts, updates=updates, deletes=deletes)

    # ------------------------------------------------------------------ #
    # coalescing (used by the serving runtime's write-ahead queue)
    # ------------------------------------------------------------------ #
    def can_absorb(self, other: "DatabaseDelta") -> bool:
        """Whether ``other`` can be folded into this delta without changing
        the outcome of applying the two sequentially.

        Merged application runs ``self.inserts + other.inserts`` before
        ``self.updates + other.updates`` before the deletes, so the fold is
        only equivalent when

        * this delta carries no deletes (``other``'s inserts and updates
          would jump ahead of them),
        * this delta's updates do not coexist with ``other``'s inserts (a
          key-addressed update silently no-ops on a missing row, so an
          update addressing a key ``other`` inserts would hit the row in
          the merged order but not in the sequential one),
        * both deltas touch exactly the same tables — the condition the
          delta queue coalesces under.
        """
        return (
            not self.deletes
            and not (self.updates and other.inserts)
            and self.touched_tables() == other.touched_tables()
        )

    def absorb(self, other: "DatabaseDelta") -> "DatabaseDelta":
        """Fold ``other``'s operations into this delta (see :meth:`can_absorb`).

        Raises :class:`repro.errors.SchemaError` when the fold would not be
        order-equivalent to applying the deltas one after the other.
        """
        if not self.can_absorb(other):
            raise SchemaError(
                "cannot coalesce deltas: the first carries deletes or "
                "updates ahead of the second's inserts, or the two touch "
                "different tables"
            )
        self.inserts.extend(other.inserts)
        self.updates.extend(other.updates)
        self.deletes.extend(other.deletes)
        return self

    # ------------------------------------------------------------------ #
    # pre-validation
    # ------------------------------------------------------------------ #
    def validate_against(self, database: Database) -> None:
        """Structurally validate this delta without mutating anything.

        Checks what can be checked from the schema and the primary-key
        indexes alone: tables exist, inserted rows name only known columns
        and carry a fresh primary key (also unique within the batch),
        updates and deletes address rows that exist (or that this batch's
        inserts create) and never rewrite a primary key.  Callers that
        must guarantee "rejected ⇒ database untouched" — the serving
        runtime's write-ahead queue — run this before :meth:`apply_to`.
        Value coercion, nullability and foreign keys are still enforced
        during application itself.
        """
        inserted: dict[str, set[Any]] = {}
        for op in self.inserts:
            table = database.table(op.table)
            schema = table.schema
            unknown = set(op.row) - set(schema.column_names)
            if unknown:
                raise SchemaError(
                    f"table {op.table!r}: unknown columns in insert: "
                    f"{sorted(unknown)}"
                )
            if schema.primary_key is not None:
                key = op.row.get(schema.primary_key)
                if key is None:
                    raise SchemaError(
                        f"insert into {op.table!r} misses its primary key "
                        f"{schema.primary_key!r}"
                    )
                batch_keys = inserted.setdefault(op.table, set())
                if key in batch_keys or table.get_by_key(key) is not None:
                    raise SchemaError(
                        f"insert into {op.table!r} reuses primary key {key!r}"
                    )
                batch_keys.add(key)
        for op in self.updates:
            table = database.table(op.table)
            schema = table.schema
            if schema.primary_key is None:
                raise SchemaError(
                    f"cannot address an update in {op.table!r}: no primary key"
                )
            unknown = set(op.changes) - set(schema.column_names)
            if unknown:
                raise SchemaError(
                    f"table {op.table!r}: unknown columns in update: "
                    f"{sorted(unknown)}"
                )
            if schema.primary_key in op.changes:
                raise SchemaError(
                    f"update in {op.table!r} may not change the primary key"
                )
            if (
                table.get_by_key(op.key) is None
                and op.key not in inserted.get(op.table, ())
            ):
                raise SchemaError(
                    f"update addresses missing row {op.key!r} in {op.table!r}"
                )
        removed: dict[str, set[Any]] = {}
        for op in self.deletes:
            table = database.table(op.table)
            if table.schema.primary_key is None:
                raise SchemaError(
                    f"cannot address a delete in {op.table!r}: no primary key"
                )
            gone = removed.setdefault(op.table, set())
            if op.key in gone:
                raise SchemaError(
                    f"delete addresses row {op.key!r} in {op.table!r} twice"
                )
            if (
                table.get_by_key(op.key) is None
                and op.key not in inserted.get(op.table, ())
            ):
                raise SchemaError(
                    f"delete addresses missing row {op.key!r} in {op.table!r}"
                )
            gone.add(op.key)

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def apply_to(self, database: Database) -> None:
        """Apply all operations to ``database`` (inserts → updates → deletes).

        Every operation goes through the database's validating entry points,
        so schema violations, foreign-key misses and dangling references
        fail exactly as ad-hoc mutations would.
        """
        for op in self.inserts:
            database.insert(op.table, op.row)
        for op in self.updates:
            pk = database.table(op.table).schema.primary_key
            if pk is None:
                raise SchemaError(
                    f"cannot address an update in {op.table!r}: no primary key"
                )
            key = op.key
            database.update_rows(
                op.table, lambda row, key=key, pk=pk: row[pk] == key, op.changes
            )
        for op in self.deletes:
            pk = database.table(op.table).schema.primary_key
            if pk is None:
                raise SchemaError(
                    f"cannot address a delete in {op.table!r}: no primary key"
                )
            key = op.key
            database.delete_rows(
                op.table, lambda row, key=key, pk=pk: row[pk] == key
            )
