"""First-class database change sets (the substrate of the delta pipeline).

A :class:`DatabaseDelta` is an ordered batch of row-level operations —
inserts, primary-key-addressed updates and deletes — against an existing
:class:`repro.db.Database`.  It is the unit of change that flows through
every layer of the incremental maintenance stack:

* ``DatabaseDelta.apply_to(database)`` mutates the database,
* :func:`repro.retrofit.extraction.derive_extraction_delta` translates the
  row-level delta into a value-level
  :class:`~repro.retrofit.extraction.ExtractionDelta` by re-deriving only
  the touched tables and relations,
* :meth:`repro.retrofit.incremental.IncrementalRetrofitter.apply` retrofits
  only the affected vectors,
* :meth:`repro.serving.ServingSession.apply_update` folds the result into
  the live serving indexes without a rebuild.

Operations are applied in a fixed order (inserts → updates → deletes) so a
delta can both add a parent row and reference it from a child insert; the
caller orders deletes child-before-parent (the database raises
:class:`repro.errors.IntegrityError` otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.db.database import Database
from repro.errors import SchemaError


@dataclass(frozen=True)
class RowInsert:
    """Insert ``row`` into ``table``."""

    table: str
    row: dict[str, Any]


@dataclass(frozen=True)
class RowUpdate:
    """Set ``changes`` on the row of ``table`` whose primary key is ``key``."""

    table: str
    key: Any
    changes: dict[str, Any]


@dataclass(frozen=True)
class RowDelete:
    """Delete the row of ``table`` whose primary key is ``key``."""

    table: str
    key: Any


@dataclass
class DatabaseDelta:
    """An ordered batch of row-level changes against one database."""

    inserts: list[RowInsert] = field(default_factory=list)
    updates: list[RowUpdate] = field(default_factory=list)
    deletes: list[RowDelete] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.inserts) + len(self.updates) + len(self.deletes)

    def is_empty(self) -> bool:
        """Whether the delta holds no operations at all."""
        return len(self) == 0

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def insert(self, table: str, row: dict[str, Any]) -> "DatabaseDelta":
        """Queue an insert; returns ``self`` for chaining."""
        self.inserts.append(RowInsert(table, dict(row)))
        return self

    def update(self, table: str, key: Any, **changes: Any) -> "DatabaseDelta":
        """Queue a primary-key-addressed update; returns ``self``."""
        self.updates.append(RowUpdate(table, key, dict(changes)))
        return self

    def delete(self, table: str, key: Any) -> "DatabaseDelta":
        """Queue a primary-key-addressed delete; returns ``self``."""
        self.deletes.append(RowDelete(table, key))
        return self

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def touched_tables(self) -> set[str]:
        """Names of every table this delta writes to."""
        return (
            {op.table for op in self.inserts}
            | {op.table for op in self.updates}
            | {op.table for op in self.deletes}
        )

    def summary(self) -> dict[str, int]:
        """Operation counts, for logging and benchmark payloads."""
        return {
            "inserts": len(self.inserts),
            "updates": len(self.updates),
            "deletes": len(self.deletes),
        }

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def apply_to(self, database: Database) -> None:
        """Apply all operations to ``database`` (inserts → updates → deletes).

        Every operation goes through the database's validating entry points,
        so schema violations, foreign-key misses and dangling references
        fail exactly as ad-hoc mutations would.
        """
        for op in self.inserts:
            database.insert(op.table, op.row)
        for op in self.updates:
            pk = database.table(op.table).schema.primary_key
            if pk is None:
                raise SchemaError(
                    f"cannot address an update in {op.table!r}: no primary key"
                )
            key = op.key
            database.update_rows(
                op.table, lambda row, key=key, pk=pk: row[pk] == key, op.changes
            )
        for op in self.deletes:
            pk = database.table(op.table).schema.primary_key
            if pk is None:
                raise SchemaError(
                    f"cannot address a delete in {op.table!r}: no primary key"
                )
            key = op.key
            database.delete_rows(
                op.table, lambda row, key=key, pk=pk: row[pk] == key
            )
