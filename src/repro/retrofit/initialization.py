"""Initialisation of the base embedding matrix ``W0`` (paper §3.1).

Every extracted text value is tokenised against the word embedding; its
initial vector is the centroid of the matched phrase vectors.  Out-of-
vocabulary values receive a null vector — the retrofitting pulls them to a
meaningful position through their categorial and relational connections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.retrofit.extraction import ExtractionResult
from repro.text.embedding import WordEmbedding
from repro.text.tokenizer import Tokenizer


@dataclass
class InitialisedMatrix:
    """The base matrix ``W0`` plus bookkeeping about vocabulary coverage."""

    matrix: np.ndarray
    oov_mask: np.ndarray
    coverage: float

    @property
    def dimension(self) -> int:
        """Embedding dimensionality."""
        return self.matrix.shape[1]

    @property
    def n_values(self) -> int:
        """Number of text values (rows of ``W0``)."""
        return self.matrix.shape[0]

    @property
    def oov_count(self) -> int:
        """Number of text values initialised with a null vector."""
        return int(self.oov_mask.sum())


def initialise_vectors(
    extraction: ExtractionResult,
    embedding: WordEmbedding,
    tokenizer: Tokenizer | None = None,
) -> InitialisedMatrix:
    """Build ``W0`` for all extracted text values.

    Parameters
    ----------
    extraction:
        The extraction result whose record order defines the row order.
    embedding:
        The word embedding providing token vectors.
    tokenizer:
        Optionally a pre-built tokenizer (it is expensive to construct for
        large vocabularies because of the trie); built on demand otherwise.
    """
    tokenizer = tokenizer or Tokenizer(embedding)
    texts = extraction.texts
    matrix, oov = tokenizer.vectorize_all(texts)
    coverage = 1.0 - (float(oov.sum()) / len(texts) if texts else 0.0)
    return InitialisedMatrix(matrix=matrix, oov_mask=oov, coverage=coverage)
