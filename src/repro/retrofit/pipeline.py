"""End-to-end RETRO pipeline: database + word embedding → text value vectors.

The paper describes RETRO as a system sitting on top of PostgreSQL: "given an
initial configuration including the connection information for a database and
the hyperparameter configuration, RETRO fully automatically learns the
retrofitted embeddings and adds them to the given database" (§5).  This
module is that automation layer for the in-memory substrate engine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.db.database import Database, build_table_schema
from repro.db.types import ColumnType
from repro.deepwalk.deepwalk import DeepWalk, DeepWalkConfig, NodeEmbeddingResult
from repro.errors import RetrofitError
from repro.graph.builder import build_graph
from repro.retrofit.combine import TextValueEmbeddingSet
from repro.retrofit.extraction import ExtractionResult, extract_text_values
from repro.retrofit.hyperparams import RetroHyperparameters
from repro.retrofit.incremental import IncrementalRetrofitter
from repro.retrofit.initialization import InitialisedMatrix, initialise_vectors
from repro.retrofit.retro import RetroSolver, SolverReport
from repro.text.embedding import WordEmbedding
from repro.text.tokenizer import Tokenizer

EMBEDDING_TABLE_NAME = "text_value_embeddings"


@dataclass
class RetroResult:
    """Everything produced by one pipeline run."""

    extraction: ExtractionResult
    base: InitialisedMatrix
    embeddings: TextValueEmbeddingSet
    report: SolverReport
    plain: TextValueEmbeddingSet
    node_embeddings: NodeEmbeddingResult | None = None
    combined: TextValueEmbeddingSet | None = None
    hyperparams: RetroHyperparameters = field(default_factory=RetroHyperparameters)

    def vector_for(self, category: str, text: str) -> np.ndarray:
        """The retrofitted vector of ``text`` within ``category``."""
        return self.embeddings.vector_for(category, text)

    @property
    def dimension(self) -> int:
        """Dimensionality of the retrofitted vectors."""
        return self.embeddings.dimension

    def serving_session(self, cache_size: int = 1024, combined: bool = False):
        """A :class:`repro.serving.ServingSession` over the learned vectors.

        ``combined=True`` serves the ``X+DW`` concatenation when the
        pipeline trained node embeddings; otherwise the retrofitted set.
        """
        from repro.errors import ServingError
        from repro.serving.session import ServingSession

        embeddings = self.embeddings
        if combined:
            if self.combined is None:
                raise ServingError(
                    "this result holds no combined embeddings; run the "
                    "pipeline with include_node_embeddings=True"
                )
            embeddings = self.combined
        return ServingSession(embeddings, cache_size=cache_size)

    # ------------------------------------------------------------------ #
    # persistence (serving without recomputation)
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path, name: str = "result") -> Path:
        """Persist this result as artifact ``name`` in the store at ``path``.

        The artifact can be reloaded with :meth:`RetroResult.load` or served
        directly through :class:`repro.serving.ServingSession`.
        """
        from repro.serving.store import EmbeddingStore

        return EmbeddingStore(path).save_result(name, self)

    @classmethod
    def load(cls, path: str | Path, name: str = "result") -> "RetroResult":
        """Reload a result saved with :meth:`save` (no solver rerun).

        Subclasses get instances of themselves (``cls`` is forwarded to
        the store).
        """
        from repro.serving.store import EmbeddingStore

        return EmbeddingStore(path).load_result(name, result_cls=cls)


class RetroPipeline:
    """Automates extraction, initialisation and retrofitting for a database."""

    def __init__(
        self,
        database: Database,
        embedding: WordEmbedding,
        hyperparams: RetroHyperparameters | None = None,
        method: str = "series",
        exclude_columns: tuple[str, ...] = (),
        exclude_relations: tuple[str, ...] = (),
        tokenizer: Tokenizer | None = None,
        deepwalk_config: DeepWalkConfig | None = None,
    ) -> None:
        self.database = database
        self.embedding = embedding
        self.hyperparams = hyperparams or RetroHyperparameters()
        self.method = method
        self.exclude_columns = tuple(exclude_columns)
        self.exclude_relations = tuple(exclude_relations)
        self.tokenizer = tokenizer or Tokenizer(embedding)
        self.deepwalk_config = deepwalk_config or DeepWalkConfig(
            dimension=embedding.dimension
        )

    # ------------------------------------------------------------------ #
    # pipeline steps
    # ------------------------------------------------------------------ #
    def extract(self) -> ExtractionResult:
        """Step 2a/2b of the paper: extract categories and relationships."""
        return extract_text_values(
            self.database,
            exclude_columns=self.exclude_columns,
            exclude_relations=self.exclude_relations,
        )

    def run(
        self,
        iterations: int | None = None,
        include_node_embeddings: bool = False,
        track_loss: bool = False,
    ) -> RetroResult:
        """Run the full pipeline and return a :class:`RetroResult`."""
        extraction = self.extract()
        if len(extraction) == 0:
            raise RetrofitError("the database contains no text values to retrofit")
        base = initialise_vectors(extraction, self.embedding, self.tokenizer)
        solver = RetroSolver(extraction, base.matrix, self.hyperparams)
        matrix, report = solver.solve(
            method=self.method, iterations=iterations, track_loss=track_loss
        )
        embeddings = TextValueEmbeddingSet(
            extraction=extraction, matrix=matrix, name=report.method
        )
        plain = TextValueEmbeddingSet(
            extraction=extraction, matrix=base.matrix.copy(), name="PV"
        )
        node_embeddings: NodeEmbeddingResult | None = None
        combined: TextValueEmbeddingSet | None = None
        if include_node_embeddings:
            deepwalk = DeepWalk(self.deepwalk_config)
            node_embeddings = deepwalk.train_for_extraction(
                extraction, build_graph(extraction)
            )
            combined = embeddings.concatenated_with(
                node_embeddings.matrix, name=f"{report.method}+DW"
            )
        return RetroResult(
            extraction=extraction,
            base=base,
            embeddings=embeddings,
            report=report,
            plain=plain,
            node_embeddings=node_embeddings,
            combined=combined,
            hyperparams=self.hyperparams,
        )

    def save(
        self, result: RetroResult, path: str | Path, name: str = "result"
    ) -> Path:
        """Persist ``result`` so it can be served without re-running the
        solver; see :meth:`RetroResult.save`."""
        return result.save(path, name=name)

    def incremental_retrofitter(self, result: RetroResult) -> IncrementalRetrofitter:
        """An :class:`IncrementalRetrofitter` continuing from ``result``."""
        return IncrementalRetrofitter(
            embeddings=result.embeddings,
            tokenizer=self.tokenizer,
            hyperparams=self.hyperparams,
            method=self.method,
            exclude_columns=self.exclude_columns,
            exclude_relations=self.exclude_relations,
            base_matrix=result.base.matrix,
        )

    # ------------------------------------------------------------------ #
    # in-database deployment
    # ------------------------------------------------------------------ #
    def augment_database(
        self, result: RetroResult, table_name: str = EMBEDDING_TABLE_NAME
    ) -> None:
        """Store the learned vectors back into the database.

        Mirrors the paper's in-database deployment: a relation holding one
        row per (table, column, text value) with the vector serialised as a
        JSON array, ready to be joined against the original tables.
        """
        if self.database.has_table(table_name):
            self.database.drop_table(table_name)
        schema = build_table_schema(
            table_name,
            [
                ("id", ColumnType.INTEGER),
                ("source_table", ColumnType.TEXT),
                ("source_column", ColumnType.TEXT),
                ("value", ColumnType.TEXT),
                ("vector", ColumnType.JSON),
            ],
            primary_key="id",
        )
        self.database.create_table(schema)
        for record in result.extraction.records:
            vector = result.embeddings.matrix[record.index]
            self.database.insert(
                table_name,
                {
                    "id": record.index,
                    "source_table": record.table,
                    "source_column": record.column,
                    "value": record.text,
                    "vector": json.loads(json.dumps([float(x) for x in vector])),
                },
            )
