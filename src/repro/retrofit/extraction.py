"""Extraction of text values, categories and relation groups (paper §3.2/3.3).

The extraction walks the database schema and produces:

* one :class:`TextValueRecord` per *unique* text value per column — the same
  string appearing in two different columns yields two records, repeated
  occurrences within one column yield a single record (§3.3),
* *categorial connections*: for every text column the set of record indices
  belonging to it,
* *relational connections*: one :class:`RelationGroup` per discovered
  relationship (row-wise, PK→FK or many-to-many), holding the index pairs
  ``(i, j)`` that are related.

The module is also the first stage of the incremental delta pipeline: a
row-level :class:`repro.db.DatabaseDelta` is translated into a value-level
:class:`ExtractionDelta` by :func:`derive_extraction_delta` (re-deriving
only the touched tables and relations, never the whole database), and
:meth:`ExtractionResult.apply_delta` folds that delta into an existing
extraction in place, returning the :class:`DeltaMap` every downstream layer
(warm-start retrofitting, serving-index updates, artifact delta records)
uses to carry state across the change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.db.database import Database, RelationshipSpec
from repro.db.delta import DatabaseDelta
from repro.errors import ExtractionError


@dataclass(frozen=True)
class TextValueRecord:
    """One unique text value within one column.

    ``index`` is the row of this value in the embedding matrices ``W0``/``W``.
    """

    index: int
    text: str
    table: str
    column: str

    @property
    def category(self) -> str:
        """The category (qualified column name) of this record."""
        return f"{self.table}.{self.column}"


@dataclass
class RelationGroup:
    """A named set of related record-index pairs (one relation group ``Er``)."""

    name: str
    kind: str
    source_category: str
    target_category: str
    pairs: list[tuple[int, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)

    def inverted(self) -> "RelationGroup":
        """The inverted relation group ``Er̄`` (paper §3.2)."""
        return RelationGroup(
            name=f"{self.name}::inverted",
            kind=self.kind,
            source_category=self.target_category,
            target_category=self.source_category,
            pairs=[(j, i) for (i, j) in self.pairs],
        )

    def source_indices(self) -> set[int]:
        """Distinct indices appearing on the source side."""
        return {i for i, _ in self.pairs}

    def target_indices(self) -> set[int]:
        """Distinct indices appearing on the target side."""
        return {j for _, j in self.pairs}


@dataclass
class RelationDelta:
    """Pairs added to / removed from one relation group, as text pairs.

    Pairs are expressed value-level — ``(source_text, target_text)`` — so a
    delta stays meaningful across the index renumbering that happens when
    it is applied.  ``kind``/``source_category``/``target_category`` let
    :meth:`ExtractionResult.apply_delta` create a relation group that did
    not exist before the change.
    """

    name: str
    kind: str
    source_category: str
    target_category: str
    added: list[tuple[str, str]] = field(default_factory=list)
    removed: list[tuple[str, str]] = field(default_factory=list)


@dataclass
class ExtractionDelta:
    """A value-level change set against one :class:`ExtractionResult`.

    ``added_values``/``removed_values`` map categories (qualified column
    names) to the text values entering/leaving them; ``relations`` holds
    one :class:`RelationDelta` per relation group whose pair set changed.
    """

    added_values: dict[str, list[str]] = field(default_factory=dict)
    removed_values: dict[str, list[str]] = field(default_factory=dict)
    relations: list[RelationDelta] = field(default_factory=list)

    def is_empty(self) -> bool:
        """Whether the delta changes nothing at all."""
        return not (
            self.added_values
            or self.removed_values
            or any(rd.added or rd.removed for rd in self.relations)
        )

    def touched_categories(self) -> set[str]:
        """Categories whose membership or relational neighbourhood changed."""
        touched = set(self.added_values) | set(self.removed_values)
        for rd in self.relations:
            if rd.added or rd.removed:
                touched.add(rd.source_category)
                touched.add(rd.target_category)
        return touched

    def summary(self) -> dict[str, int]:
        """Change counts, for logging and benchmark payloads."""
        return {
            "values_added": sum(len(v) for v in self.added_values.values()),
            "values_removed": sum(len(v) for v in self.removed_values.values()),
            "pairs_added": sum(len(rd.added) for rd in self.relations),
            "pairs_removed": sum(len(rd.removed) for rd in self.relations),
        }

    # ------------------------------------------------------------------ #
    # (de)serialisation — used by the store's delta records
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable representation (see :meth:`from_dict`).

        Value maps are stored as ordered ``[category, [texts]]`` pairs, not
        objects: the *order* in which added values are applied defines the
        new record indices, and it must survive ``json.dumps(...,
        sort_keys=True)`` round-trips (the store's delta records replay it).
        """
        return {
            "added_values": [
                [c, list(v)] for c, v in self.added_values.items()
            ],
            "removed_values": [
                [c, list(v)] for c, v in self.removed_values.items()
            ],
            "relations": [
                {
                    "name": rd.name,
                    "kind": rd.kind,
                    "source_category": rd.source_category,
                    "target_category": rd.target_category,
                    "added": [[s, t] for s, t in rd.added],
                    "removed": [[s, t] for s, t in rd.removed],
                }
                for rd in self.relations
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ExtractionDelta":
        """Rebuild a delta from :meth:`to_dict` output."""
        def value_pairs(entry) -> dict[str, list[str]]:
            pairs = entry.items() if isinstance(entry, dict) else entry
            return {str(c): [str(t) for t in v] for c, v in pairs}

        try:
            return cls(
                added_values=value_pairs(payload.get("added_values", [])),
                removed_values=value_pairs(payload.get("removed_values", [])),
                relations=[
                    RelationDelta(
                        name=str(rd["name"]),
                        kind=str(rd["kind"]),
                        source_category=str(rd["source_category"]),
                        target_category=str(rd["target_category"]),
                        added=[(str(s), str(t)) for s, t in rd.get("added", [])],
                        removed=[(str(s), str(t)) for s, t in rd.get("removed", [])],
                    )
                    for rd in payload.get("relations", [])
                ],
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ExtractionError(f"malformed extraction delta: {error}") from error


@dataclass
class DeltaMap:
    """How record indices moved when a delta was applied.

    ``old_to_new[i]`` is the new index of old record ``i`` (``-1`` when the
    record was removed); ``added_indices`` are brand-new records in the new
    indexing, ``removed_indices`` the dropped ones in the old indexing.
    """

    old_to_new: np.ndarray
    added_indices: list[int]
    removed_indices: list[int]

    @property
    def n_added(self) -> int:
        """Number of records the delta created."""
        return len(self.added_indices)

    @property
    def n_removed(self) -> int:
        """Number of records the delta dropped."""
        return len(self.removed_indices)

    def surviving_old_indices(self) -> np.ndarray:
        """Old indices of records that survived the delta, ascending."""
        return np.nonzero(self.old_to_new >= 0)[0]


@dataclass
class ExtractionResult:
    """Everything RETRO needs to know about the text content of a database."""

    records: list[TextValueRecord]
    categories: dict[str, list[int]]
    relation_groups: list[RelationGroup]

    def __post_init__(self) -> None:
        self._index: dict[tuple[str, str], int] = {
            (record.category, record.text): record.index for record in self.records
        }

    def __len__(self) -> int:
        return len(self.records)

    @property
    def texts(self) -> list[str]:
        """The raw text of every record, in index order."""
        return [record.text for record in self.records]

    def index_of(self, category: str, text: str) -> int:
        """Record index of ``text`` within ``category`` (``table.column``)."""
        key = (category, text)
        if key not in self._index:
            raise ExtractionError(f"no record for {text!r} in category {category!r}")
        return self._index[key]

    def has_value(self, category: str, text: str) -> bool:
        """Whether a record exists for ``text`` within ``category``."""
        return (category, text) in self._index

    def records_of_category(self, category: str) -> list[TextValueRecord]:
        """All records of one category, in index order."""
        if category not in self.categories:
            raise ExtractionError(f"unknown category {category!r}")
        return [self.records[i] for i in self.categories[category]]

    def relation_group(self, name: str) -> RelationGroup:
        """Look up a relation group by its full name."""
        for group in self.relation_groups:
            if group.name == name:
                return group
        raise ExtractionError(f"unknown relation group {name!r}")

    def relation_count(self) -> int:
        """Total number of relation pairs across all groups."""
        return sum(len(group) for group in self.relation_groups)

    def relation_groups_of(self, index: int) -> list[RelationGroup]:
        """Relation groups in which record ``index`` participates (either side)."""
        groups = []
        for group in self.relation_groups:
            for i, j in group.pairs:
                if i == index or j == index:
                    groups.append(group)
                    break
        return groups

    def _apply_append_only(self, delta: ExtractionDelta) -> DeltaMap:
        """The pure-growth fast path of :meth:`apply_delta`.

        Nothing is removed, so no record renumbers: new records append at
        the end, untouched relation groups are left alone entirely, and
        the value index grows in place.  All validation happens before
        the first mutation, so a malformed delta leaves the extraction
        exactly as it was.
        """
        n_before = len(self.records)
        planned: dict[tuple[str, str], int] = {}
        for category, texts in delta.added_values.items():
            if "." not in category:
                raise ExtractionError(
                    f"category {category!r} is not a qualified table.column name"
                )
            for text in texts:
                key = (category, str(text))
                if key in self._index or key in planned:
                    raise ExtractionError(
                        f"delta adds {text!r} to {category!r} but the value "
                        "already exists"
                    )
                planned[key] = n_before + len(planned)

        def resolve(category: str, text: str, relation: str) -> int:
            key = (category, str(text))
            if key in planned:
                return planned[key]
            if key not in self._index:
                raise ExtractionError(
                    f"relation delta {relation!r} references {text!r} in "
                    f"{category!r}, which is not part of the extraction"
                )
            return self._index[key]

        for rd in delta.relations:
            for source_text, target_text in rd.added:
                resolve(rd.source_category, source_text, rd.name)
                resolve(rd.target_category, target_text, rd.name)

        # validation complete — commit
        added_indices: list[int] = []
        for category, texts in delta.added_values.items():
            table, column = category.split(".", 1)
            members = self.categories.setdefault(category, [])
            for text in texts:
                text = str(text)
                index = len(self.records)
                self.records.append(
                    TextValueRecord(index=index, text=text, table=table, column=column)
                )
                self._index[(category, text)] = index
                members.append(index)
                added_indices.append(index)

        groups_by_name = {group.name: group for group in self.relation_groups}
        for relation_delta in delta.relations:
            if not relation_delta.added:
                continue
            group = groups_by_name.get(relation_delta.name)
            if group is None:
                group = RelationGroup(
                    name=relation_delta.name,
                    kind=relation_delta.kind,
                    source_category=relation_delta.source_category,
                    target_category=relation_delta.target_category,
                    pairs=[],
                )
                self.relation_groups.append(group)
                groups_by_name[relation_delta.name] = group
            fresh = {
                (
                    resolve(group.source_category, s, group.name),
                    resolve(group.target_category, t, group.name),
                )
                for s, t in relation_delta.added
            }
            merged = set(group.pairs) | fresh
            if len(merged) != len(group.pairs):
                group.pairs = sorted(merged)
        return DeltaMap(
            old_to_new=np.arange(n_before, dtype=np.int64),
            added_indices=added_indices,
            removed_indices=[],
        )

    def copy(self) -> "ExtractionResult":
        """An independent copy (records are immutable and shared).

        Applying a delta mutates the extraction in place; embedding sets
        built over the pre-delta state keep their own copy so they stay
        internally consistent.
        """
        return ExtractionResult(
            records=list(self.records),
            categories={
                category: list(indices)
                for category, indices in self.categories.items()
            },
            relation_groups=[
                RelationGroup(
                    name=group.name,
                    kind=group.kind,
                    source_category=group.source_category,
                    target_category=group.target_category,
                    pairs=list(group.pairs),
                )
                for group in self.relation_groups
            ],
        )

    def apply_delta(self, delta: ExtractionDelta) -> DeltaMap:
        """Fold a value-level delta into this extraction, in place.

        Surviving records are renumbered compactly (category order is
        preserved), added values are appended per category, relation pairs
        are remapped — pairs touching a removed value are dropped
        automatically.  Returns the :class:`DeltaMap` describing how
        indices moved, which downstream layers use to carry embedding rows
        and index state across the change.
        """
        old_records = self.records
        removed_old: set[int] = set()
        for category, texts in delta.removed_values.items():
            for text in texts:
                removed_old.add(self.index_of(category, str(text)))
        if not removed_old and not any(rd.removed for rd in delta.relations):
            return self._apply_append_only(delta)

        old_to_new = np.full(len(old_records), -1, dtype=np.int64)
        new_records: list[TextValueRecord] = []
        for record in old_records:
            if record.index in removed_old:
                continue
            new_index = len(new_records)
            old_to_new[record.index] = new_index
            if new_index == record.index:
                new_records.append(record)
            else:
                new_records.append(
                    TextValueRecord(
                        index=new_index,
                        text=record.text,
                        table=record.table,
                        column=record.column,
                    )
                )

        added_indices: list[int] = []
        added_by_category: dict[str, list[int]] = {}
        seen_new: set[tuple[str, str]] = {
            (record.category, record.text) for record in new_records
        }
        for category, texts in delta.added_values.items():
            if "." not in category:
                raise ExtractionError(
                    f"category {category!r} is not a qualified table.column name"
                )
            table, column = category.split(".", 1)
            for text in texts:
                text = str(text)
                if (category, text) in seen_new:
                    raise ExtractionError(
                        f"delta adds {text!r} to {category!r} but the value "
                        "already exists"
                    )
                index = len(new_records)
                new_records.append(
                    TextValueRecord(index=index, text=text, table=table, column=column)
                )
                seen_new.add((category, text))
                added_indices.append(index)
                added_by_category.setdefault(category, []).append(index)

        new_categories: dict[str, list[int]] = {}
        for category, indices in self.categories.items():
            survivors = [
                int(old_to_new[i]) for i in indices if old_to_new[i] >= 0
            ]
            new_categories[category] = survivors + added_by_category.pop(category, [])
        for category, indices in added_by_category.items():
            new_categories[category] = indices

        lookup = {
            (record.category, record.text): record.index for record in new_records
        }

        def resolve(category: str, text: str, relation: str) -> int:
            key = (category, str(text))
            if key not in lookup:
                raise ExtractionError(
                    f"relation delta {relation!r} references {text!r} in "
                    f"{category!r}, which is not part of the extraction"
                )
            return lookup[key]

        deltas_by_name = {rd.name: rd for rd in delta.relations}
        new_groups: list[RelationGroup] = []
        for group in self.relation_groups:
            relation_delta = deltas_by_name.pop(group.name, None)
            removed_pairs: set[tuple[str, str]] = set()
            if relation_delta is not None:
                removed_pairs = {
                    (str(s), str(t)) for s, t in relation_delta.removed
                }
            pairs: set[tuple[int, int]] = set()
            for i, j in group.pairs:
                new_i, new_j = int(old_to_new[i]), int(old_to_new[j])
                if new_i < 0 or new_j < 0:
                    continue
                if (old_records[i].text, old_records[j].text) in removed_pairs:
                    continue
                pairs.add((new_i, new_j))
            if relation_delta is not None:
                for source_text, target_text in relation_delta.added:
                    pairs.add((
                        resolve(group.source_category, source_text, group.name),
                        resolve(group.target_category, target_text, group.name),
                    ))
            new_groups.append(
                RelationGroup(
                    name=group.name,
                    kind=group.kind,
                    source_category=group.source_category,
                    target_category=group.target_category,
                    pairs=sorted(pairs),
                )
            )
        for relation_delta in delta.relations:
            if relation_delta.name not in deltas_by_name:
                continue  # folded into an existing group above
            pairs = {
                (
                    resolve(
                        relation_delta.source_category, s, relation_delta.name
                    ),
                    resolve(
                        relation_delta.target_category, t, relation_delta.name
                    ),
                )
                for s, t in relation_delta.added
            }
            if not pairs:
                continue
            new_groups.append(
                RelationGroup(
                    name=relation_delta.name,
                    kind=relation_delta.kind,
                    source_category=relation_delta.source_category,
                    target_category=relation_delta.target_category,
                    pairs=sorted(pairs),
                )
            )

        self.records = new_records
        self.categories = new_categories
        self.relation_groups = new_groups
        self._index = {
            (record.category, record.text): record.index for record in new_records
        }
        return DeltaMap(
            old_to_new=old_to_new,
            added_indices=added_indices,
            removed_indices=sorted(removed_old),
        )


def extract_text_values(
    database: Database,
    exclude_columns: Iterable[str] = (),
    exclude_relations: Iterable[str] = (),
    min_relation_pairs: int = 1,
) -> ExtractionResult:
    """Extract records, categories and relation groups from ``database``.

    Parameters
    ----------
    database:
        The relational database to process.
    exclude_columns:
        Qualified column names (``table.column``) whose values must *not*
        receive embeddings (used e.g. when the column is the prediction
        target of an imputation experiment).
    exclude_relations:
        Relation-group names (see :attr:`RelationshipSpec.name`) to skip,
        used e.g. for the link-prediction experiment which hides the
        movie→genre relation during training.
    min_relation_pairs:
        Relation groups with fewer pairs than this are dropped.
    """
    excluded_columns = set(exclude_columns)
    excluded_relations = set(exclude_relations)

    records: list[TextValueRecord] = []
    categories: dict[str, list[int]] = {}
    index_lookup: dict[tuple[str, str], int] = {}

    for ref in database.text_columns():
        category = str(ref)
        if category in excluded_columns:
            continue
        table = database.table(ref.table)
        indices: list[int] = []
        for value in table.distinct_values(ref.column):
            text = str(value)
            key = (category, text)
            if key in index_lookup:
                continue
            index = len(records)
            records.append(
                TextValueRecord(index=index, text=text, table=ref.table, column=ref.column)
            )
            index_lookup[key] = index
            indices.append(index)
        categories[category] = indices

    relation_groups: list[RelationGroup] = []
    for spec in database.relationships():
        if spec.name in excluded_relations:
            continue
        source_cat, target_cat = str(spec.source), str(spec.target)
        if source_cat in excluded_columns or target_cat in excluded_columns:
            continue
        pairs = _materialise_pairs(database, spec, index_lookup)
        if len(pairs) < min_relation_pairs:
            continue
        relation_groups.append(
            RelationGroup(
                name=spec.name,
                kind=spec.kind,
                source_category=source_cat,
                target_category=target_cat,
                pairs=sorted(pairs),
            )
        )

    return ExtractionResult(
        records=records,
        categories=categories,
        relation_groups=relation_groups,
    )


def _materialise_text_pairs(
    database: Database, spec: RelationshipSpec
) -> set[tuple[str, str]]:
    """Turn a schema-level relationship into concrete ``(text, text)`` pairs."""
    pairs: set[tuple[str, str]] = set()

    if spec.kind == "row":
        table = database.table(spec.source.table)
        for row in table:
            source, target = row.get(spec.source.column), row.get(spec.target.column)
            if source is not None and target is not None:
                pairs.add((str(source), str(target)))
        return pairs

    if spec.kind == "fk":
        if spec.fk_column is None:
            raise ExtractionError(f"fk relationship {spec.name} lacks fk_column")
        source_table = database.table(spec.source.table)
        target_table = database.table(spec.target.table)
        fk = source_table.schema.foreign_key_for(spec.fk_column)
        if fk is None:
            raise ExtractionError(
                f"no foreign key on {spec.source.table}.{spec.fk_column}"
            )
        # key -> referenced text, built once (first match wins for non-pk
        # reference columns, mirroring the historical row-by-row lookup)
        ref_text: dict[object, object] = {}
        for ref_row in target_table:
            key = ref_row.get(fk.ref_column)
            if key is not None and key not in ref_text:
                ref_text[key] = ref_row.get(spec.target.column)
        for row in source_table:
            key = row.get(spec.fk_column)
            if key is None:
                continue
            source = row.get(spec.source.column)
            target = ref_text.get(key)
            if source is not None and target is not None:
                pairs.add((str(source), str(target)))
        return pairs

    if spec.kind == "m2m":
        if spec.via is None or spec.via_source_fk is None or spec.via_target_fk is None:
            raise ExtractionError(f"m2m relationship {spec.name} lacks link metadata")
        link = database.table(spec.via)
        source_table = database.table(spec.source.table)
        target_table = database.table(spec.target.table)
        source_pk = source_table.schema.primary_key
        target_pk = target_table.schema.primary_key
        source_text = {
            row[source_pk]: row.get(spec.source.column) for row in source_table
        }
        target_text = {
            row[target_pk]: row.get(spec.target.column) for row in target_table
        }
        for row in link:
            source = source_text.get(row.get(spec.via_source_fk))
            target = target_text.get(row.get(spec.via_target_fk))
            if source is not None and target is not None:
                pairs.add((str(source), str(target)))
        return pairs

    raise ExtractionError(f"unknown relationship kind {spec.kind!r}")


def _materialise_pairs(
    database: Database,
    spec: RelationshipSpec,
    index_lookup: dict[tuple[str, str], int],
) -> set[tuple[int, int]]:
    """Turn a schema-level relationship into concrete record-index pairs."""
    source_cat, target_cat = str(spec.source), str(spec.target)
    pairs: set[tuple[int, int]] = set()
    for source_text, target_text in _materialise_text_pairs(database, spec):
        i = index_lookup.get((source_cat, source_text))
        j = index_lookup.get((target_cat, target_text))
        if i is not None and j is not None:
            pairs.add((i, j))
    return pairs


def _delta_insert_pairs(
    database: Database,
    spec: RelationshipSpec,
    inserted: dict[str, list[dict]],
) -> set[tuple[str, str]]:
    """Pairs of ``spec`` arising from freshly inserted rows only.

    Valid exactly when the spec's tables saw nothing but inserts: a pair
    involving a pre-existing row and a new row can only materialise
    through a row the delta inserted (foreign keys cannot have referenced
    a row before it existed), so scanning the inserted rows is complete.
    """
    pairs: set[tuple[str, str]] = set()
    if spec.kind == "row":
        for row in inserted.get(spec.source.table, ()):
            source = row.get(spec.source.column)
            target = row.get(spec.target.column)
            if source is not None and target is not None:
                pairs.add((str(source), str(target)))
        return pairs

    if spec.kind == "fk":
        rows = inserted.get(spec.source.table, ())
        if not rows:
            return pairs
        source_table = database.table(spec.source.table)
        target_table = database.table(spec.target.table)
        fk = source_table.schema.foreign_key_for(spec.fk_column)
        if fk is None:
            raise ExtractionError(
                f"no foreign key on {spec.source.table}.{spec.fk_column}"
            )
        use_pk = target_table.schema.primary_key == fk.ref_column
        ref_text: dict[object, object] | None = None
        for row in rows:
            key = row.get(spec.fk_column)
            if key is None:
                continue
            if use_pk:
                ref_row = target_table.get_by_key(key)
                target = None if ref_row is None else ref_row.get(spec.target.column)
            else:
                if ref_text is None:
                    ref_text = {}
                    for ref_row in target_table:
                        ref_key = ref_row.get(fk.ref_column)
                        if ref_key is not None and ref_key not in ref_text:
                            ref_text[ref_key] = ref_row.get(spec.target.column)
                target = ref_text.get(key)
            source = row.get(spec.source.column)
            if source is not None and target is not None:
                pairs.add((str(source), str(target)))
        return pairs

    if spec.kind == "m2m":
        rows = inserted.get(spec.via, ())
        if not rows:
            return pairs
        source_table = database.table(spec.source.table)
        target_table = database.table(spec.target.table)
        for row in rows:
            src_row = source_table.get_by_key(row.get(spec.via_source_fk))
            dst_row = target_table.get_by_key(row.get(spec.via_target_fk))
            if src_row is None or dst_row is None:
                continue
            source = src_row.get(spec.source.column)
            target = dst_row.get(spec.target.column)
            if source is not None and target is not None:
                pairs.add((str(source), str(target)))
        return pairs

    raise ExtractionError(f"unknown relationship kind {spec.kind!r}")


def _spec_relevant_columns(
    database: Database, spec: RelationshipSpec
) -> set[tuple[str, str]]:
    """The ``(table, column)`` pairs whose updates can change a spec's pairs."""
    relevant = {
        (spec.source.table, spec.source.column),
        (spec.target.table, spec.target.column),
    }
    if spec.kind == "fk" and spec.fk_column is not None:
        relevant.add((spec.source.table, spec.fk_column))
        fk = database.table(spec.source.table).schema.foreign_key_for(spec.fk_column)
        if fk is not None:
            relevant.add((spec.target.table, fk.ref_column))
    if spec.kind == "m2m" and spec.via is not None:
        relevant.add((spec.via, spec.via_source_fk))
        relevant.add((spec.via, spec.via_target_fk))
    return relevant


def derive_extraction_delta(
    extraction: ExtractionResult,
    database: Database,
    delta: DatabaseDelta,
    exclude_columns: Iterable[str] = (),
    exclude_relations: Iterable[str] = (),
    min_relation_pairs: int = 1,
) -> ExtractionDelta:
    """The value-level delta between ``extraction`` and the updated database.

    ``database`` must already reflect the applied :class:`DatabaseDelta`.
    Only tables the delta touched (and relations involving them) are
    re-derived, and a relation whose tables saw nothing but inserts is
    diffed from the inserted rows alone (see :func:`_delta_insert_pairs`)
    instead of re-scanned — the cost scales with the delta, not with the
    database.  The exclusion arguments must match the ones the original
    extraction was built with.
    """
    excluded_columns = set(exclude_columns)
    excluded_relations = set(exclude_relations)
    touched = delta.touched_tables()

    inserted_stored: dict[str, list[dict]] = {}
    for op in delta.inserts:
        table = database.table(op.table)
        pk = table.schema.primary_key
        stored = None
        if pk is not None and op.row.get(pk) is not None:
            stored = table.get_by_key(op.row[pk])
        inserted_stored.setdefault(op.table, []).append(
            stored if stored is not None else dict(op.row)
        )
    deleted_tables = {op.table for op in delta.deletes}
    updated_columns = {
        (op.table, column) for op in delta.updates for column in op.changes
    }
    updated_tables = {op.table for op in delta.updates}

    added_values: dict[str, list[str]] = {}
    removed_values: dict[str, list[str]] = {}
    for ref in database.text_columns():
        if ref.table not in touched:
            continue
        if (
            ref.table not in inserted_stored
            and ref.table not in deleted_tables
            and (ref.table, ref.column) not in updated_columns
        ):
            continue  # only irrelevant columns of this table were updated
        category = str(ref)
        if category in excluded_columns:
            continue
        if (
            ref.table not in deleted_tables
            and (ref.table, ref.column) not in updated_columns
        ):
            # insert-only column: values can only be added, and every new
            # one sits in an inserted row — no table scan needed
            seen: set[str] = set()
            added = []
            for row in inserted_stored.get(ref.table, ()):
                value = row.get(ref.column)
                if value is None:
                    continue
                text = str(value)
                if text in seen or extraction.has_value(category, text):
                    continue
                seen.add(text)
                added.append(text)
            added.sort()
            removed = []
        else:
            current = {
                str(value)
                for value in database.table(ref.table).distinct_values(ref.column)
            }
            previous = {
                extraction.records[i].text
                for i in extraction.categories.get(category, ())
            }
            added = sorted(current - previous)
            removed = sorted(previous - current)
        if added:
            added_values[category] = added
        if removed:
            removed_values[category] = removed

    existing_groups = {group.name: group for group in extraction.relation_groups}
    relations: list[RelationDelta] = []
    for spec in database.relationships():
        if spec.name in excluded_relations:
            continue
        source_cat, target_cat = str(spec.source), str(spec.target)
        if source_cat in excluded_columns or target_cat in excluded_columns:
            continue
        spec_tables = {spec.source.table, spec.target.table}
        if spec.via is not None:
            spec_tables.add(spec.via)
        if not spec_tables & touched:
            continue
        group = existing_groups.get(spec.name)
        previous_pairs: set[tuple[str, str]] = set()
        if group is not None:
            previous_pairs = {
                (extraction.records[i].text, extraction.records[j].text)
                for i, j in group.pairs
            }

        needs_rescan = bool(spec_tables & deleted_tables) or bool(
            _spec_relevant_columns(database, spec) & updated_columns
        )
        if needs_rescan:
            current_pairs = _materialise_text_pairs(database, spec)
            if group is None and len(current_pairs) < min_relation_pairs:
                continue  # was dropped at extraction time and stays too small
            added_pairs = sorted(current_pairs - previous_pairs)
            removed_pairs = sorted(previous_pairs - current_pairs)
        else:
            if not spec_tables & (set(inserted_stored) | updated_tables):
                continue
            candidate = _delta_insert_pairs(database, spec, inserted_stored)
            if group is None and len(candidate) < min_relation_pairs:
                continue
            added_pairs = sorted(candidate - previous_pairs)
            removed_pairs = []
        if added_pairs or removed_pairs:
            relations.append(
                RelationDelta(
                    name=spec.name,
                    kind=spec.kind,
                    source_category=source_cat,
                    target_category=target_cat,
                    added=added_pairs,
                    removed=removed_pairs,
                )
            )

    return ExtractionDelta(
        added_values=added_values,
        removed_values=removed_values,
        relations=relations,
    )
